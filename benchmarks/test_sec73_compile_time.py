"""§7.3 — compile-time cost of the Flowery passes.

Paper shape: negligible absolute time, roughly linear in static
instruction count (CG, the largest benchmark, is the most expensive).
"""

import numpy as np
from conftest import publish

from repro.experiments.compile_time import (
    render_compile_time,
    run_compile_time,
)


def test_sec73_compile_time(benchmark, ctx, results_dir):
    rows = benchmark.pedantic(
        run_compile_time, args=(ctx.config,), rounds=1, iterations=1
    )
    publish(results_dir, "sec73_compile_time", render_compile_time(rows))

    for row in rows:
        assert row.flowery_seconds < 2.0, "Flowery must stay near-instant"
    # roughly linear in static size: positive rank correlation once the
    # suite spans enough sizes to dominate first-run timer noise
    sizes = np.array([r.static_instructions for r in rows], dtype=float)
    times = np.array(
        [r.duplication_seconds + r.flowery_seconds for r in rows]
    )
    if len(rows) >= 8 and sizes.std() > 0 and times.std() > 0:
        from scipy.stats import spearmanr

        corr = float(spearmanr(sizes, times).statistic)
        assert corr > 0.0
