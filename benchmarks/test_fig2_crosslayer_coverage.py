"""Figure 2 — SDC coverage of instruction duplication, IR vs assembly.

Paper shape (§5.1): assembly coverage systematically below IR coverage;
IR coverage at full protection ~100%; assembly never reaches 100%
(Observation 3); average gap 31.21%.
"""

from conftest import publish

from repro.experiments.figure2 import render_figure2, run_figure2


def test_fig2_crosslayer_coverage(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        run_figure2, kwargs={"context": ctx}, rounds=1, iterations=1
    )
    publish(results_dir, "figure2", render_figure2(result))

    full = result.full_protection_cells()
    assert full
    # Observation: IR-level full protection detects essentially all SDCs
    for cell in full:
        assert cell.ir_coverage >= 0.95, (
            f"{cell.benchmark}: IR full-protection coverage "
            f"{cell.ir_coverage:.2%} below the paper's ~100%"
        )
    # Observation 3: assembly full protection falls short of IR
    assert any(c.asm_coverage < 0.95 for c in full), (
        "no benchmark shows the assembly-level shortfall"
    )
    # Observation 2: on average the gap is positive
    assert result.average_gap() > 0.0
