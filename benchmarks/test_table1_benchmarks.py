"""Table 1 — benchmark inventory and dynamic-instruction counts."""

from conftest import publish

from repro.experiments.table1 import render_table1, run_table1


def test_table1(benchmark, ctx, results_dir):
    rows = benchmark.pedantic(
        run_table1, args=(ctx.config,), rounds=1, iterations=1
    )
    publish(results_dir, "table1", render_table1(rows))
    # shape: the cross-layer expansion factor is always > 1 and the
    # outputs matched (run_table1 asserts equality internally)
    for row in rows:
        assert row.asm_dyn > row.ir_dyn
        assert row.asm_injectable < row.asm_dyn
