"""§7.2 — runtime overhead of Flowery on top of instruction duplication.

The paper reports 1.93/1.63/3.72/3.74% *wall-clock* extra on native
x86; this harness reports the dynamic-instruction proxy (larger in
absolute terms on a scalar simulator — see EXPERIMENTS.md) and checks
the shape: bounded extra cost that does not grow with protection level
out of proportion.
"""

from conftest import publish

from repro.experiments.overhead import (
    average_extra_by_level,
    render_overhead,
    run_overhead,
)


def test_sec72_runtime_overhead(benchmark, ctx, results_dir):
    rows = benchmark.pedantic(
        run_overhead, kwargs={"context": ctx}, rounds=1, iterations=1
    )
    publish(results_dir, "sec72_overhead", render_overhead(rows))

    for row in rows:
        # Flowery only ever adds instrumentation
        assert row.flowery_dyn >= row.id_dyn
        # and the addition stays bounded (well under the ID baseline cost)
        assert row.flowery_extra < 1.5
    avgs = average_extra_by_level(rows)
    assert all(v >= 0 for v in avgs.values())
