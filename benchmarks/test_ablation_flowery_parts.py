"""Ablation — each Flowery patch in isolation (DESIGN.md ablation index).

Each patch must specifically remove its own penetration category:

* eager store      -> store penetrations vanish
* postponed branch -> branch penetrations become detections
* anti-comparison  -> comparison penetrations vanish (no folded checkers)
"""

import pytest
from conftest import publish

from repro.analysis.rootcause import Penetration, classify_campaign
from repro.backend.lower import lower_module
from repro.fi.campaign import CampaignConfig, run_asm_campaign
from repro.frontend.codegen import compile_source
from repro.interp.layout import GlobalLayout
from repro.machine.machine import compile_program
from repro.benchsuite.registry import load_source
from repro.protection.duplication import duplicate_module
from repro.protection.flowery import (
    anti_comparison_duplication,
    postponed_branch_check,
)


def _build_variant(bench, scale, store_mode, branch, cmp_):
    module = compile_source(load_source(bench, scale), bench)
    info = duplicate_module(module, store_mode=store_mode)
    if cmp_:
        anti_comparison_duplication(module, info)
    if branch:
        postponed_branch_check(module, info)
    layout = GlobalLayout(module)
    asm = lower_module(module, layout)
    compiled = compile_program(asm.flatten())
    return module, info, layout, asm, compiled


def _penetrations(ctx, bench, store_mode, branch, cmp_):
    module, info, layout, asm, compiled = _build_variant(
        bench, ctx.config.scale, store_mode, branch, cmp_
    )
    campaign = run_asm_campaign(
        compiled, layout,
        CampaignConfig(n_campaigns=ctx.config.campaigns,
                       seed=ctx.config.seed),
    )
    report = classify_campaign(bench, 100, campaign, module, asm, info)
    return report, asm


def test_ablation_flowery_parts(benchmark, ctx, results_dir):
    bench = ctx.config.benchmarks[0]

    def run_all():
        results = {}
        results["baseline"] = _penetrations(ctx, bench, "lazy", False, False)
        results["eager-store"] = _penetrations(ctx, bench, "eager", False, False)
        results["postponed-branch"] = _penetrations(ctx, bench, "lazy", True, False)
        results["anti-cmp"] = _penetrations(ctx, bench, "lazy", False, True)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"Flowery ablation on {bench} (full protection, "
             f"{ctx.config.campaigns} campaigns)"]
    for name, (report, _) in results.items():
        counts = {p.value: n for p, n in sorted(report.counts.items(),
                                                key=lambda kv: -kv[1])}
        lines.append(f"{name:18s} escapes={report.total_escapes:3d} {counts}")
    publish(results_dir, "ablation_flowery_parts", "\n".join(lines))

    base_report, base_asm = results["baseline"]
    # anti-cmp: eliminates folded checkers entirely
    _, anticmp_asm = results["anti-cmp"]
    assert len(anticmp_asm.folded_checkers) == 0
    if len(base_asm.folded_checkers) > 0:
        anticmp_report = results["anti-cmp"][0]
        assert anticmp_report.counts.get(Penetration.COMPARISON, 0) <= \
            base_report.counts.get(Penetration.COMPARISON, 0)
    # eager store: store penetrations do not increase, and when the
    # baseline had any they must shrink
    eager_report = results["eager-store"][0]
    base_store = base_report.counts.get(Penetration.STORE, 0)
    eager_store = eager_report.counts.get(Penetration.STORE, 0)
    assert eager_store <= base_store
    # postponed branch: branch penetrations shrink
    pb_report = results["postponed-branch"][0]
    assert pb_report.counts.get(Penetration.BRANCH, 0) <= \
        base_report.counts.get(Penetration.BRANCH, 0)
