"""Figure 3 — distribution of penetration root causes.

Paper shape (§5.2/§5.3): store, branch and comparison penetrations
dominate (94.5% together); call and mapping are a small tail.
"""

from conftest import publish

from repro.analysis.rootcause import Penetration
from repro.experiments.figure3 import render_figure3, run_figure3


def test_fig3_rootcause_distribution(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        run_figure3, kwargs={"context": ctx}, rounds=1, iterations=1
    )
    publish(results_dir, "figure3", render_figure3(result))

    assert result.total > 0, "full protection must leak some SDCs at asm"
    shares = result.shares()
    # the Flowery-fixable trio dominates, as in the paper (94.5%)
    assert result.fixable_share() >= 0.6
    # every escape at full protection is a deficiency, never 'unprotected'
    assert result.counts.get(Penetration.UNPROTECTED, 0) == 0
    # at least two distinct root causes appear across benchmarks
    present = [p for p, n in result.counts.items() if n and p.is_deficiency]
    assert len(present) >= 2
