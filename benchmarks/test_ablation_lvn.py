"""Ablation — backend redundant-compare elimination on/off.

The comparison penetration exists *because* of the backend combine
(DESIGN.md §4).  With it disabled, duplicated compares and their
checkers survive lowering, so comparison penetrations vanish and the
protected binary runs more (all-duplicated) compare instructions.
"""

from conftest import publish

from repro.analysis.rootcause import Penetration, classify_campaign
from repro.fi.campaign import CampaignConfig, run_asm_campaign
from repro.pipeline import build


def test_ablation_compare_cse(benchmark, ctx, results_dir):
    bench = ctx.config.benchmarks[0]
    cfg = CampaignConfig(
        n_campaigns=ctx.config.campaigns, seed=ctx.config.seed
    )

    def run():
        out = {}
        for cse in (True, False):
            built = build(bench, scale=ctx.config.scale, level=100,
                          compare_cse=cse)
            campaign = run_asm_campaign(built.compiled, built.layout, cfg)
            report = classify_campaign(
                bench, 100, campaign, built.module, built.asm,
                built.protection.dup_info,
            )
            out[cse] = (built, report, campaign)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    with_cse = results[True]
    without = results[False]
    lines = [
        f"compare-CSE ablation on {bench} (full protection)",
        f"CSE on : folded checkers={len(with_cse[0].asm.folded_checkers)}"
        f" comparison escapes="
        f"{with_cse[1].counts.get(Penetration.COMPARISON, 0)}"
        f" dyn={with_cse[2].golden_dyn_total}",
        f"CSE off: folded checkers={len(without[0].asm.folded_checkers)}"
        f" comparison escapes="
        f"{without[1].counts.get(Penetration.COMPARISON, 0)}"
        f" dyn={without[2].golden_dyn_total}",
    ]
    publish(results_dir, "ablation_lvn", "\n".join(lines))

    assert len(without[0].asm.folded_checkers) == 0
    assert without[1].counts.get(Penetration.COMPARISON, 0) == 0
    # with CSE the combine must actually fire on compare-heavy code
    assert len(with_cse[0].asm.folded_checkers) > 0
