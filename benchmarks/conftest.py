"""Shared configuration for the paper-artifact benchmark harness.

Each ``test_*`` file regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md).  Defaults are sized for a
single-core quick pass (~minutes); environment variables scale up to
the paper's setup:

* ``REPRO_BENCHMARKS=all``   — all 16 benchmarks (default: 4
  representative ones)
* ``REPRO_CAMPAIGNS=3000``   — the paper's campaign count (default 120)
* ``REPRO_SCALE=medium``     — larger inputs

Rendered artifact tables are written to ``results/bench/`` and printed
(run with ``-s`` to see them live).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results" / "bench"

#: quick defaults: one benchmark per behavioural class
BENCH_DEFAULT = ("crc32", "pathfinder", "lud", "stringsearch")


def bench_config() -> ExperimentConfig:
    overrides = {}
    if "REPRO_BENCHMARKS" not in os.environ:
        overrides["benchmarks"] = BENCH_DEFAULT
    if "REPRO_CAMPAIGNS" not in os.environ:
        overrides["campaigns"] = 120
    if "REPRO_PROFILE_CAMPAIGNS" not in os.environ:
        overrides["profile_campaigns"] = 250
    return ExperimentConfig.from_env(**overrides)


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(bench_config())


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print and persist a rendered artifact."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
