"""Ablation — register pressure vs store penetration (§8 of the paper).

The paper argues store penetration is rooted in register scarcity and
should also affect RISC-V/ARM.  Shrinking the backend's scratch pool
emulates a register-starved target: home-slot reloads (the store
penetration surface) must grow monotonically as registers shrink.
"""

from conftest import publish

from repro.analysis.asmstats import static_stats
from repro.backend.isa import Role, SCRATCH_GPRS
from repro.backend.lower import LoweringOptions, lower_module
from repro.benchsuite.registry import load_source
from repro.frontend.codegen import compile_source
from repro.protection.duplication import duplicate_module


def test_ablation_register_pressure(benchmark, ctx, results_dir):
    bench = ctx.config.benchmarks[0]
    src = load_source(bench, ctx.config.scale)

    def run():
        rows = []
        for pool in (4, 6, len(SCRATCH_GPRS)):
            module = compile_source(src, bench)
            duplicate_module(module)
            asm = lower_module(module, options=LoweringOptions(gpr_pool=pool))
            stats = static_stats(asm)
            reloads = (
                stats.by_role.get(Role.OPERAND_RELOAD, 0)
                + stats.by_role.get(Role.STORE_RELOAD, 0)
                + stats.by_role.get(Role.STORE_ADDR_RELOAD, 0)
            )
            rows.append((pool, reloads, stats.total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"register-pressure ablation on {bench} (full protection)"]
    for pool, reloads, total in rows:
        lines.append(
            f"scratch GPRs={pool:2d}: reload instructions={reloads:5d} "
            f"of {total} total"
        )
    publish(results_dir, "ablation_registers", "\n".join(lines))

    reload_counts = [r for _, r, _ in rows]
    # fewer registers -> at least as many reloads (usually strictly more)
    assert reload_counts[0] >= reload_counts[1] >= reload_counts[2]
    assert reload_counts[0] > reload_counts[2]
