"""Figure 17 — Flowery vs original instruction duplication.

Paper shape (§7.1): Flowery(asm) > ID(asm) everywhere on average;
Flowery approaches ID(IR); at full protection the average rises from
76.74% to 93.72%.
"""

from conftest import publish

from repro.experiments.figure17 import render_figure17, run_figure17


def test_fig17_flowery_coverage(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        run_figure17, kwargs={"context": ctx}, rounds=1, iterations=1
    )
    publish(results_dir, "figure17", render_figure17(result))

    id_asm, flowery = result.full_protection_averages()
    # Flowery repairs the deficiency at full protection
    assert flowery > id_asm, (
        f"Flowery ({flowery:.2%}) must beat ID-Assembly ({id_asm:.2%})"
    )
    # and the average improvement across all cells is positive
    assert result.average_improvement() > 0.0
    # Flowery approaches the IR-level promise
    full = [c for c in result.cells if c.level == 100]
    avg_residual = sum(c.residual_gap for c in full) / len(full)
    avg_original_gap = sum(c.id_ir - c.id_asm for c in full) / len(full)
    assert avg_residual < avg_original_gap
