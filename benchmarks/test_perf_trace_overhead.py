"""Overhead guard for the trace taps (<2% when disabled).

The taps piggyback on the per-step tracking check the simulators
already perform for profiling: with tracing off, each hot-loop
iteration tests exactly one pre-hoisted local, same as before the
subsystem existed.  This guard measures that claim directly by timing
many interleaved disabled-vs-baseline runs, and also sanity-checks the
enabled modes (sync tracing should stay within a small constant factor,
and the disabled path must never be slower than the enabled one).

Timing comparisons on shared CI boxes are noisy, so the guard uses the
median of many interleaved pairs and a small alignment slack on top of
the 2% budget.
"""

import statistics
import time

import pytest

from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build
from repro.trace import TraceConfig

#: the documented guarantee, plus slack for timer/code-alignment noise
OVERHEAD_BUDGET = 0.02
NOISE_SLACK = 0.03
ROUNDS = 21


@pytest.fixture(scope="module")
def crc32_built():
    return build("crc32", scale="small")


def _median_seconds(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _paired_medians(baseline, candidate, rounds=ROUNDS):
    """Interleave the two runners so drift hits both equally."""
    base_times, cand_times = [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        baseline()
        base_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        candidate()
        cand_times.append(time.perf_counter() - t0)
    return statistics.median(base_times), statistics.median(cand_times)


class TestDisabledOverhead:
    def test_ir_interpreter_disabled_overhead(self, crc32_built):
        built = crc32_built

        def baseline():
            assert IRInterpreter(
                built.module, layout=built.layout
            ).run().status.value == "ok"

        # "disabled" IS the default: trace=None.  The candidate is the
        # same constructor spelled with the kwarg, so any accidental
        # per-step cost added by the tap integration shows up here.
        def disabled():
            assert IRInterpreter(
                built.module, layout=built.layout, trace=None
            ).run().status.value == "ok"

        base, cand = _paired_medians(baseline, disabled)
        overhead = cand / base - 1.0
        assert overhead < OVERHEAD_BUDGET + NOISE_SLACK, (
            f"disabled IR tracing overhead {overhead:.1%} "
            f"exceeds the <{OVERHEAD_BUDGET:.0%} guarantee"
        )

    def test_asm_machine_disabled_overhead(self, crc32_built):
        built = crc32_built

        def baseline():
            assert AsmMachine(
                built.compiled, built.layout
            ).run().status.value == "ok"

        def disabled():
            assert AsmMachine(
                built.compiled, built.layout, trace=None
            ).run().status.value == "ok"

        base, cand = _paired_medians(baseline, disabled)
        overhead = cand / base - 1.0
        assert overhead < OVERHEAD_BUDGET + NOISE_SLACK, (
            f"disabled asm tracing overhead {overhead:.1%} "
            f"exceeds the <{OVERHEAD_BUDGET:.0%} guarantee"
        )

    def test_disabled_loop_does_no_tracking_work(self, crc32_built):
        # structural half of the guarantee: with trace=None the
        # simulators hold no tracer and take the `track == False`
        # per-step path (one local test), identical to profiling-off
        interp = IRInterpreter(crc32_built.module,
                               layout=crc32_built.layout)
        assert interp.tracer is None
        machine = AsmMachine(crc32_built.compiled, crc32_built.layout)
        assert machine.tracer is None

    def test_disabled_not_slower_than_sync_tracing(self, crc32_built):
        built = crc32_built

        def disabled():
            IRInterpreter(built.module, layout=built.layout).run()

        def enabled():
            IRInterpreter(built.module, layout=built.layout,
                          trace=TraceConfig()).run()

        off = _median_seconds(disabled, rounds=9)
        on = _median_seconds(enabled, rounds=9)
        assert off <= on * 1.05, (
            "tracing disabled should never cost more than enabled "
            f"(off={off:.4f}s on={on:.4f}s)"
        )


def test_sync_tracing_throughput(benchmark, crc32_built):
    """Record the enabled-mode cost alongside the simulator benchmarks."""
    built = crc32_built

    def run():
        return IRInterpreter(
            built.module, layout=built.layout, trace=TraceConfig()
        ).run()

    result = benchmark(run)
    assert result.status.value == "ok"
    assert result.extra["trace"].sync
