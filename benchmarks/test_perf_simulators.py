"""Throughput microbenchmarks of the two execution layers.

These are genuine pytest-benchmark measurements (multiple rounds): the
fault-injection campaigns execute millions of simulated instructions,
so interpreter throughput bounds every experiment above.
"""

import pytest

from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build


@pytest.fixture(scope="module")
def crc32_built():
    return build("crc32", scale="small")


def test_ir_interpreter_throughput(benchmark, crc32_built):
    built = crc32_built

    def run():
        return IRInterpreter(built.module, layout=built.layout).run()

    result = benchmark(run)
    assert result.status.value == "ok"


def test_asm_machine_throughput(benchmark, crc32_built):
    built = crc32_built

    def run():
        return AsmMachine(built.compiled, built.layout).run()

    result = benchmark(run)
    assert result.status.value == "ok"


def test_lowering_throughput(benchmark):
    from repro.backend.lower import lower_module
    from repro.frontend.codegen import compile_source
    from repro.benchsuite.registry import load_source

    src = load_source("susan", "small")

    def run():
        return lower_module(compile_source(src, "susan"))

    asm = benchmark(run)
    assert asm.static_count() > 0


def test_frontend_throughput(benchmark):
    from repro.frontend.codegen import compile_source
    from repro.benchsuite.registry import load_source

    src = load_source("cg", "small")
    module = benchmark(compile_source, src, "cg")
    assert module.static_instruction_count() > 0
