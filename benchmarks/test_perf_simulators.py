"""Throughput microbenchmarks of the two execution layers.

These are genuine pytest-benchmark measurements (multiple rounds): the
fault-injection campaigns execute millions of simulated instructions,
so interpreter throughput bounds every experiment above.  All three
dispatch tiers are measured — naive op-string ladders, pre-decoded
closures, and the exec-compiled codegen tier (DESIGN §13).
"""

import pytest

from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build


@pytest.fixture(scope="module")
def crc32_built():
    return build("crc32", scale="small")


@pytest.mark.parametrize("dispatch", ["naive", "decoded", "codegen"])
def test_ir_interpreter_throughput(benchmark, crc32_built, dispatch):
    built = crc32_built

    def run():
        return IRInterpreter(built.module, layout=built.layout,
                             dispatch=dispatch).run()

    result = benchmark(run)
    assert result.status.value == "ok"


@pytest.mark.parametrize("dispatch", ["naive", "decoded", "codegen"])
def test_asm_machine_throughput(benchmark, crc32_built, dispatch):
    built = crc32_built

    def run():
        return AsmMachine(built.compiled, built.layout,
                          dispatch=dispatch).run()

    result = benchmark(run)
    assert result.status.value == "ok"


def test_campaign_engine_speedup_floor():
    """The checkpoint-replay engine must beat naive re-execution by at
    least 3x end-to-end on the CI smoke workload (both layers summed),
    while producing bit-identical campaign results.  This is the PR's
    acceptance floor; the measured artifact lives in
    ``BENCH_campaign.json``.
    """
    from repro.fi.bench import run_campaign_bench

    doc = run_campaign_bench()          # pathfinder/medium n=40 seed=2023
    for layer, d in doc["layers"].items():
        assert d["results_identical"], \
            f"{layer} engine results diverge from naive"
    overall = doc["overall"]["speedup"]
    assert overall >= 3.0, (
        f"campaign engine speedup {overall:.2f}x below the 3x floor "
        f"(ir {doc['layers']['ir']['speedup']:.2f}x, "
        f"asm {doc['layers']['asm']['speedup']:.2f}x)")


def test_codegen_tier_speedup_floor():
    """The template-generated codegen tier must beat the decoded tier
    by at least 2x on a warm golden run (both layers summed) while the
    codegen-dispatch engine campaigns stay bit-identical to decoded.
    The campaign-level figure is reported too but carries no floor: the
    golden checkpointing pass always streams from the decoded core, so
    it dilutes the tier's own speedup (DESIGN §13).
    """
    from repro.fi.bench import run_campaign_bench

    doc = run_campaign_bench()          # pathfinder/medium n=40 seed=2023
    for layer, d in doc["layers"].items():
        assert d["codegen"]["results_identical"], \
            f"{layer} codegen campaign results diverge from decoded"
    g = doc["overall"]["codegen"]
    assert g["run_speedup"] >= 2.0, (
        f"codegen golden-run speedup {g['run_speedup']:.2f}x below the "
        f"2x floor (ir "
        f"{doc['layers']['ir']['codegen']['run_speedup']:.2f}x, asm "
        f"{doc['layers']['asm']['codegen']['run_speedup']:.2f}x)")


def test_incremental_warm_path_floor():
    """A second incremental campaign over an unchanged program must be
    served entirely from the section-profile store (zero simulated
    injections) and come in at least 10x faster than the checkpoint-
    replay engine, while the cold pass stays within 1.3x of the engine
    (sectioning + cache bookkeeping overhead bound, DESIGN §15).
    """
    from repro.fi.bench import run_campaign_bench

    doc = run_campaign_bench()          # pathfinder/medium n=40 seed=2023
    for layer, d in doc["layers"].items():
        inc = d["incremental"]
        assert inc["warm_pure_hits"], \
            f"{layer} warm incremental pass re-simulated injections"
        assert inc["cold_ratio_vs_engine"] <= 1.3, (
            f"{layer} cold incremental pass costs "
            f"{inc['cold_ratio_vs_engine']:.2f}x the engine (>1.3x)")
    warm = doc["overall"]["incremental"]["warm_speedup_vs_engine"]
    assert warm >= 10.0, (
        f"incremental warm-path speedup {warm:.2f}x below the 10x floor "
        f"(ir {doc['layers']['ir']['incremental']['warm_speedup_vs_engine']:.2f}x, "
        f"asm {doc['layers']['asm']['incremental']['warm_speedup_vs_engine']:.2f}x)")


def test_pruned_stratified_steps_floor():
    """A pruned+stratified campaign must reproduce the 3000-injection
    uniform campaign's SDC estimate (estimate inside the uniform CI at
    equal-or-narrower width) on fully-duplicated pathfinder at >= 2x
    fewer simulated steps, and pruning alone over the identical uniform
    draw must return bit-identical estimates (DESIGN §17).  Step counts
    are deterministic for the fixed seed, so this floor is exact, not a
    wall-clock measurement.
    """
    from repro.fi.bench import _run_pruning_section

    pr = _run_pruning_section()
    st = pr["stratified"]
    assert st["within_uniform_ci"], (
        f"stratified sdc {st['stratified_sdc']:.4f} outside the uniform "
        f"CI {st['uniform_sdc_ci']}")
    assert st["ci_overlap"], "stratified and uniform CIs are disjoint"
    assert st["width_ok"], (
        f"stratified CI wider than uniform at "
        f"{st['stratified_n']}/{st['uniform_n']} of the budget")
    assert st["steps_ratio"] >= 2.0, (
        f"pruned+stratified simulated only "
        f"{st['steps_ratio']:.2f}x fewer steps (< 2x floor): "
        f"{st['stratified_steps']} vs {st['uniform_steps']}")
    pu = pr["prune"]
    assert pu["estimates_identical"], \
        "pruned campaign estimates diverge from the uniform draw"
    assert pu["pruned"] > 0, "pruner resolved no draws statically"
    assert pu["steps_ratio"] > 1.0, (
        f"pruning saved no simulated steps "
        f"({pu['pruned_steps']} vs {pu['uniform_steps']})")


def test_lowering_throughput(benchmark):
    from repro.backend.lower import lower_module
    from repro.frontend.codegen import compile_source
    from repro.benchsuite.registry import load_source

    src = load_source("susan", "small")

    def run():
        return lower_module(compile_source(src, "susan"))

    asm = benchmark(run)
    assert asm.static_count() > 0


def test_frontend_throughput(benchmark):
    from repro.frontend.codegen import compile_source
    from repro.benchsuite.registry import load_source

    src = load_source("cg", "small")
    module = benchmark(compile_source, src, "cg")
    assert module.static_instruction_count() > 0
