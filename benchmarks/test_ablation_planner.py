"""Ablation — greedy vs exact knapsack protection planning.

DESIGN.md calls out the planner as a design choice: the greedy
benefit/cost heuristic is the standard in the literature; the exact DP
bounds how much coverage it leaves on the table.
"""

from conftest import publish

from repro.frontend.codegen import compile_source
from repro.benchsuite.registry import load_source
from repro.protection.duplication import duplicable_instructions
from repro.protection.planner import (
    knapsack_exact,
    knapsack_greedy,
    plan_protection,
    profile_module,
)


def test_ablation_planner(benchmark, ctx, results_dir):
    bench = ctx.config.benchmarks[0]
    module = compile_source(load_source(bench, "tiny"), bench)

    def run():
        profile = profile_module(
            module, n_campaigns=ctx.config.profile_campaigns,
            seed=ctx.config.seed,
        )
        items = [
            (
                i.iid,
                float(profile.sdc_counts.get(i.iid, 0)),
                profile.dyn_counts.get(i.iid, 0),
            )
            for i in duplicable_instructions(module)
        ]
        total = sum(c for _, _, c in items)
        rows = []
        for level in (30, 50, 70):
            budget = total * level // 100
            greedy = knapsack_greedy(items, budget)
            exact = knapsack_exact(items, budget)
            b_greedy = sum(b for i, b, c in items if i in greedy)
            b_exact = sum(b for i, b, c in items if i in exact)
            rows.append((level, b_greedy, b_exact))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"planner ablation on {bench} (estimated SDCs covered)"]
    for level, greedy, exact in rows:
        ratio = greedy / exact if exact else 1.0
        lines.append(
            f"level {level:3d}%: greedy={greedy:6.1f} exact={exact:6.1f} "
            f"greedy/exact={ratio:.3f}"
        )
    publish(results_dir, "ablation_planner", "\n".join(lines))

    for level, greedy, exact in rows:
        assert exact >= greedy - 1e-9
        if exact > 0:
            # the greedy heuristic stays close to optimal, which is why
            # the literature (and the paper) uses it
            assert greedy / exact >= 0.8
