#!/usr/bin/env python3
"""Pruning & smart-sampling acceptance check (DESIGN §17).

Two gates on one small fully-duplicated benchmark build:

1. **Exhaustive benign soundness** — every (site, bit) pair the
   bit-liveness pruner classifies Benign is actually flipped; any
   status or output change fails the check.  IR is swept under both
   value fault models, asm under SEU (the asm SET sweep is covered by
   the tier-1 suite on smaller witnesses; this gate budgets CI time).
2. **Estimator agreement** — a pruned campaign over the identical
   uniform draw must return bit-identical estimates, and a
   pruned+stratified campaign at half the budget must land inside an
   overlapping Wilson CI of the uniform estimate.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/ci_prune_check.py
"""

from __future__ import annotations

import pathlib
import sys
import time
from dataclasses import replace

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.fi.campaign import CampaignConfig, run_asm_campaign  # noqa: E402
from repro.fi.prune import verify_benign  # noqa: E402
from repro.pipeline import build  # noqa: E402

BENCHMARK = "crc32"
SCALE = "tiny"
LEVEL = 100
UNIFORM_N = 600
STRATIFIED_N = 300
SEED = 7

#: (layer, fault_model) combinations swept exhaustively
SWEEPS = (("ir", "seu"), ("ir", "set"), ("asm", "seu"))


def main() -> int:
    t0 = time.monotonic()
    built = build(BENCHMARK, scale=SCALE, level=LEVEL)
    print(f"# {BENCHMARK}/{SCALE} level={LEVEL} built "
          f"({time.monotonic() - t0:.1f}s)")

    total_pairs = 0
    for layer, fm in SWEEPS:
        kwargs = (dict(module=built.module, layout=built.layout)
                  if layer == "ir"
                  else dict(program=built.compiled, layout=built.layout))
        t1 = time.monotonic()
        rep = verify_benign(layer, fault_model=fm, **kwargs)
        total_pairs += rep["pairs"]
        print(f"# {layer}/{fm}: {rep['pairs']} benign-classified pairs "
              f"flipped, {len(rep['violations'])} violations "
              f"({time.monotonic() - t1:.1f}s)")
        if rep["violations"]:
            dyn, bit, status, trap = rep["violations"][0]
            print(f"FAIL: pruner misclassification at {layer}/{fm} "
                  f"dyn={dyn} bit={bit} -> {status}/{trap}")
            return 1
    if total_pairs == 0:
        print("FAIL: the exhaustive sweep flipped zero pairs (vacuous)")
        return 1

    uniform_cfg = CampaignConfig(n_campaigns=UNIFORM_N, seed=SEED)
    uniform = run_asm_campaign(built.compiled, built.layout,
                               uniform_cfg).summary()
    pruned = run_asm_campaign(built.compiled, built.layout,
                              replace(uniform_cfg, prune=True)).summary()
    for key in ("sdc", "due", "detected", "benign"):
        if pruned[key] != uniform[key]:
            print(f"FAIL: pruned {key} {pruned[key]} != uniform "
                  f"{uniform[key]} (must be bit-identical)")
            return 1
    if pruned["pruned"] == 0:
        print("FAIL: the pruned campaign resolved no draws statically")
        return 1
    print(f"# pruned campaign: estimates bit-identical, "
          f"{pruned['pruned']}/{UNIFORM_N} draws resolved statically")

    strat_cfg = CampaignConfig(n_campaigns=STRATIFIED_N, seed=SEED,
                               prune=True, stratify=True)
    strat = run_asm_campaign(built.compiled, built.layout,
                             strat_cfg).summary()
    lo_u, hi_u = uniform["sdc_ci"]
    lo_s, hi_s = strat["sdc_ci"]
    if not (lo_s <= hi_u and lo_u <= hi_s):
        print(f"FAIL: stratified sdc CI [{lo_s:.4f},{hi_s:.4f}] disjoint "
              f"from uniform [{lo_u:.4f},{hi_u:.4f}]")
        return 1
    print(f"# stratified (n={STRATIFIED_N}): sdc {strat['sdc']:.4f} "
          f"[{lo_s:.4f},{hi_s:.4f}] overlaps uniform (n={UNIFORM_N}) "
          f"{uniform['sdc']:.4f} [{lo_u:.4f},{hi_u:.4f}]")

    print(f"OK: pruning sound and estimator-preserving "
          f"({time.monotonic() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
