#!/usr/bin/env python
"""Benchmark campaign throughput (naive vs checkpoint-replay engine).

Thin wrapper over ``repro bench`` for use outside an installed package:

    PYTHONPATH=src python scripts/bench_campaign.py [args...]

Writes ``BENCH_campaign.json`` (override with ``--out``) and prints the
comparison table.  Defaults to the CI smoke workload
(pathfinder/medium, n=40, seed=2023).

The bench exercises the codegen dispatch tier, so this wrapper enables
the on-disk codegen cache (``REPRO_CODEGEN_CACHE``, defaulting to
``.cache/codegen`` next to the repo's results) and validates it up
front: an unwritable cache directory is a hard
:class:`~repro.errors.CodegenCacheError`, never a silent fallback — a
bench that silently measured the decoded tier would report a fictitious
codegen speedup.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.cli import main  # noqa: E402
from repro.simgen.cache import codegen_cache_dir  # noqa: E402

if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_CODEGEN_CACHE", os.path.join(_ROOT, ".cache", "codegen"))
    # Fail loudly *before* any campaign runs if the cache directory is
    # unusable (CodegenCacheError propagates with a non-zero exit).
    resolved = codegen_cache_dir()
    print(f"codegen cache: {resolved}", file=sys.stderr)
    sys.exit(main(["bench", *sys.argv[1:]]))
