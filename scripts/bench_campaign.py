#!/usr/bin/env python
"""Benchmark campaign throughput (naive vs checkpoint-replay engine).

Thin wrapper over ``repro bench`` for use outside an installed package:

    PYTHONPATH=src python scripts/bench_campaign.py [args...]

Writes ``BENCH_campaign.json`` (override with ``--out``) and prints the
comparison table.  Defaults to the CI smoke workload
(pathfinder/medium, n=40, seed=2023).
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
