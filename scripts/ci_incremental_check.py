#!/usr/bin/env python3
"""Incremental-campaign acceptance check for the section-profile cache.

Four properties of ``fi/compose.py`` are exercised end-to-end:

1. **Warm hit** — running the same incremental campaign twice against
   one store simulates zero injections the second time and reproduces
   identical outcome counts.
2. **Selective invalidation** — editing one function re-simulates only
   that function's sections; the untouched function is served from
   cache.
3. **Crash resume** — a campaign SIGKILLed mid-flight resumes from the
   fsync'd store rows to a result bit-identical to an uninterrupted
   run (torn trailing lines are discarded on load).
4. **Oracle agreement** — the composed cold run classifies exactly the
   planned number of injections (every section covered, none twice).

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/ci_incremental_check.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.fi.campaign import CampaignConfig  # noqa: E402
from repro.fi.compose import (  # noqa: E402
    SectionProfileStore,
    run_incremental_campaign,
)
from repro.pipeline import build, build_from_source  # noqa: E402

BENCHMARK = "crc32"
SCALE = "small"
LAYER = "asm"
N = 600
SEED = 2023
MIN_ROWS_BEFORE_KILL = 25
KILL_DEADLINE = 300.0

SRC = """\
const int N = 6;

int scale(int x) {
    int acc = 0;
    for (int i = 0; i < 3; i = i + 1) {
        acc = acc + x;
    }
    return acc;
}

int main() {
    int total = 0;
    for (int i = 0; i < N; i = i + 1) {
        total = total + scale(i);
    }
    print(total);
    return 0;
}
"""
SRC_EDITED = SRC.replace("total = total + scale(i);",
                         "total = total + scale(i) + 1;")


def _config() -> CampaignConfig:
    return CampaignConfig(n_campaigns=N, seed=SEED)


def _store_rows(path: str) -> int:
    if not os.path.exists(path):
        return 0
    rows = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.startswith('{"ev": "row"') and line.endswith("\n"):
                rows += 1
    return rows


def _run(built, store_path=None):
    if store_path is None:
        return run_incremental_campaign(built, LAYER, _config(), None)
    with SectionProfileStore(store_path) as store:
        return run_incremental_campaign(built, LAYER, _config(), store)


def check_warm_hit(built, store_path: str) -> int:
    cold = _run(built, store_path)
    if cold.simulated != cold.n_total or cold.cache_hits != 0:
        print(f"FAIL: cold run expected {cold.n_total} fresh "
              f"simulations, got simulated={cold.simulated} "
              f"cache-hits={cold.cache_hits}", file=sys.stderr)
        return 1
    warm = _run(built, store_path)
    if warm.simulated != 0 or warm.replayed != 0 or \
            warm.cache_hits != len(warm.sections):
        print(f"FAIL: warm run simulated={warm.simulated} "
              f"replayed={warm.replayed} cache-hits={warm.cache_hits}/"
              f"{len(warm.sections)}; expected pure hits",
              file=sys.stderr)
        return 1
    if warm.counts != cold.counts:
        print(f"FAIL: warm counts {dict(warm.counts)} != cold "
              f"{dict(cold.counts)}", file=sys.stderr)
        return 1
    print(f"OK: warm rerun over {len(warm.sections)} sections was "
          f"served entirely from cache (n={warm.n_total}, 0 simulated)")
    return 0


def check_selective_invalidation(store_path: str) -> int:
    before = _run(build_from_source(SRC, name="edit-check"), store_path)
    after = _run(build_from_source(SRC_EDITED, name="edit-check"),
                 store_path)
    # asm sections are sub-function chunks ("main#0", ...); group by
    # the owning function
    scale = [o for o in after.sections
             if o.section.name.split("#")[0] == "scale"]
    main = [o for o in after.sections
            if o.section.name.split("#")[0] == "main"]
    if not scale or not main:
        print(f"FAIL: expected scale/main sections, got "
              f"{sorted(o.section.name for o in after.sections)}",
              file=sys.stderr)
        return 1
    if any(not o.cached or o.simulated for o in scale):
        print("FAIL: untouched function 'scale' was re-simulated after "
              "an edit to 'main'", file=sys.stderr)
        return 1
    if all(o.cached for o in main) or not any(o.simulated for o in main):
        print("FAIL: edited function 'main' was not re-simulated",
              file=sys.stderr)
        return 1
    print(f"OK: editing main() re-simulated only its sections "
          f"({sum(o.simulated for o in main)} injections); scale() "
          f"stayed cached (cold run simulated {before.simulated})")
    return 0


def check_crash_resume(built, store_path: str) -> int:
    child = subprocess.Popen(
        [sys.executable, __file__, "--child", store_path],
        cwd=ROOT, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + KILL_DEADLINE
    while time.time() < deadline:
        if _store_rows(store_path) >= MIN_ROWS_BEFORE_KILL:
            break
        if child.poll() is not None:
            break
        time.sleep(0.01)
    if child.poll() is None:
        child.send_signal(signal.SIGKILL)
        child.wait()
        print(f"killed incremental campaign with SIGKILL after "
              f"{_store_rows(store_path)} journaled rows")
    else:
        print("warning: campaign finished before the kill landed; "
              "resume check degenerates to a pure-replay check",
              file=sys.stderr)
    interrupted = _store_rows(store_path)
    if interrupted < 1:
        print("FAIL: no rows reached the store before the kill",
              file=sys.stderr)
        return 1

    resumed = _run(built, store_path)
    clean = _run(built)
    if resumed.replayed < 1 and interrupted < resumed.n_total:
        print("FAIL: resume re-simulated rows the store already held",
              file=sys.stderr)
        return 1
    if resumed.counts != clean.counts:
        print(f"FAIL: resumed counts {dict(resumed.counts)} != clean "
              f"{dict(clean.counts)}", file=sys.stderr)
        return 1
    for a, b in zip(clean.sections, resumed.sections):
        if a.profile.key != b.profile.key or \
                a.profile.counts != b.profile.counts:
            print(f"FAIL: section {a.section.name!r} profile diverged "
                  f"after resume", file=sys.stderr)
            return 1
    print(f"OK: killed at {interrupted}/{clean.n_total} rows, resumed "
          f"to a bit-identical composed result "
          f"(replayed {resumed.replayed}, simulated {resumed.simulated})")
    return 0


def check_coverage(built) -> int:
    res = _run(built)
    per_section = sum(o.profile.n for o in res.sections)
    if per_section != res.n_total or res.n_total != N:
        print(f"FAIL: section plans sum to {per_section}, composed "
              f"n_total={res.n_total}, requested {N}", file=sys.stderr)
        return 1
    print(f"OK: {N} injections partitioned exactly once across "
          f"{len(res.sections)} sections")
    return 0


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        _run(build(BENCHMARK, scale=SCALE), sys.argv[2])
        return 0

    tmp = tempfile.mkdtemp(prefix="repro-incremental-")
    built = build(BENCHMARK, scale=SCALE)
    rc = check_coverage(built)
    rc = rc or check_warm_hit(built, os.path.join(tmp, "warm.jsonl"))
    rc = rc or check_selective_invalidation(os.path.join(tmp, "edit.jsonl"))
    rc = rc or check_crash_resume(built, os.path.join(tmp, "crash.jsonl"))
    if rc == 0:
        print("PASS: incremental campaign cache checks all green")
    return rc


if __name__ == "__main__":
    sys.exit(main())
