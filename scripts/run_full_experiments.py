#!/usr/bin/env python3
"""Regenerate every paper artifact and save the reports to results/.

Honours the REPRO_* environment variables (scale, campaigns, benchmark
list); by default runs all 16 benchmarks at small scale.

Runs are crash-safe: every campaign checkpoints each classified
injection to a journal under ``results/journals/`` (override with
``REPRO_JOURNAL_DIR``; set it to the empty string to disable).  If the
run is killed — machine reboot, OOM, Ctrl-C — simply rerun this script
and already-classified injections are replayed from the journals
instead of re-executed.  Journals are keyed by a content hash of each
campaign's exact inputs, so changing scale, seed, campaign count, or a
benchmark's source starts those campaigns afresh.
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

OUT = pathlib.Path(__file__).resolve().parent.parent / "results"

os.environ.setdefault("REPRO_BENCHMARKS", "all")
os.environ.setdefault("REPRO_SCALE", "small")
os.environ.setdefault("REPRO_CAMPAIGNS", "200")
os.environ.setdefault("REPRO_PROFILE_CAMPAIGNS", "400")
os.environ.setdefault("REPRO_JOURNAL_DIR", str(OUT / "journals"))

from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    ExperimentContext,
    render_compile_time,
    render_figure2,
    render_figure3,
    render_figure17,
    render_overhead,
    render_table1,
    run_compile_time,
    run_figure2,
    run_figure3,
    run_figure17,
    run_overhead,
    run_table1,
)

OUT.mkdir(exist_ok=True)


def save(name: str, text: str) -> None:
    (OUT / f"{name}.txt").write_text(text + "\n")
    print(f"=== {name} ===")
    print(text)
    sys.stdout.flush()


def main() -> None:
    cfg = ExperimentConfig.from_env()
    print(f"config: {cfg}")
    ctx = ExperimentContext(cfg)

    t0 = time.time()
    save("table1", render_table1(run_table1(cfg)))
    print(f"[table1 done {time.time()-t0:.0f}s]")

    save("compile_time", render_compile_time(run_compile_time(cfg)))

    t0 = time.time()
    fig2 = run_figure2(context=ctx)
    save("figure2", render_figure2(fig2))
    print(f"[fig2 done {time.time()-t0:.0f}s]")

    t0 = time.time()
    fig3 = run_figure3(context=ctx)
    save("figure3", render_figure3(fig3))
    print(f"[fig3 done {time.time()-t0:.0f}s]")

    t0 = time.time()
    fig17 = run_figure17(context=ctx)
    save("figure17", render_figure17(fig17))
    print(f"[fig17 done {time.time()-t0:.0f}s]")

    t0 = time.time()
    save("overhead", render_overhead(run_overhead(context=ctx)))
    print(f"[overhead done {time.time()-t0:.0f}s]")


if __name__ == "__main__":
    main()
