#!/usr/bin/env python3
"""Shared-store concurrency acceptance check (DESIGN §16).

Exercises the multi-tenant section-profile store end-to-end:

1. **Concurrent campaigns** — two incremental campaign processes run
   against one store; one is SIGKILLed mid-run.  The survivor must
   detect the dead process's stale section claims, take the work over,
   and complete with composed counters bit-identical to a serial
   storeless reference run.
2. **Store integrity** — after the kill, ``repro store verify`` must
   pass: every surviving line checksums clean and every profile's key
   hash recomputes (the kill may leave a torn tail, which the scanner
   discards — that is not corruption).
3. **Warm resume** — a fresh campaign against the survivor's store is
   a pure warm hit: zero simulated injections, identical counters.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/ci_store_check.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.fi.campaign import CampaignConfig  # noqa: E402
from repro.fi.compose import (  # noqa: E402
    SectionProfileStore,
    run_incremental_campaign,
)
from repro.pipeline import build  # noqa: E402

BENCHMARK = "crc32"
SCALE = "small"
LAYER = "asm"
N = 600
SEED = 2023
MIN_ROWS_BEFORE_KILL = 25
KILL_DEADLINE = 300.0


def _config() -> CampaignConfig:
    return CampaignConfig(n_campaigns=N, seed=SEED)


def _store_rows(path: str) -> int:
    if not os.path.exists(path):
        return 0
    rows = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.startswith('{"ev": "row"') and line.endswith("\n"):
                rows += 1
    return rows


def _run(built, store_path=None):
    if store_path is None:
        return run_incremental_campaign(built, LAYER, _config(), None)
    with SectionProfileStore(store_path) as store:
        return run_incremental_campaign(built, LAYER, _config(), store)


def _spawn_child(store_path: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, __file__, "--child", store_path],
        cwd=ROOT, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True,
    )


def check_concurrent_kill(built, store_path: str) -> int:
    victim = _spawn_child(store_path)
    survivor = _spawn_child(store_path)

    deadline = time.time() + KILL_DEADLINE
    while time.time() < deadline:
        if _store_rows(store_path) >= MIN_ROWS_BEFORE_KILL:
            break
        if victim.poll() is not None:
            break
        time.sleep(0.01)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(f"killed one of two concurrent campaigns after "
              f"{_store_rows(store_path)} journaled rows")
    else:
        victim.wait()
        print("warning: victim campaign finished before the kill landed; "
              "check degenerates to a two-writer completion check",
              file=sys.stderr)

    _, err = survivor.communicate(timeout=KILL_DEADLINE)
    if survivor.returncode != 0:
        print(f"FAIL: surviving campaign exited {survivor.returncode}:\n"
              f"{err}", file=sys.stderr)
        return 1

    reference = _run(built)
    with SectionProfileStore(store_path) as store:
        resumed = run_incremental_campaign(built, LAYER, _config(), store)
    if resumed.counts != reference.counts:
        print(f"FAIL: post-kill composed counts {dict(resumed.counts)} "
              f"!= serial reference {dict(reference.counts)}",
              file=sys.stderr)
        return 1
    print(f"OK: survivor completed around the SIGKILL; composed "
          f"counters bit-match the serial reference "
          f"(n={reference.n_total})")
    return 0


def check_verify(store_path: str) -> int:
    rc = cli_main(["store", "verify", store_path])
    if rc != 0:
        print(f"FAIL: `repro store verify` exited {rc} on the "
              f"post-kill store", file=sys.stderr)
        return 1
    print("OK: post-kill store passes `repro store verify`")
    return 0


def check_warm_resume(built, store_path: str) -> int:
    warm = _run(built, store_path)
    if warm.simulated != 0 or warm.cache_hits != len(warm.sections):
        print(f"FAIL: resumed run simulated={warm.simulated} "
              f"cache-hits={warm.cache_hits}/{len(warm.sections)}; "
              f"expected a pure warm hit", file=sys.stderr)
        return 1
    print(f"OK: resumed campaign was a pure warm hit over "
          f"{len(warm.sections)} sections")
    return 0


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        _run(build(BENCHMARK, scale=SCALE), sys.argv[2])
        return 0

    tmp = tempfile.mkdtemp(prefix="repro-store-")
    store_path = os.path.join(tmp, "shared.jsonl")
    built = build(BENCHMARK, scale=SCALE)
    rc = check_concurrent_kill(built, store_path)
    rc = rc or check_verify(store_path)
    rc = rc or check_warm_resume(built, store_path)
    if rc == 0:
        print("PASS: shared-store concurrency checks all green")
    return rc


if __name__ == "__main__":
    sys.exit(main())
