#!/usr/bin/env python3
"""Crash-and-resume acceptance check for campaign resilience.

Launches a journaled fault-injection campaign in a subprocess, SIGKILLs
it mid-flight, resumes it from the journal via ``repro resume``, and
asserts the final :class:`CampaignResult` is bit-identical to an
uninterrupted run of the same ``(WorkSpec, CampaignConfig)``.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/ci_resume_check.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.benchsuite.registry import load_source  # noqa: E402
from repro.fi.campaign import CampaignConfig  # noqa: E402
from repro.fi.parallel import WorkSpec, run_parallel_campaign  # noqa: E402

BENCHMARK = "crc32"
SCALE = "small"
LAYER = "asm"
N = 2000
SEED = 2023
MIN_ROWS_BEFORE_KILL = 30
KILL_DEADLINE = 300.0


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def _journal_rows(path: str) -> int:
    if not os.path.exists(path):
        return 0
    rows = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.startswith('{"ev": "row"') and line.endswith("\n"):
                rows += 1
    return rows


def _records(result):
    return [(r.dyn_index, r.bit, r.outcome, r.iid, r.asm_index,
             r.asm_role, r.asm_opcode, r.trap_kind)
            for r in result.records]


def main() -> int:
    journal = os.path.join(tempfile.mkdtemp(prefix="repro-resume-"),
                           "campaign.jsonl")
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "stats", BENCHMARK,
         "--scale", SCALE, "--layer", LAYER, "-n", str(N),
         "--seed", str(SEED), "--workers", "1", "--journal", journal],
        env=_cli_env(), cwd=ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + KILL_DEADLINE
    while time.time() < deadline:
        if _journal_rows(journal) >= MIN_ROWS_BEFORE_KILL:
            break
        if child.poll() is not None:
            break
        time.sleep(0.01)
    if child.poll() is None:
        child.send_signal(signal.SIGKILL)
        child.wait()
        print(f"killed campaign with SIGKILL after "
              f"{_journal_rows(journal)} journaled rows")
    else:
        print("warning: campaign finished before the kill landed; "
              "resume check degenerates to a pure-replay check",
              file=sys.stderr)

    interrupted = _journal_rows(journal)
    if interrupted < 1:
        print("FAIL: no rows were journaled before the kill",
              file=sys.stderr)
        return 1
    if interrupted >= N:
        print("note: journal already complete", file=sys.stderr)

    resume = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume", journal,
         "--workers", "1"],
        env=_cli_env(), cwd=ROOT, capture_output=True, text=True,
        timeout=600,
    )
    if resume.returncode != 0:
        print(f"FAIL: repro resume exited {resume.returncode}\n"
              f"{resume.stderr}", file=sys.stderr)
        return 1
    print(resume.stdout.strip().splitlines()[-1])

    final = _journal_rows(journal)
    if final != N:
        print(f"FAIL: journal holds {final} rows, expected {N}",
              file=sys.stderr)
        return 1

    spec = WorkSpec(source=load_source(BENCHMARK, SCALE),
                    name=BENCHMARK, layer=LAYER)
    config = CampaignConfig(n_campaigns=N, seed=SEED)
    # opening the completed journal replays every row without
    # re-executing a single injection
    resumed = run_parallel_campaign(spec, config, workers=1,
                                    journal_path=journal)
    clean = run_parallel_campaign(spec, config, workers=1)
    if _records(resumed) != _records(clean) or \
            resumed.counts != clean.counts or \
            resumed.golden_output != clean.golden_output:
        print("FAIL: resumed campaign differs from uninterrupted run",
              file=sys.stderr)
        return 1
    print(f"OK: killed at {interrupted}/{N} rows, resumed to a "
          f"bit-identical result ({json.dumps({o.value: c for o, c in clean.counts.items() if c})})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
