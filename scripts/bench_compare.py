#!/usr/bin/env python
"""Compare a bench document against the committed baseline.

    PYTHONPATH=src python scripts/bench_compare.py BENCH_campaign.json \
        [--baseline results/bench/BENCH_campaign_baseline.json] \
        [--threshold 0.15]

Diffs the throughput figures of a fresh ``BENCH_campaign.json`` (see
``repro bench`` / ``scripts/bench_campaign.py``) against the archived
baseline and exits nonzero when any tracked metric regressed by more
than the threshold (default 15%).  Improvements and sub-threshold
noise pass; a missing metric in either document is reported but only
fails when it is missing from the *current* document (schema moves
forward, never silently drops coverage).

Tracked metrics (higher is better):

- per-layer ``naive_campaigns_per_sec`` / ``engine_campaigns_per_sec``
- per-layer codegen ``run_speedup`` (generated code vs decoded)
- per-layer incremental ``warm_speedup_vs_engine`` (cache-hit path)

The comparison refuses documents produced with different workload
params (benchmark/scale/n/seed) — a "regression" against a different
workload is noise, not signal.
"""

import argparse
import json
import sys

#: (path into the per-layer dict, short label)
LAYER_METRICS = (
    (("naive_campaigns_per_sec",), "naive camp/s"),
    (("engine_campaigns_per_sec",), "engine camp/s"),
    (("codegen", "run_speedup"), "codegen run-speedup"),
    (("incremental", "warm_speedup_vs_engine"), "incremental warm-speedup"),
)


def _dig(doc, path):
    for key in path:
        if not isinstance(doc, dict) or key not in doc:
            return None
        doc = doc[key]
    return doc


def compare(current: dict, baseline: dict, threshold: float):
    """Yield (label, base, cur, ratio, regressed) per tracked metric."""
    for layer in sorted(baseline.get("layers", {})):
        base_layer = baseline["layers"][layer]
        cur_layer = current.get("layers", {}).get(layer)
        for path, label in LAYER_METRICS:
            base = _dig(base_layer, path)
            if base is None:
                continue        # metric postdates the baseline schema
            cur = _dig(cur_layer, path) if cur_layer else None
            full = f"{layer} {label}"
            if cur is None:
                yield (full, base, None, None, True)
                continue
            ratio = cur / base if base > 0 else float("inf")
            yield (full, base, cur, ratio, ratio < 1.0 - threshold)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", nargs="?", default="BENCH_campaign.json",
                    help="fresh bench document (default: %(default)s)")
    ap.add_argument("--baseline",
                    default="results/bench/BENCH_campaign_baseline.json",
                    help="committed baseline (default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated fractional drop (default: 0.15)")
    args = ap.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    cur_params = current.get("params", {})
    base_params = baseline.get("params", {})
    if cur_params != base_params:
        print(f"FAIL: workload params differ\n  current : {cur_params}"
              f"\n  baseline: {base_params}")
        return 2

    regressions = []
    print(f"bench compare vs {args.baseline} "
          f"(threshold {args.threshold:.0%}):")
    for label, base, cur, ratio, regressed in compare(
            current, baseline, args.threshold):
        if cur is None:
            print(f"  {label:34s} MISSING from current document")
            regressions.append(label)
            continue
        mark = "REGRESSED" if regressed else "ok"
        print(f"  {label:34s} {base:10.2f} -> {cur:10.2f} "
              f"({ratio:6.2f}x)  {mark}")
        if regressed:
            regressions.append(label)

    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("PASS: no throughput regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
