"""Program-specialized codegen backend for the IR interpreter.

Third dispatch tier (``dispatch="codegen"``): instead of stepping
pre-decoded closures (one Python call per dynamic instruction), this
module emits one specialized Python source function per IR function —
operands, constants and global addresses inlined as literals, temps held
in Python locals where liveness allows — and ``exec``-compiles the lot
once per (module, layout), cached by the same content fingerprint the
decode cache uses (so in-place module mutation invalidates generated
code exactly when it invalidates the closures).

Shape of the generated code
---------------------------

Each IR function becomes ``def _gN(ip, fr, c, bb)`` structured as a
``while 1`` + chunk ladder.  A *chunk* is a basic block split at real
call sites, so every chunk is straight-line; branches stay inside the
function (``bb = K; continue``) while calls and returns unwind to a
small trampoline driver in :class:`~repro.interp.interpreter
.IRInterpreter` (no host recursion — simulated call depth is bounded by
``max_call_depth``, far beyond Python's recursion limit).  Action
tuples returned to the driver:

* ``(0,)``      — step budget would expire inside the next chunk; the
  frame has been positioned for the decoded loop, which finishes the
  run (and raises the budget trap at exactly the same step).
* ``(1, rv)``   — ``ret``.
* ``(2, dfn, args, ret_iid, flip_bit, after_bb)`` — call.

Each chunk is emitted twice: a *slow* body that updates ``dyn_total``/
``dyn_injectable`` per instruction and carries the flip hook at every
injection site, and a *fast* body with loads/stores inlined (no helper
call) and both counters coalesced into a single ``dt += N; inj += M``
at the chunk exit.  The chunk picks the slow body only when the
injection target falls inside it (``inj <= tgt < inj + M``), so the one
flip per run is always taken by exact per-site code while everything
else runs coalesced.

Bit-identity contract
---------------------

Counters follow exactly the decoded loop's order and are written back
through the carrier ``c`` in a ``finally`` — so at *every* possible
raise point (traps, checker detections, containment budgets, host
escapes out of a corrupted step) they match the naive and decoded tiers
bit-for-bit.  The fast body keeps this exact despite coalescing via a
raise-site fixup table: every generated line is mapped to its
``(dt, inj)`` offsets from the chunk entry, and an ``except`` arm in
the generated function looks up the faulting line number in the
traceback and repairs the counters before re-raising.  Injection flips
route through ``_interp._flip_value`` (a late module-attribute lookup,
so the chaos harness's fault bombs hit generated code too).

Runs that need snapshots, profiling or trace taps delegate to the
decoded loop (bit-identical by the PR-5 equivalence suite); resuming
*from* a snapshot runs generated code, entering via a short decoded
"careful" stretch when the snapshot stopped mid-chunk.

Fault models (DESIGN §14): generation is parameterized by the fault
model and cached per (module, layout, fault_model).  SEU output is
byte-identical to the historical generator.  SET swaps the flip hook
for ``_interp._set_value``.  Under the control-flow model value sites
vanish (no slow bodies, no ``inj`` accounting mid-chunk) and the
``br``/``condbr`` tails become the injection sites: each allocates one
index and, on a hit, records the corrupted edge and jumps to a
uniformly drawn block-entry chunk of the current function.
"""

from __future__ import annotations

import itertools
import struct
import weakref
from typing import Dict, List, Optional, Set, Tuple

from ..errors import FaultDetected, IRError, SimTrap
from ..ir.instructions import Instruction
from ..ir.intrinsics import (
    DETECT,
    INTRINSICS,
    PRINT_CHAR,
    PRINT_F64,
    PRINT_I64,
    math_impl,
)
from ..ir.module import Function, Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..simgen import SourceBuilder, compile_generated
from . import interpreter as _interp_mod
from .decode import (
    DecodedFunction,
    DecodedModule,
    _Decoder,
    _PACK_F64,
    _fingerprint,
    _mk_store_int,
    decode_module,
)
from .layout import GlobalLayout

__all__ = ["CodegenFunction", "CodegenModule", "codegen_module"]

_TERMINATORS = frozenset(("br", "condbr", "ret", "unreachable"))


class CodegenFunction:
    """Generated callable plus the chunk map needed to (re-)enter it."""

    __slots__ = ("fn", "run", "entry_bb")

    def __init__(self, fn: Function, entry_bb: Dict[Tuple[object, int], int]):
        self.fn = fn
        self.run = None  # filled after exec
        #: (block, instruction index) -> chunk id, for every chunk
        #: boundary: block starts and after-call positions
        self.entry_bb = entry_bb


class CodegenModule:
    """Module-wide codegen result, cached like the decode cache."""

    __slots__ = ("module", "dm", "functions", "source", "env")

    def __init__(self, module: Module, dm: DecodedModule,
                 functions: Dict[Function, CodegenFunction],
                 source: str, env: dict):
        self.module = module
        self.dm = dm
        self.functions = functions
        self.source = source
        self.env = env


_CACHE: "weakref.WeakKeyDictionary[Module, tuple]" = \
    weakref.WeakKeyDictionary()


def codegen_module(module: Module, layout: GlobalLayout,
                   fault_model: str = "seu") -> CodegenModule:
    """Generate (cached) specialized code for ``module``; regenerates if
    the module was mutated in place or the layout moved — same
    invalidation rule (and fingerprint) as :func:`decode_module`.  The
    cache keeps one generated module per fault model (the corruption
    hooks are baked into the source)."""
    fp = _fingerprint(module)
    cached = _CACHE.get(module)
    if cached is not None:
        lay, cached_fp, by_model = cached
        if cached_fp == fp and (
            lay is layout or lay.addresses == layout.addresses
        ):
            gm = by_model.get(fault_model)
            if gm is None:
                gm = _generate(module, layout, fault_model)
                by_model[fault_model] = gm
            return gm
    gm = _generate(module, layout, fault_model)
    _CACHE[module] = (layout, fp, {fault_model: gm})
    return gm


def _is_real_call(inst: Instruction) -> bool:
    """True for calls that push a simulated frame (split chunks);
    intrinsics are inlined and bad calls become raisers, mirroring
    ``_Decoder._decode_call``."""
    if inst.opcode != "call":
        return False
    callee = inst.callee
    if isinstance(callee, str):
        return False
    if callee.is_declaration:
        return False
    return len(inst.operands) == len(callee.args)


class _Emitter(_Decoder):
    """Reuses the decoder's operand/expression machinery to emit source
    statements instead of compiling closures."""

    def __init__(self, module: Module, layout: GlobalLayout,
                 fault_model: str = "seu"):
        super().__init__(module, layout)
        self.fault_model = fault_model
        #: cf model: value sites vanish, br/condbr tails inject
        self.cf = fault_model == "cf"
        #: flip hook, a late module-attribute lookup so the chaos
        #: harness's fault bombs hit generated code too
        self.flip_name = ("_interp._set_value" if fault_model == "set"
                          else "_interp._flip_value")
        #: raise-site fixup table: generated source line number ->
        #: (dt, inj) offsets from the chunk entry, for fast-body lines
        #: whose counter updates are coalesced at the chunk exit
        self.fix: Dict[int, Tuple[int, int]] = {}
        self.env.update({
            "_SimTrap": SimTrap,
            "_FaultDetected": FaultDetected,
            "_IRError": IRError,
            "_interp": _interp_mod,
            "_FIX": self.fix,
            "_ifb": int.from_bytes,
            "_upf": _PACK_F64.unpack_from,
        })
        self.ng = itertools.count()          # chunk/block env names
        self.dfn_names: Dict[Function, str] = {}
        self._types: Dict[int, str] = {}
        #: iids readable as `t{iid}` locals in the chunk being emitted
        self.local: Set[int] = set()
        #: iids that must also live in the frame's temps dict
        self.escaping: Set[int] = set()

    def injectable(self, inst: Instruction) -> bool:
        """True iff the decoded loop allocates an injection index for
        this instruction (K_VALUE or K_CALL1).  Under the cf model no
        value producer is a site (br/condbr tails allocate instead)."""
        if self.cf:
            return False
        op = inst.opcode
        if op == "call":
            callee = inst.callee
            if isinstance(callee, str):
                return (callee in INTRINSICS and callee not in
                        (PRINT_I64, PRINT_F64, PRINT_CHAR, DETECT))
            if callee.is_declaration \
                    or len(inst.operands) != len(callee.args):
                return False
            return not inst.type.is_void
        if op in _TERMINATORS or op in ("store", "alloca"):
            return False
        return True

    # -- naming helpers --------------------------------------------------

    def ty_name(self, ty) -> str:
        name = self._types.get(id(ty))
        if name is None:
            name = f"_ty{len(self._types)}"
            self._types[id(ty)] = name
            self.env[name] = ty
        return name

    def operand(self, v: Value) -> str:
        if isinstance(v, Instruction):
            if v.iid in self.local:
                return f"t{v.iid}"
            return f"t[{v.iid}]"
        if isinstance(v, Constant):
            val = v.value
            if type(val) is int:
                return f"({val})"
            name = f"_k{next(self.nk)}"
            self.env[name] = val
            return name
        if isinstance(v, GlobalVariable):
            return f"({self.layout.address_of(v)})"
        if isinstance(v, Argument):
            return f"av[{v.index}]"
        raise IRError(f"cannot evaluate operand {v!r}")

    def value_expr(self, inst: Instruction) -> str:
        # the decoder's expressions close over `ip`; the generated
        # functions hoist `mem = ip.memory` into a local
        return self._value_expr(inst, inst.opcode).replace(
            "ip.memory", "mem")

    # -- statement emission ----------------------------------------------

    def assign(self, sb: SourceBuilder, iid: int, expr: str) -> None:
        sb.line(f"t{iid} = {expr}")
        self.local.add(iid)
        if iid in self.escaping:
            sb.line(f"t[{iid}] = t{iid}")

    def emit_value(self, sb: SourceBuilder, inst: Instruction,
                   expr: str) -> None:
        """An injection site: compute, maybe flip, allocate the index."""
        iid = inst.iid
        sb.line(f"t{iid} = {expr}")
        with sb.block("if inj == tgt:"):
            sb.line(f"t{iid} = {self.flip_name}(t{iid}, "
                    f"{self.ty_name(inst.type)}, bit)")
            sb.line("ip.injected = True")
            sb.line(f"ip.injected_iid = {iid}")
        sb.line("inj += 1")
        self.local.add(iid)
        if iid in self.escaping:
            sb.line(f"t[{iid}] = t{iid}")

    def emit_call(self, sb: SourceBuilder, inst: Instruction, fn: Function,
                  block, i: int, entry_bb) -> None:
        args = [self.operand(a) for a in inst.operands]
        callee = inst.callee
        sb.line("dt += 1")
        if isinstance(callee, str):
            if callee == PRINT_I64:
                sb.line(f"out.append(_fmt_i64(int({args[0]})) + _NL)")
            elif callee == PRINT_F64:
                sb.line(f"out.append(_fmt_f64(float({args[0]})) + _NL)")
            elif callee == PRINT_CHAR:
                sb.line(f"out.append(_fmt_char(int({args[0]})))")
            elif callee == DETECT:
                sb.line("raise _FaultDetected('checker')")
            elif callee in INTRINSICS:
                name = f"_m{next(self.nk)}"
                self.env[name] = math_impl(callee)
                expr = name + "(" + ", ".join(
                    f"float({a})" for a in args) + ")"
                self.emit_value(sb, inst, expr)
            else:
                sb.line(f"raise _IRError("
                        f"{('unknown intrinsic @' + callee)!r})")
            return
        if callee.is_declaration:
            sb.line(f"raise _IRError("
                    f"{('call to declaration @' + callee.name)!r})")
            return
        if len(args) != len(callee.args):
            msg = (f"@{callee.name} expects {len(callee.args)} args, "
                   f"got {len(args)}")
            sb.line(f"raise _IRError({msg!r})")
            return
        # real call: args are evaluated before the flip decision and the
        # injectable index allocation, exactly like the decoded loop
        sb.line(f"_a = [{', '.join(args)}]")
        has_result = not inst.type.is_void
        if has_result:
            sb.line("fb = None")
            with sb.block("if inj == tgt:"):
                sb.line("fb = bit")
                sb.line(f"ip.injected_iid = {inst.iid}")
            sb.line("inj += 1")
        sb.line(f"fr.index = {i + 1}")
        after = entry_bb[(block, i + 1)]
        ret_iid = inst.iid if has_result else "None"
        fb = "fb" if has_result else "None"
        sb.line(f"return (2, {self.dfn_names[callee]}, _a, "
                f"{ret_iid}, {fb}, {after})")

    def emit_inst(self, sb: SourceBuilder, inst: Instruction, fn: Function,
                  block, i: int, entry_bb) -> None:
        op = inst.opcode
        if op == "br":
            sb.line("dt += 1")
            sb.line(f"bb = {entry_bb[(inst.target, 0)]}")
            sb.line("continue")
        elif op == "condbr":
            cond = self.operand(inst.operands[0])
            sb.line("dt += 1")
            then_bb = entry_bb[(inst.then_block, 0)]
            else_bb = entry_bb[(inst.else_block, 0)]
            sb.line(f"bb = {then_bb} if {cond} else {else_bb}")
            sb.line("continue")
        elif op == "ret":
            rv = self.operand(inst.operands[0]) if inst.operands else "None"
            sb.line("dt += 1")
            sb.line(f"return (1, {rv})")
        elif op == "store":
            v = self.operand(inst.operands[0])
            p = self.operand(inst.operands[1])
            ty = inst.operands[0].type
            sb.line("dt += 1")
            if ty.is_float:
                sb.line(f"_stf(mem, {p}, float({v}))")
            else:
                st = self.mem_fn("st", ty.size, _mk_store_int)
                sb.line(f"{st}(mem, {p}, int({v}))")
        elif op == "unreachable":
            sb.line("dt += 1")
            detail = f"@{fn.name}/{block.label}"
            sb.line(f"raise _SimTrap('unreachable', {detail!r})")
        elif op == "alloca":
            size = max(1, inst.allocated_type.size)
            sb.line("dt += 1")
            sb.line(f"sp = (ip.sp - {size}) & -8")
            sb.line("ip.sp = sp")
            with sb.block("if sp < SL:"):
                sb.line(f"raise _SimTrap('stack-overflow', "
                        f"{('@' + fn.name)!r})")
            self.assign(sb, inst.iid, "sp")
        elif op == "call":
            self.emit_call(sb, inst, fn, block, i, entry_bb)
        else:
            expr = self.value_expr(inst)
            sb.line("dt += 1")
            self.emit_value(sb, inst, expr)

    # -- fast-body emission (coalesced counters, no flip sites) ----------

    _LD_FMT = {1: "b", 2: "h", 4: "i", 8: "q"}
    _ST_FMT = {1: "B", 2: "H", 4: "I", 8: "Q"}

    def struct_fn(self, prefix: str, fmt: str, method: str) -> str:
        """Intern an unpack_from/pack_into bound method in the env."""
        name = f"_{prefix}{fmt}"
        if name not in self.env:
            self.env[name] = getattr(struct.Struct("<" + fmt), method)
        return name

    def emit_fast_load(self, sb: SourceBuilder, inst: Instruction) -> None:
        """Inline ``Memory`` load: bounds check plus a struct
        ``unpack_from`` (sign-extension included for signed widths) —
        byte-for-byte the semantics (and trap message) of the decoded
        tier's ``_lds``/``_ldu8``/``_ldf`` helpers, minus the call."""
        iid = inst.iid
        ty = inst.type
        size = 8 if (ty.is_float or ty.is_pointer) else ty.size
        sb.line(f"_a = {self.operand(inst.operands[0])}")
        sb.line(f"if _a < GB or _a + {size} > MSZ: "
                f"raise _SimTrap('segfault', "
                f"f\"access of {size} bytes at {{_a:#x}}\")")
        if ty.is_float:
            sb.line(f"t{iid} = _upf(md, _a)[0]")
        elif ty.is_pointer:  # unsigned 8-byte
            up = self.struct_fn("up", "Q", "unpack_from")
            sb.line(f"t{iid} = {up}(md, _a)[0]")
        else:
            fmt = self._LD_FMT.get(size)
            if fmt is None:  # odd width: decoded-identical slow form
                h = 1 << (size * 8 - 1)
                sb.line(f"t{iid} = _ifb(md[_a:_a + {size}], 'little')")
                sb.line(f"if t{iid} >= {h}: t{iid} -= {1 << (size * 8)}")
            else:
                up = self.struct_fn("up", fmt, "unpack_from")
                sb.line(f"t{iid} = {up}(md, _a)[0]")
        self.local.add(iid)
        if iid in self.escaping:
            sb.line(f"t[{iid}] = t{iid}")

    def emit_fast_store(self, sb: SourceBuilder, inst: Instruction) -> None:
        v = self.operand(inst.operands[0])
        p = self.operand(inst.operands[1])
        ty = inst.operands[0].type
        if ty.is_float:
            sb.line(f"_stf(mem, {p}, float({v}))")
            return
        size = ty.size
        mask = (1 << (size * 8)) - 1
        # address then value conversion, in the decoded helper's
        # argument-evaluation order, before the bounds check
        sb.line(f"_a = {p}; _v = int({v})")
        sb.line(f"if _a < GB or _a + {size} > MSZ: "
                f"raise _SimTrap('segfault', "
                f"f\"access of {size} bytes at {{_a:#x}}\")")
        fmt = self._ST_FMT.get(size)
        if fmt is None:
            sb.line(f"md[_a:_a + {size}] = "
                    f"(_v & {mask}).to_bytes({size}, 'little')")
        else:
            sp = self.struct_fn("sp", fmt, "pack_into")
            sb.line(f"{sp}(md, _a, _v & {mask})")

    def emit_fast_intrinsic(self, sb: SourceBuilder,
                            inst: Instruction) -> None:
        """Mid-chunk call that does not push a frame: inlined intrinsic
        or a raiser for declaration/arity-mismatch/unknown callees."""
        args = [self.operand(a) for a in inst.operands]
        callee = inst.callee
        if isinstance(callee, str):
            if callee == PRINT_I64:
                sb.line(f"out.append(_fmt_i64(int({args[0]})) + _NL)")
            elif callee == PRINT_F64:
                sb.line(f"out.append(_fmt_f64(float({args[0]})) + _NL)")
            elif callee == PRINT_CHAR:
                sb.line(f"out.append(_fmt_char(int({args[0]})))")
            elif callee == DETECT:
                sb.line("raise _FaultDetected('checker')")
            elif callee in INTRINSICS:
                name = f"_m{next(self.nk)}"
                self.env[name] = math_impl(callee)
                self.assign(sb, inst.iid, name + "(" + ", ".join(
                    f"float({a})" for a in args) + ")")
            else:
                sb.line(f"raise _IRError("
                        f"{('unknown intrinsic @' + callee)!r})")
        elif callee.is_declaration:
            sb.line(f"raise _IRError("
                    f"{('call to declaration @' + callee.name)!r})")
        else:
            msg = (f"@{callee.name} expects {len(callee.args)} args, "
                   f"got {len(args)}")
            sb.line(f"raise _IRError({msg!r})")

    def emit_fast(self, sb: SourceBuilder, inst: Instruction,
                  fn: Function) -> None:
        op = inst.opcode
        if op == "load":
            self.emit_fast_load(sb, inst)
        elif op == "store":
            self.emit_fast_store(sb, inst)
        elif op == "alloca":
            size = max(1, inst.allocated_type.size)
            sb.line(f"sp = (ip.sp - {size}) & -8")
            sb.line("ip.sp = sp")
            with sb.block("if sp < SL:"):
                sb.line(f"raise _SimTrap('stack-overflow', "
                        f"{('@' + fn.name)!r})")
            self.assign(sb, inst.iid, "sp")
        elif op == "call":
            self.emit_fast_intrinsic(sb, inst)
        else:
            self.assign(sb, inst.iid, self.value_expr(inst))

    def emit_fast_call_tail(self, sb: SourceBuilder, inst: Instruction,
                            block, i: int, entry_bb) -> None:
        """Chunk-ending real call, counters already coalesced (the
        trailing K_CALL1 index is allocated after argument evaluation,
        exactly like the decoded loop)."""
        args = [self.operand(a) for a in inst.operands]
        callee = inst.callee
        sb.line(f"_a = [{', '.join(args)}]")
        has_result = not inst.type.is_void
        if has_result and not self.cf:
            sb.line("inj += 1")
        sb.line(f"fr.index = {i + 1}")
        after = entry_bb[(block, i + 1)]
        ret_iid = inst.iid if has_result else "None"
        sb.line(f"return (2, {self.dfn_names[callee]}, _a, "
                f"{ret_iid}, None, {after})")

    def emit_fast_term(self, sb: SourceBuilder, inst: Instruction,
                       fn: Function, block, entry_bb) -> None:
        op = inst.opcode
        if op == "br":
            if self.cf:
                self._emit_cf_site(sb, inst, fn, block,
                                   normal_label=repr(inst.target.label))
            sb.line(f"bb = {entry_bb[(inst.target, 0)]}")
            sb.line("continue")
        elif op == "condbr":
            cond = self.operand(inst.operands[0])
            then_bb = entry_bb[(inst.then_block, 0)]
            else_bb = entry_bb[(inst.else_block, 0)]
            if self.cf:
                # evaluate the condition once, before the site check —
                # a raise inside it leaves inj unallocated, exactly as
                # in the decoded cf loop
                sb.line(f"_cv = {cond}")
                self._emit_cf_site(
                    sb, inst, fn, block,
                    normal_label=(f"({inst.then_block.label!r} if _cv "
                                  f"else {inst.else_block.label!r})"))
                sb.line(f"bb = {then_bb} if _cv else {else_bb}")
            else:
                sb.line(f"bb = {then_bb} if {cond} else {else_bb}")
            sb.line("continue")
        elif op == "ret":
            rv = self.operand(inst.operands[0]) if inst.operands else "None"
            sb.line(f"return (1, {rv})")
        else:  # unreachable
            detail = f"@{fn.name}/{block.label}"
            sb.line(f"raise _SimTrap('unreachable', {detail!r})")

    def _emit_cf_site(self, sb: SourceBuilder, inst: Instruction,
                      fn: Function, block, normal_label: str) -> None:
        """Control-flow injection site at a br/condbr tail: allocate one
        index; on a hit record the corrupted edge and jump to the
        uniformly drawn block-entry chunk instead of the normal target.
        Counters are exact here — the chunk's ``dt`` coalesce has
        already run and ``inj`` carries no mid-chunk sites under cf."""
        tname, lname, nb = self._cf_fn
        with sb.block("if inj == tgt:"):
            sb.line("inj += 1")
            sb.line("ip.injected = True")
            sb.line(f"ip.injected_iid = {inst.iid}")
            sb.line(f"ip._cf_edge = {{'layer': 'ir', 'fn': {fn.name!r}, "
                    f"'from': {block.label!r}, 'iid': {inst.iid}, "
                    f"'to': {normal_label}, "
                    f"'redirect': {lname}[bit % {nb}]}}")
            sb.line(f"bb = {tname}[bit % {nb}]")
            sb.line("continue")
        sb.line("inj += 1")

    def _register_fixups(self, first: int, stop: int,
                         dt_off: int, inj_off: int) -> None:
        for ln in range(first, stop):
            self.fix[ln] = (dt_off, inj_off)

    # -- per-function emission -------------------------------------------

    def emit_function(self, sb: SourceBuilder, fn: Function,
                      dfn: DecodedFunction, gname: str):
        # chunk structure: blocks split after every real call site
        chunks: List[Tuple[object, int, int]] = []
        for block in fn.blocks:
            insts = block.instructions
            start = 0
            for i, inst in enumerate(insts):
                if _is_real_call(inst):
                    chunks.append((block, start, i + 1))
                    start = i + 1
            chunks.append((block, start, len(insts)))
        entry_bb = {(block, start): k
                    for k, (block, start, _end) in enumerate(chunks)}

        if self.cf:
            # redirect tables for control-flow faults: chunk id of every
            # block entry (in fn.blocks order) and the matching labels
            # for edge forensics
            tname = f"_cft{next(self.ng)}"
            lname = f"_cfl{next(self.ng)}"
            self.env[tname] = [entry_bb[(b, 0)] for b in fn.blocks]
            self.env[lname] = [b.label for b in fn.blocks]
            self._cf_fn = (tname, lname, len(fn.blocks))

        # liveness: temps read outside their defining chunk must cross
        # through the frame's temps dict (locals die at trampoline
        # bounces and at the decoded fallback boundary)
        iid_chunk: Dict[int, int] = {}
        for k, (block, start, end) in enumerate(chunks):
            for inst in block.instructions[start:end]:
                iid_chunk[inst.iid] = k
        self.escaping = set()
        for k, (block, start, end) in enumerate(chunks):
            for inst in block.instructions[start:end]:
                for op in inst.operands:
                    if isinstance(op, Instruction) \
                            and iid_chunk.get(op.iid) != k:
                        self.escaping.add(op.iid)

        sb.line(f"def {gname}(ip, fr, c, bb):")
        sb.indent()
        for line in ("t = fr.temps", "av = fr.arg_values",
                     "mem = ip.memory", "out = ip.outputs",
                     "md = mem.data", "GB = mem.global_base",
                     "MSZ = mem.size",
                     "SL = mem.stack_limit", "ms = ip.max_steps",
                     "dt = c[0]", "inj = c[1]", "tgt = c[2]",
                     "bit = c[3]"):
            sb.line(line)
        sb.line("try:")
        sb.indent()
        sb.line("while 1:")
        sb.indent()

        def emit_chunk(k: int) -> None:
            block, start, end = chunks[k]
            insts = block.instructions
            n_entries = end - start
            if n_entries:
                # budget precheck: bail to the decoded loop, which will
                # raise the step-budget trap (or an earlier trap) at
                # exactly the right instruction within this chunk
                bname = f"_b{next(self.ng)}"
                cname = f"_c{next(self.ng)}"
                self.env[bname] = block
                self.env[cname] = dfn.pairs[block][1]
                with sb.block(f"if dt + {n_entries} > ms:"):
                    sb.line(f"fr.block = {bname}; fr.code = {cname}; "
                            f"fr.index = {start}")
                    sb.line("return (0,)")
            last = insts[end - 1] if n_entries else None
            tail_call = last is not None and _is_real_call(last)
            tail_term = (not tail_call and last is not None
                         and last.opcode in _TERMINATORS)
            felloff = (f"fell off block {block.label} in @{fn.name}"
                       if not (tail_call or tail_term) else None)
            ninj = sum(1 for i in range(start, end)
                       if self.injectable(insts[i]))
            if ninj:
                # slow body: per-instruction counters + flip sites,
                # taken only when the flip lands inside this chunk
                with sb.block(f"if inj <= tgt < inj + {ninj}:"):
                    self.local = set()
                    for i in range(start, end):
                        self.emit_inst(sb, insts[i], fn, block, i,
                                       entry_bb)
                    if felloff is not None:
                        sb.line(f"raise _IRError({felloff!r})")
            # fast body: coalesced counters, raise sites fixed up via
            # the traceback line table
            self.local = set()
            body_end = end - 1 if (tail_call or tail_term) else end
            npre = 0
            for i in range(start, body_end):
                inst = insts[i]
                first = sb.next_lineno
                self.emit_fast(sb, inst, fn)
                self._register_fixups(first, sb.next_lineno,
                                      i - start + 1, npre)
                if self.injectable(inst):
                    npre += 1
            if n_entries:
                sb.line(f"dt += {n_entries}"
                        + (f"; inj += {npre}" if npre else ""))
            if tail_call:
                self.emit_fast_call_tail(sb, last, block, end - 1,
                                         entry_bb)
            elif tail_term:
                self.emit_fast_term(sb, last, fn, block, entry_bb)
            else:
                sb.line(f"raise _IRError({felloff!r})")

        def emit_tree(lo: int, hi: int) -> None:
            # balanced dispatch: O(log n) compares per block transition
            # instead of a linear if/elif scan (chunk ids are internal,
            # produced only by generated branches and validated
            # `entry_bb` lookups, so every leaf is exact)
            if hi - lo == 1:
                emit_chunk(lo)
            elif hi - lo == 2:
                with sb.block(f"if bb == {lo}:"):
                    emit_chunk(lo)
                with sb.block("else:"):
                    emit_chunk(lo + 1)
            else:
                mid = (lo + hi) // 2
                with sb.block(f"if bb < {mid}:"):
                    emit_tree(lo, mid)
                with sb.block("else:"):
                    emit_tree(mid, hi)

        emit_tree(0, len(chunks))
        sb.dedent()  # while
        sb.dedent()  # try
        sb.line("except BaseException as e:")
        sb.indent()
        # coalesced fast-body counters: repair from the faulting line
        sb.line("_o = _FIX.get(e.__traceback__.tb_lineno)")
        with sb.block("if _o is not None:"):
            sb.line("dt += _o[0]; inj += _o[1]")
        sb.line("raise")
        sb.dedent()
        sb.line("finally:")
        sb.indent()
        sb.line("c[0] = dt; c[1] = inj")
        sb.dedent()
        sb.dedent()  # def
        return entry_bb


def _generate(module: Module, layout: GlobalLayout,
              fault_model: str = "seu") -> CodegenModule:
    dm = decode_module(module, layout)
    em = _Emitter(module, layout, fault_model)
    sb = SourceBuilder()
    fn_list = list(dm.functions.items())
    for n, (fn, dfn) in enumerate(fn_list):
        em.dfn_names[fn] = f"_dfn{n}"
        em.env[f"_dfn{n}"] = dfn
    functions: Dict[Function, CodegenFunction] = {}
    for n, (fn, dfn) in enumerate(fn_list):
        entry_bb = em.emit_function(sb, fn, dfn, f"_g{n}")
        functions[fn] = CodegenFunction(fn, entry_bb)
        sb.blank()
    source = sb.source()
    code = compile_generated(
        source, f"<ir-codegen:{getattr(module, 'name', 'module')}>")
    exec(code, em.env)
    for n, (fn, _dfn) in enumerate(fn_list):
        functions[fn].run = em.env[f"_g{n}"]
    return CodegenModule(module, dm, functions, source, em.env)
