"""Global-variable layout: assigns every module global an address and
materialises initializers into a :class:`~repro.memorymodel.Memory`.

The same layout is used by the assembly loader so pointer values agree
across layers (see :mod:`repro.memorymodel`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir import types as T
from ..ir.module import Module
from ..ir.values import GlobalVariable
from ..memorymodel import GLOBAL_BASE, Memory
from ..utils.bits import to_unsigned

__all__ = ["GlobalLayout"]


def _align(n: int, a: int) -> int:
    return (n + a - 1) & ~(a - 1)


class GlobalLayout:
    """Address assignment for a module's globals (deterministic: insertion
    order, 16-byte alignment)."""

    def __init__(self, module: Module):
        self.module = module
        self.addresses: Dict[str, int] = {}
        offset = GLOBAL_BASE
        for name, gv in module.globals.items():
            offset = _align(offset, 16)
            self.addresses[name] = offset
            offset += max(1, gv.value_type.size)
        self.total_size = offset - GLOBAL_BASE

    def address_of(self, gv: GlobalVariable) -> int:
        return self.addresses[gv.name]

    def make_memory(
        self, heap_size: int = 1 << 20, stack_size: int = 1 << 19,
        mem_budget: Optional[int] = None,
    ) -> Memory:
        """Fresh memory image with all globals initialised."""
        mem = Memory(self.total_size, heap_size=heap_size,
                     stack_size=stack_size, mem_budget=mem_budget)
        for name, gv in self.module.globals.items():
            self._init_global(mem, self.addresses[name], gv)
        return mem

    @staticmethod
    def _init_global(mem: Memory, addr: int, gv: GlobalVariable) -> None:
        vt = gv.value_type
        if vt.is_array:
            elem = vt.flattened_element
            values = gv.flat_initializer()
            if elem.is_float:
                for i, v in enumerate(values):
                    mem.write_f64(addr + 8 * i, float(v))
            else:
                size = elem.size
                payload = b"".join(
                    to_unsigned(int(v), size * 8).to_bytes(size, "little")
                    for v in values
                )
                mem.write_bytes(addr, payload)
        elif vt.is_float:
            mem.write_f64(addr, float(gv.initializer or 0.0))
        else:
            mem.write_int(addr, int(gv.initializer or 0), vt.size)
