"""One-time decode pass: IR instructions -> bound Python closures.

The naive interpreter loop re-dispatches every dynamic step through an
``op == "..."`` ladder and re-resolves every operand through
``isinstance`` chains.  This module runs that work **once per module**:
each instruction is compiled into a small Python closure with operands
pre-resolved to temp-slot indices, inlined integer constants, baked
global addresses, or argument slots, and with the handler (including
type widths, wrap masks, and element sizes) selected at decode time.

The decoded form of an instruction is a 4-tuple ``(kind, payload, iid,
inst)``:

======== =========================================================
kind     payload
======== =========================================================
K_VALUE  ``fn(ip, fr) -> value`` (allocates an injectable index)
K_CALL1  ``(args_fn, DecodedFunction)`` call with result (allocates)
K_CTRL   ``fn(ip, fr) -> None`` (store / void intrinsic / raiser)
K_CALL0  ``(args_fn, DecodedFunction)`` void call
K_RET    ``fn(ip, fr) -> value`` or ``None`` for ``ret void``
K_BR     ``(block, code)`` pair of the target block
K_CONDBR ``(cond_fn, then_pair, else_pair)``
K_ALLOCA allocation size in bytes
======== =========================================================

``K_BR``/``K_CONDBR`` entries carry a fifth element: the function's
shared ``block_pairs`` list ((block, code) pairs in ``fn.blocks``
order), which the control-flow fault model uses to redirect a corrupted
transfer to a uniformly drawn block.  The SEU/SET loops index only
elements 0–3 and never see it.

The driver loop in :class:`~repro.interp.interpreter.IRInterpreter`
tests ``kind <= 1`` to find the instructions that allocate injectable
dynamic indices — exactly the set the naive loop allocates for, in the
same order, so fault-injection semantics are bit-identical.

Decoding is cached per :class:`~repro.ir.module.Module` (weakly, so
modules stay collectable) and keyed by the global layout's address
assignment, which the closures bake in.
"""

from __future__ import annotations

import itertools
import struct
import weakref
from typing import Callable, Dict, List, Tuple

from ..errors import FaultDetected, IRError, SimTrap
from ..ir.instructions import Instruction
from ..ir.intrinsics import (
    DETECT,
    INTRINSICS,
    PRINT_CHAR,
    PRINT_F64,
    PRINT_I64,
    math_impl,
)
from ..ir.module import Function, Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..utils.fmt import format_char, format_f64, format_i64
from .layout import GlobalLayout

__all__ = [
    "DecodedModule",
    "DecodedFunction",
    "decode_module",
    "K_VALUE",
    "K_CALL1",
    "K_CTRL",
    "K_CALL0",
    "K_RET",
    "K_BR",
    "K_CONDBR",
    "K_ALLOCA",
]

(K_VALUE, K_CALL1, K_CTRL, K_CALL0, K_RET, K_BR, K_CONDBR,
 K_ALLOCA) = range(8)

_M64 = (1 << 64) - 1
_PACK_F64 = struct.Struct("<d")

_ICMP_SIGNED = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
                "sgt": ">", "sge": ">="}
_ICMP_UNSIGNED = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}
_FCMP_OPS = {"oeq": "==", "olt": "<", "ole": "<=", "ogt": ">",
             "oge": ">="}


class DecodedFunction:
    """Per-function decode result: one code list per basic block."""

    __slots__ = ("fn", "pairs", "entry_pair", "block_pairs")

    def __init__(self, fn: Function):
        self.fn = fn
        #: block -> (block, code) shared pair; branch payloads alias these
        self.pairs = {b: (b, []) for b in fn.blocks}
        self.entry_pair = self.pairs[fn.entry]
        #: pairs in fn.blocks order — the cf-model redirect universe
        self.block_pairs = [self.pairs[b] for b in fn.blocks]


class DecodedModule:
    """Module-wide decode result, cached per (module, layout addresses)."""

    __slots__ = ("module", "functions", "max_iid")

    def __init__(self, module: Module, functions: Dict[Function, DecodedFunction],
                 max_iid: int):
        self.module = module
        self.functions = functions
        self.max_iid = max_iid


_CACHE: "weakref.WeakKeyDictionary[Module, tuple]" = \
    weakref.WeakKeyDictionary()


def _fingerprint(module: Module) -> Tuple[int, int]:
    """Cheap structural fingerprint, sensitive to pass-applied mutation.

    Transformation passes (duplication, CSE, ...) mutate modules in
    place by inserting/removing/replacing Instruction objects, so the
    instruction count plus a hash mixing object identities with iids
    changes whenever the instruction stream does.  The O(static-size)
    walk per run() is negligible next to executing the program.
    """
    n = 0
    h = 0
    for fn in module.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                n += 1
                h ^= id(inst) ^ (inst.iid * 0x9E3779B1)
    return n, h


def decode_module(module: Module, layout: GlobalLayout) -> DecodedModule:
    """Decode ``module`` (cached; re-decodes if the module was mutated
    in place by a pass or the layout moved)."""
    fp = _fingerprint(module)
    cached = _CACHE.get(module)
    if cached is not None:
        lay, cached_fp, dm = cached
        if cached_fp == fp and (
            lay is layout or lay.addresses == layout.addresses
        ):
            return dm
    dm = _decode(module, layout)
    _CACHE[module] = (layout, fp, dm)
    return dm


# -- closure helpers (plain Python, no eval needed) -----------------------


def _detect(ip, fr):
    raise FaultDetected("checker")


def _ir_raiser(msg: str):
    def f(ip, fr):
        raise IRError(msg)
    return f


def _trap_raiser(kind: str, detail: str):
    def f(ip, fr):
        raise SimTrap(kind, detail)
    return f


def _f_one(a: float, b: float) -> int:
    # ordered 'one': false when either side is NaN
    return 1 if a == a and b == b and a != b else 0


def _fadd(a, b):
    try:
        return a + b
    except OverflowError:
        return float("inf")


def _fsub(a, b):
    try:
        return a - b
    except OverflowError:
        return float("inf")


def _fmul(a, b):
    try:
        return a * b
    except OverflowError:
        return float("inf")


def _fdiv(a, b):
    if b == 0.0:
        return float("inf") if a > 0 else (
            float("-inf") if a < 0 else float("nan")
        )
    try:
        return a / b
    except OverflowError:
        return float("inf")


def _mk_sdiv(width: int):
    h = 1 << (width - 1)
    m = (1 << width) - 1

    def f(a, b):
        if b == 0:
            raise SimTrap("div-by-zero")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return ((q + h) & m) - h

    return f


def _mk_srem(width: int):
    h = 1 << (width - 1)
    m = (1 << width) - 1

    def f(a, b):
        if b == 0:
            raise SimTrap("div-by-zero")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return ((a - q * b + h) & m) - h

    return f


def _mk_load_int(size: int, signed: bool):
    """Specialized load: one call replacing the Memory.read_int chain.

    Semantics (including the trap message) are identical to
    ``Memory.read_int(addr, size, signed)``.
    """
    h = 1 << (size * 8 - 1)
    full = 1 << (size * 8)

    def f(mem, a):
        if a < mem.global_base or a + size > mem.size:
            raise SimTrap("segfault", f"access of {size} bytes at {a:#x}")
        v = int.from_bytes(mem.data[a:a + size], "little")
        return v - full if signed and v >= h else v

    return f


def _mk_store_int(size: int):
    """Specialized store, identical to ``Memory.write_int``."""
    m = (1 << (size * 8)) - 1

    def f(mem, a, v):
        if a < mem.global_base or a + size > mem.size:
            raise SimTrap("segfault", f"access of {size} bytes at {a:#x}")
        mem.data[a:a + size] = (v & m).to_bytes(size, "little")

    return f


def _ld_f64(mem, a):
    if a < mem.global_base or a + 8 > mem.size:
        raise SimTrap("segfault", f"access of 8 bytes at {a:#x}")
    return _PACK_F64.unpack_from(mem.data, a)[0]


def _st_f64(mem, a, v):
    if a < mem.global_base or a + 8 > mem.size:
        raise SimTrap("segfault", f"access of 8 bytes at {a:#x}")
    try:
        _PACK_F64.pack_into(mem.data, a, v)
    except (OverflowError, ValueError):
        _PACK_F64.pack_into(mem.data, a, float("nan"))


def _mk_fptosi(width: int):
    h = 1 << (width - 1)
    m = (1 << width) - 1
    inf = float("inf")

    def f(v):
        if v != v or v == inf or v == -inf:
            return 0
        return ((int(v) + h) & m) - h

    return f


# -- the decoder ----------------------------------------------------------


class _Decoder:
    def __init__(self, module: Module, layout: GlobalLayout):
        self.module = module
        self.layout = layout
        self.nk = itertools.count()
        # one shared globals dict for every compiled closure
        self.env: Dict[str, object] = {
            "_f_one": _f_one,
            "_fadd": _fadd,
            "_fsub": _fsub,
            "_fmul": _fmul,
            "_fdiv": _fdiv,
            "_fmt_i64": format_i64,
            "_fmt_f64": format_f64,
            "_fmt_char": format_char,
            "_ldf": _ld_f64,
            "_stf": _st_f64,
            "_NL": "\n",
        }

    def mem_fn(self, prefix: str, size: int, maker, *args) -> str:
        name = f"_{prefix}{size}"
        if name not in self.env:
            self.env[name] = maker(size, *args)
        return name

    def compile(self, expr: str) -> Callable:
        return eval(compile("lambda ip, fr: " + expr, "<ir-decode>", "eval"),
                    self.env)

    def operand(self, v: Value) -> str:
        """Expression reading one operand inside a closure."""
        if isinstance(v, Instruction):
            return f"fr.temps[{v.iid}]"
        if isinstance(v, Constant):
            val = v.value
            if type(val) is int:
                return f"({val})"
            name = f"_k{next(self.nk)}"
            self.env[name] = val
            return name
        if isinstance(v, GlobalVariable):
            return f"({self.layout.address_of(v)})"
        if isinstance(v, Argument):
            return f"fr.arg_values[{v.index}]"
        raise IRError(f"cannot evaluate operand {v!r}")

    def width_fn(self, prefix: str, width: int, maker) -> str:
        name = f"_{prefix}{width}"
        if name not in self.env:
            self.env[name] = maker(width)
        return name

    def _wrap(self, expr: str, width: int) -> str:
        h = 1 << (width - 1)
        m = (1 << width) - 1
        return f"((({expr}) + {h}) & {m}) - {h}"

    # -- per-instruction decode ------------------------------------------

    def decode_inst(self, inst: Instruction, fn: Function, block,
                    dfn: DecodedFunction,
                    functions: Dict[Function, DecodedFunction]) -> tuple:
        op = inst.opcode
        iid = inst.iid

        if op == "br":
            return (K_BR, dfn.pairs[inst.target], iid, inst,
                    dfn.block_pairs)
        if op == "condbr":
            cond = self.compile(self.operand(inst.operands[0]))
            return (K_CONDBR,
                    (cond, dfn.pairs[inst.then_block],
                     dfn.pairs[inst.else_block]),
                    iid, inst, dfn.block_pairs)
        if op == "ret":
            payload = (self.compile(self.operand(inst.operands[0]))
                       if inst.operands else None)
            return (K_RET, payload, iid, inst)
        if op == "store":
            v = self.operand(inst.operands[0])
            p = self.operand(inst.operands[1])
            ty = inst.operands[0].type
            if ty.is_float:
                expr = f"_stf(ip.memory, {p}, float({v}))"
            else:
                st = self.mem_fn("st", ty.size, _mk_store_int)
                expr = f"{st}(ip.memory, {p}, int({v}))"
            return (K_CTRL, self.compile(expr), iid, inst)
        if op == "unreachable":
            return (K_CTRL,
                    _trap_raiser("unreachable", f"@{fn.name}/{block.label}"),
                    iid, inst)
        if op == "call":
            return self._decode_call(inst, functions)
        if op == "alloca":
            return (K_ALLOCA, max(1, inst.allocated_type.size), iid, inst)

        return (K_VALUE, self.compile(self._value_expr(inst, op)), iid, inst)

    def _decode_call(self, inst, functions) -> tuple:
        iid = inst.iid
        args = [self.operand(a) for a in inst.operands]
        callee = inst.callee
        if isinstance(callee, str):
            if callee == PRINT_I64:
                expr = f"ip.outputs.append(_fmt_i64(int({args[0]})) + _NL)"
                return (K_CTRL, self.compile(expr), iid, inst)
            if callee == PRINT_F64:
                expr = f"ip.outputs.append(_fmt_f64(float({args[0]})) + _NL)"
                return (K_CTRL, self.compile(expr), iid, inst)
            if callee == PRINT_CHAR:
                expr = f"ip.outputs.append(_fmt_char(int({args[0]})))"
                return (K_CTRL, self.compile(expr), iid, inst)
            if callee == DETECT:
                return (K_CTRL, _detect, iid, inst)
            if callee in INTRINSICS:
                name = f"_m{next(self.nk)}"
                self.env[name] = math_impl(callee)
                expr = name + "(" + ", ".join(
                    f"float({a})" for a in args) + ")"
                return (K_VALUE, self.compile(expr), iid, inst)
            return (K_CTRL, _ir_raiser(f"unknown intrinsic @{callee}"),
                    iid, inst)

        if callee.is_declaration:
            return (K_CTRL, _ir_raiser(f"call to declaration @{callee.name}"),
                    iid, inst)
        if len(args) != len(callee.args):
            return (K_CTRL,
                    _ir_raiser(f"@{callee.name} expects {len(callee.args)} "
                               f"args, got {len(args)}"),
                    iid, inst)
        args_fn = self.compile("[" + ", ".join(args) + "]")
        kind = K_CALL0 if inst.type.is_void else K_CALL1
        return (kind, (args_fn, functions[callee]), iid, inst)

    def _value_expr(self, inst, op: str) -> str:
        operand = self.operand
        if op == "load":
            a = operand(inst.operands[0])
            ty = inst.type
            if ty.is_float:
                return f"_ldf(ip.memory, {a})"
            if ty.is_pointer:
                ld = self.mem_fn("ldu", 8, _mk_load_int, False)
                return f"{ld}(ip.memory, {a})"
            ld = self.mem_fn("lds", ty.size, _mk_load_int, True)
            return f"{ld}(ip.memory, {a})"
        if op == "gep":
            a = operand(inst.operands[0])
            b = operand(inst.operands[1])
            return f"(({a}) + ({b}) * {inst.element_size}) & {_M64}"
        if op == "icmp":
            a = operand(inst.operands[0])
            b = operand(inst.operands[1])
            pred = inst.pred
            if pred in _ICMP_SIGNED:
                return f"(1 if ({a}) {_ICMP_SIGNED[pred]} ({b}) else 0)"
            ty = inst.operands[0].type
            width = 64 if ty.is_pointer else ty.bits
            m = (1 << width) - 1
            cmp = _ICMP_UNSIGNED[pred]
            return f"(1 if (({a}) & {m}) {cmp} (({b}) & {m}) else 0)"
        if op == "fcmp":
            a = operand(inst.operands[0])
            b = operand(inst.operands[1])
            if inst.pred == "one":
                return f"_f_one(({a}), ({b}))"
            return f"(1 if ({a}) {_FCMP_OPS[inst.pred]} ({b}) else 0)"
        if op == "select":
            c = operand(inst.operands[0])
            a = operand(inst.operands[1])
            b = operand(inst.operands[2])
            return f"(({a}) if ({c}) else ({b}))"
        if op in ("add", "sub", "mul", "and", "or", "xor"):
            a = operand(inst.operands[0])
            b = operand(inst.operands[1])
            sym = {"add": "+", "sub": "-", "mul": "*",
                   "and": "&", "or": "|", "xor": "^"}[op]
            return self._wrap(f"({a}) {sym} ({b})", inst.type.bits)
        if op in ("shl", "ashr", "lshr"):
            a = operand(inst.operands[0])
            b = operand(inst.operands[1])
            width = inst.type.bits
            m = (1 << width) - 1
            wm = width - 1
            if op == "shl":
                body = f"(({a}) & {m}) << (({b}) & {wm})"
            elif op == "ashr":
                body = f"({a}) >> (({b}) & {wm})"
            else:
                body = f"(({a}) & {m}) >> (({b}) & {wm})"
            return self._wrap(body, width)
        if op == "sdiv":
            name = self.width_fn("sdiv", inst.type.bits, _mk_sdiv)
            return (f"{name}(({operand(inst.operands[0])}), "
                    f"({operand(inst.operands[1])}))")
        if op == "srem":
            name = self.width_fn("srem", inst.type.bits, _mk_srem)
            return (f"{name}(({operand(inst.operands[0])}), "
                    f"({operand(inst.operands[1])}))")
        if op in ("fadd", "fsub", "fmul", "fdiv"):
            a = operand(inst.operands[0])
            b = operand(inst.operands[1])
            return f"_f{op[1:]}(({a}), ({b}))"
        if op == "sext":
            # canonical signed form is width-independent
            return f"({operand(inst.operands[0])})"
        if op == "zext":
            m = (1 << inst.operands[0].type.bits) - 1
            return f"({operand(inst.operands[0])}) & {m}"
        if op == "trunc":
            return self._wrap(operand(inst.operands[0]), inst.type.bits)
        if op == "sitofp":
            return f"float({operand(inst.operands[0])})"
        if op == "fptosi":
            name = self.width_fn("fptosi", inst.type.bits, _mk_fptosi)
            return f"{name}(({operand(inst.operands[0])}))"
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            return f"({operand(inst.operands[0])}) & {_M64}"
        raise IRError(f"cannot execute opcode {op!r}")


def _decode(module: Module, layout: GlobalLayout) -> DecodedModule:
    dec = _Decoder(module, layout)
    # shell pass first so calls and branches can reference any function
    # or block before its body is filled (mutual recursion, back edges)
    functions: Dict[Function, DecodedFunction] = {
        fn: DecodedFunction(fn)
        for fn in module.functions.values()
        if not fn.is_declaration
    }
    max_iid = 0
    for fn, dfn in functions.items():
        for block in fn.blocks:
            code = dfn.pairs[block][1]
            for inst in block.instructions:
                if inst.iid > max_iid:
                    max_iid = inst.iid
                code.append(dec.decode_inst(inst, fn, block, dfn, functions))
    return DecodedModule(module, functions, max_iid)
