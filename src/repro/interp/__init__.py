"""IR interpreter — the "LLVM level" execution and injection layer."""

from .interpreter import DEFAULT_MAX_STEPS, IRInterpreter, run_ir  # noqa: F401
from .layout import GlobalLayout  # noqa: F401

__all__ = ["IRInterpreter", "run_ir", "GlobalLayout", "DEFAULT_MAX_STEPS"]
