"""The IR interpreter — the "LLVM level" execution layer.

Executes a verified module instruction by instruction with an explicit
call stack (no host recursion), counting dynamic instructions and
optionally injecting a single bit-flip into the *destination value* of
one dynamic instruction — the LLFI-style fault model of the paper:

* injection sites are instructions that produce a result (loads, binops,
  compares, geps, casts, selects, calls-with-result);
* ``store``/``br``/``condbr``/``ret`` have no destination and are NOT
  injection sites — the root of the cross-layer deficiency;
* the flipped bit is uniform over the destination's type width.

Two further fault models open the scenario space (DESIGN §14):

* ``fault_model="set"`` — a single-event transient: a two-adjacent-bit
  burst in the produced value (:func:`_set_value`); same injectable
  sites as SEU, wider corruption;
* ``fault_model="cf"`` — a control-flow fault: the injectable sites
  become dynamic ``br``/``condbr`` executions, and a hit retargets the
  transfer to a uniformly drawn basic block of the current function.
  The corrupted edge is reported in ``ExecResult.extra["cf_edge"]``.

The interpreter shares the memory model and global layout with the
machine so program semantics (pointer values, trap behaviour, output
bytes) agree across layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..contain import (
    DEFAULT_MAX_CALL_DEPTH,
    DEFAULT_MEM_BUDGET,
    DEFAULT_OUTPUT_BUDGET,
    HOST_ESCAPE,
    OutputBuffer,
    containment_enabled,
)
from ..errors import CheckpointsDone, FaultDetected, IRError, SimTrap
from ..execresult import ExecResult, RunStatus
from ..faultmodel import validate_fault_model
from ..ir import types as T
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.intrinsics import (
    DETECT,
    INTRINSICS,
    PRINT_CHAR,
    PRINT_F64,
    PRINT_I64,
    math_impl,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..memorymodel import Memory
from ..utils import bits
from ..utils.fmt import format_char, format_f64, format_i64
from .layout import GlobalLayout

__all__ = ["IRInterpreter", "IRSnapshot", "run_ir", "DEFAULT_MAX_STEPS"]

DEFAULT_MAX_STEPS = 50_000_000

_MATH_CACHE: Dict[str, Callable[..., float]] = {}


def _math(name: str) -> Callable[..., float]:
    fn = _MATH_CACHE.get(name)
    if fn is None:
        fn = math_impl(name)
        _MATH_CACHE[name] = fn
    return fn


@dataclass
class _Frame:
    fn: Function
    block: BasicBlock
    index: int
    temps: Dict[int, Union[int, float]]
    sp_save: int
    #: iid in the *caller's* temps to receive our return value
    ret_target: Optional[int]
    #: actual argument values, indexed by Argument.index
    arg_values: List[Union[int, float]] = None  # type: ignore[assignment]
    #: bit to flip in our return value when it lands in the caller
    ret_flip_bit: Optional[int] = None
    #: decoded code list of ``block`` (pre-decoded dispatch only)
    code: Optional[list] = None


class IRSnapshot:
    """Complete mid-run interpreter state, as captured right before the
    step that allocates one injectable dynamic index.

    Replaying from a snapshot with ``inject_index`` equal to that index
    executes only the post-injection suffix and is bit-identical to a
    full run — the basis of the checkpoint-replay campaign engine.
    """

    __slots__ = ("mem", "heap_break", "sp", "outputs", "dyn_total",
                 "dyn_injectable", "frames")

    def __init__(self, mem, heap_break, sp, outputs, dyn_total,
                 dyn_injectable, frames):
        self.mem = mem                      # bytes copy of memory image
        self.heap_break = heap_break
        self.sp = sp
        self.outputs = outputs              # tuple of emitted strings
        self.dyn_total = dyn_total
        self.dyn_injectable = dyn_injectable
        #: tuple of (fn, block, code, index, temps, sp_save, ret_target,
        #: ret_flip_bit, arg_values) per frame, innermost last
        self.frames = frames


def _flip_value(value: Union[int, float], ty: T.Type, bit: int) -> Union[int, float]:
    """Flip one bit of a destination value according to its type."""
    if ty.is_float:
        return bits.flip_float_bit(float(value), bit % 64)
    if ty.is_pointer:
        return (int(value) ^ (1 << (bit % 64))) & bits.mask(64)
    width = ty.bits
    return bits.flip_int_bit(int(value), bit % width, width)


def _set_value(value: Union[int, float], ty: T.Type, bit: int) -> Union[int, float]:
    """Corrupt a destination value with a two-adjacent-bit burst.

    The IR analogue of a single-event transient (SET): a glitch in
    combinational logic is latched by the consuming flip-flops, so the
    corruption is wider than one latch.  The asm layer additionally
    corrupts a condition flag for GPR-writing instructions; flags have
    no IR analogue, so here a SET is the burst alone.  Degrades to a
    single flip at width 1 (both positions coincide mod the width).
    """
    if ty.is_float:
        v = bits.flip_float_bit(float(value), bit % 64)
        return bits.flip_float_bit(v, (bit + 1) % 64)
    if ty.is_pointer:
        m = (1 << (bit % 64)) | (1 << ((bit + 1) % 64))
        return (int(value) ^ m) & bits.mask(64)
    width = ty.bits
    b1 = bit % width
    b2 = (bit + 1) % width
    v = bits.flip_int_bit(int(value), b1, width)
    if b2 != b1:
        v = bits.flip_int_bit(v, b2, width)
    return v


def _c_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


class IRInterpreter:
    """One interpreter instance per execution (holds mutable run state)."""

    def __init__(
        self,
        module: Module,
        layout: Optional[GlobalLayout] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        heap_size: int = 1 << 20,
        stack_size: int = 1 << 19,
        trace=None,
        dispatch: str = "decoded",
        contain: Optional[bool] = None,
        max_call_depth: Optional[int] = None,
        output_budget: Optional[int] = None,
        mem_budget: Optional[int] = None,
        fault_model: Optional[str] = None,
    ):
        if dispatch not in ("decoded", "naive", "codegen"):
            raise IRError(f"unknown dispatch mode {dispatch!r}")
        self.module = module
        self.layout = layout or GlobalLayout(module)
        self.max_steps = max_steps
        self.dispatch = dispatch
        # what an injection corrupts (seu/set/cf, see repro.faultmodel);
        # typos raise CampaignError here rather than silently running SEU
        self.fault_model = validate_fault_model(fault_model)
        # fault containment (DESIGN §11): resource budgets + host-escape
        # boundary, identical in both dispatch modes
        self.contain = containment_enabled(contain)
        if self.contain:
            self.max_call_depth = (max_call_depth if max_call_depth
                                   is not None else DEFAULT_MAX_CALL_DEPTH)
            if mem_budget is None:
                mem_budget = DEFAULT_MEM_BUDGET
            outputs: List[str] = OutputBuffer(
                output_budget if output_budget is not None
                else DEFAULT_OUTPUT_BUDGET)
        else:
            self.max_call_depth = 1 << 62
            mem_budget = None
            outputs = []
        self._armed = False
        self.memory: Memory = self.layout.make_memory(
            heap_size, stack_size, mem_budget=mem_budget)
        self.sp = self.memory.stack_base
        self.outputs = outputs
        self.dyn_total = 0
        self.dyn_injectable = 0
        # fault injection state
        self.inject_index: Optional[int] = None
        self.inject_bit: int = 0
        self.injected = False
        self.injected_iid: Optional[int] = None
        #: forensics for a control-flow fault: the corrupted edge
        self._cf_edge: Optional[Dict[str, object]] = None
        # profiling state: preallocated per-iid array while running,
        # converted to the public dict form at run end
        self.per_inst_counts: Optional[Dict[int, int]] = None
        self._counts: Optional[List[int]] = None
        # trace tap (off by default; see repro.trace) — accepts a
        # TraceConfig or a ready IRTracer
        self.tracer = None
        if trace is not None:
            from ..trace.tap import IRTracer

            tracer = trace if isinstance(trace, IRTracer) else IRTracer(trace)
            tracer.attach(self)
            self.tracer = tracer

    # -- public API ------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        args: Sequence[Union[int, float]] = (),
        inject_index: Optional[int] = None,
        inject_bit: int = 0,
        profile: bool = False,
        resume_from: Optional[IRSnapshot] = None,
        checkpoints: Optional[Sequence[int]] = None,
        checkpoint_cb=None,
    ) -> ExecResult:
        """Execute ``entry`` and classify the run.

        ``inject_index`` selects the N-th injectable dynamic instruction
        (0-based) whose destination value gets ``inject_bit`` flipped.
        ``profile=True`` additionally records per-static-instruction
        dynamic execution counts.

        Checkpoint-replay (pre-decoded dispatch only): ``checkpoints``
        is a sorted list of distinct injectable indices; right before
        the step that allocates each one, ``checkpoint_cb(index,
        snapshot)`` receives an :class:`IRSnapshot`.  After the last
        snapshot the run stops early (status OK,
        ``extra["early_stop"]``).  ``resume_from`` restores a snapshot
        and executes only the suffix.
        """
        self.inject_index = inject_index
        self.inject_bit = inject_bit
        self._cf_edge = None
        if profile:
            self._counts = [0] * (self._iid_bound() + 1)
        fn = self.module.function(entry)
        early = False
        escape = None
        self._armed = False
        try:
            if self.dispatch == "decoded":
                ret = self._execute_decoded(
                    fn, list(args), resume_from, checkpoints, checkpoint_cb
                )
            elif self.dispatch == "codegen":
                # snapshots, profiling and trace taps run the decoded
                # loop (bit-identical; checkpointing must stream decoded
                # frames anyway) — generated code serves plain runs and
                # snapshot *resumes*, the hot paths of the engine
                if (checkpoints is not None or self._counts is not None
                        or self.tracer is not None):
                    ret = self._execute_decoded(
                        fn, list(args), resume_from, checkpoints,
                        checkpoint_cb
                    )
                else:
                    ret = self._execute_codegen(fn, list(args), resume_from)
            else:
                if resume_from is not None or checkpoints is not None:
                    raise IRError(
                        "checkpoint-replay requires dispatch='decoded'")
                ret = self._execute(fn, list(args))
            status, trap = RunStatus.OK, None
        except CheckpointsDone:
            ret, status, trap = None, RunStatus.OK, None
            early = True
        except FaultDetected:
            ret, status, trap = None, RunStatus.DETECTED, None
        except SimTrap as t:
            ret, status, trap = None, RunStatus.TRAP, t.kind
        except Exception as exc:
            # the containment boundary (DESIGN §11): under an injection,
            # any host exception escaping a faulty step is a DUE, not a
            # harness crash.  Golden/uninjected runs re-raise — a host
            # exception there is a real toolchain bug and must surface.
            if not (self.contain and self._armed
                    and inject_index is not None):
                raise
            ret, status, trap = None, RunStatus.TRAP, HOST_ESCAPE
            escape = {"exc_type": type(exc).__name__, "detail": str(exc),
                      "layer": "ir", "step": self.dyn_total,
                      "index": self.dyn_injectable}
        if self.tracer is not None:
            self.tracer.finish()
        if self._counts is not None:
            self.per_inst_counts = {
                i: c for i, c in enumerate(self._counts) if c
            }
        extra: Dict[str, object] = {}
        if self.tracer is not None:
            extra["trace"] = self.tracer.trace
        if early:
            extra["early_stop"] = True
        if escape is not None:
            extra["host_escape"] = escape
        if self._cf_edge is not None:
            extra["cf_edge"] = self._cf_edge
        return ExecResult(
            status=status,
            output="".join(self.outputs),
            dyn_total=self.dyn_total,
            dyn_injectable=self.dyn_injectable,
            trap_kind=trap,
            return_value=ret,
            injected=self.injected,
            injected_iid=self.injected_iid,
            per_inst_counts=self.per_inst_counts,
            extra=extra,
        )

    def _iid_bound(self) -> int:
        return max(
            (inst.iid for inst in self.module.instructions()), default=0
        )

    # -- execution core -----------------------------------------------------

    def _execute(self, entry_fn: Function, args: List[Union[int, float]]):
        if entry_fn.is_declaration:
            raise IRError(f"cannot execute declaration @{entry_fn.name}")
        stack: List[_Frame] = []
        frame = self._push_frame(entry_fn, args, None)
        mem = self.memory
        counts = self._counts
        tracer = self.tracer
        hook = tracer.hook if tracer is not None else None
        # single per-step test whether profiling or tracing: keeps the
        # disabled path as cheap as the profiling-only loop always was
        track = counts is not None or hook is not None
        fm = self.fault_model
        cf_mode = fm == "cf"
        flip = _set_value if fm == "set" else _flip_value
        self._armed = True

        while True:
            block = frame.block
            insts = block.instructions
            if frame.index >= len(insts):
                raise IRError(
                    f"fell off block {block.label} in @{frame.fn.name}"
                )
            inst = insts[frame.index]
            frame.index += 1

            self.dyn_total += 1
            if self.dyn_total > self.max_steps:
                raise SimTrap("step-budget",
                              f"exceeded {self.max_steps} steps")
            if track:
                if counts is not None:
                    counts[inst.iid] += 1
                if hook is not None:
                    hook(inst, frame)

            op = inst.opcode

            # ---- terminators & control flow (no destination value) -----
            # under the cf model br/condbr ARE the injection sites: a
            # hit retargets the transfer to a uniformly drawn block
            if op == "br":
                target_block = inst.target
                if cf_mode:
                    idx = self.dyn_injectable
                    self.dyn_injectable = idx + 1
                    if idx == self.inject_index:
                        target_block = self._redirect_block(
                            frame, inst, target_block)
                frame.block = target_block
                frame.index = 0
                continue
            if op == "condbr":
                cond = self._value(frame, inst.operands[0])
                target_block = inst.then_block if cond else inst.else_block
                if cf_mode:
                    idx = self.dyn_injectable
                    self.dyn_injectable = idx + 1
                    if idx == self.inject_index:
                        target_block = self._redirect_block(
                            frame, inst, target_block)
                frame.block = target_block
                frame.index = 0
                continue
            if op == "ret":
                retval = (
                    self._value(frame, inst.operands[0]) if inst.operands else None
                )
                self.sp = frame.sp_save
                if not stack:
                    return retval
                target, flip_bit = frame.ret_target, frame.ret_flip_bit
                callee_ret = frame.fn.return_type
                frame = stack.pop()
                if target is not None:
                    if flip_bit is not None:
                        retval = flip(retval, callee_ret, flip_bit)
                        self.injected = True
                    frame.temps[target] = retval
                continue
            if op == "store":
                value = self._value(frame, inst.operands[0])
                addr = self._value(frame, inst.operands[1])
                self._store_typed(addr, value, inst.operands[0].type)
                continue
            if op == "unreachable":
                raise SimTrap("unreachable", f"@{frame.fn.name}/{block.label}")

            if op == "call":
                frame = self._do_call(inst, frame, stack)
                continue

            if op == "alloca":
                size = max(1, inst.allocated_type.size)
                self.sp = (self.sp - size) & ~7
                if self.sp < mem.stack_limit:
                    raise SimTrap("stack-overflow", f"@{frame.fn.name}")
                frame.temps[inst.iid] = self.sp
                continue

            # ---- value-producing instructions (injection sites) --------
            # flip before allocating the index (same order as the
            # decoded loop) so a host exception inside the flip leaves
            # both dispatch modes with identical counters; under the cf
            # model value producers allocate no indices at all
            result = self._compute(frame, inst, op)
            if not cf_mode:
                idx = self.dyn_injectable
                if idx == self.inject_index:
                    result = flip(result, inst.type, self.inject_bit)
                    self.injected = True
                    self.injected_iid = inst.iid
                self.dyn_injectable = idx + 1
            frame.temps[inst.iid] = result

    # -- pre-decoded execution core ---------------------------------------

    def _execute_decoded(self, entry_fn: Function,
                         args: List[Union[int, float]],
                         resume_from: Optional[IRSnapshot] = None,
                         checkpoints: Optional[Sequence[int]] = None,
                         checkpoint_cb=None):
        from .decode import decode_module

        dm = decode_module(self.module, self.layout)
        if resume_from is None:
            if entry_fn.is_declaration:
                raise IRError(f"cannot execute declaration @{entry_fn.name}")
            stack: List[_Frame] = []
            frame = self._push_frame(entry_fn, args, None)
            dfn = dm.functions[entry_fn]
            frame.block, frame.code = dfn.entry_pair
        else:
            snap = resume_from
            mem = self.memory
            if len(snap.mem) != len(mem.data):
                raise IRError("snapshot does not match interpreter memory "
                              "geometry")
            mem.data[:] = snap.mem
            mem.heap_break = snap.heap_break
            self.sp = snap.sp
            self.outputs[:] = snap.outputs
            self.dyn_total = snap.dyn_total
            self.dyn_injectable = snap.dyn_injectable
            # full reset: one interpreter may serve many replays
            self.injected = False
            self.injected_iid = None
            frames = [
                _Frame(fn=f, block=b, index=i, temps=dict(t), sp_save=s,
                       ret_target=rt, arg_values=list(av), ret_flip_bit=rf,
                       code=c)
                for (f, b, c, i, t, s, rt, rf, av) in snap.frames
            ]
            frame = frames.pop()
            stack = frames
        self._armed = True
        if self.fault_model == "cf":
            return self._run_decoded_cf(frame, stack, checkpoints,
                                        checkpoint_cb)
        return self._run_decoded(frame, stack, checkpoints, checkpoint_cb)

    def _run_decoded(self, frame: _Frame, stack: List[_Frame],
                     watch: Optional[Sequence[int]] = None,
                     watch_cb=None):
        """The pre-decoded dispatch loop.

        Entries are ``(kind, payload, iid, inst)`` tuples (see
        :mod:`repro.interp.decode`); kinds 0 and 1 allocate injectable
        dynamic indices exactly as the naive loop does.
        """
        stack_limit = self.memory.stack_limit
        max_call_depth = self.max_call_depth
        counts = self._counts
        tracer = self.tracer
        hook = tracer.hook if tracer is not None else None
        track = counts is not None or hook is not None

        dt = self.dyn_total
        inj = self.dyn_injectable
        max_steps = self.max_steps
        target = self.inject_index if self.inject_index is not None else -1
        inject_bit = self.inject_bit
        flip = _set_value if self.fault_model == "set" else _flip_value

        watch_iter = iter(watch) if watch is not None else None
        next_watch = (next(watch_iter, None)
                      if watch_iter is not None else None)

        code = frame.code
        i = frame.index
        try:
            while True:
                e = code[i]
                kind = e[0]

                if (next_watch is not None and kind <= 1
                        and inj == next_watch):
                    frame.index = i
                    self.dyn_total = dt
                    self.dyn_injectable = inj
                    watch_cb(next_watch, self._snapshot(stack, frame))
                    next_watch = next(watch_iter, None)
                    if next_watch is None:
                        raise CheckpointsDone()

                i += 1
                dt += 1
                if dt > max_steps:
                    raise SimTrap("step-budget",
                                  f"exceeded {max_steps} steps")
                if track:
                    if counts is not None:
                        counts[e[2]] += 1
                    if hook is not None:
                        frame.index = i
                        self.dyn_total = dt
                        self.dyn_injectable = inj
                        hook(e[3], frame)

                if kind == 0:       # value producer (injection site)
                    r = e[1](self, frame)
                    if inj == target:
                        r = flip(r, e[3].type, inject_bit)
                        self.injected = True
                        self.injected_iid = e[2]
                    inj += 1
                    frame.temps[e[2]] = r
                elif kind == 5:     # br
                    frame.block, code = e[1]
                    frame.code = code
                    i = 0
                elif kind == 6:     # condbr
                    p = e[1]
                    frame.block, code = p[1] if p[0](self, frame) else p[2]
                    frame.code = code
                    i = 0
                elif kind == 2:     # store / void intrinsic / raiser
                    e[1](self, frame)
                elif kind == 4:     # ret
                    p = e[1]
                    rv = p(self, frame) if p is not None else None
                    self.sp = frame.sp_save
                    if not stack:
                        return rv
                    tgt = frame.ret_target
                    fb = frame.ret_flip_bit
                    callee_ret = frame.fn.return_type
                    frame = stack.pop()
                    code = frame.code
                    i = frame.index
                    if tgt is not None:
                        if fb is not None:
                            rv = flip(rv, callee_ret, fb)
                            self.injected = True
                        frame.temps[tgt] = rv
                elif kind == 7:     # alloca
                    sp = (self.sp - e[1]) & ~7
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"@{frame.fn.name}")
                    frame.temps[e[2]] = sp
                else:               # call (kind 1 with result, 3 void)
                    p = e[1]
                    call_args = p[0](self, frame)
                    flip_bit = None
                    if kind == 1:
                        if inj == target:
                            flip_bit = inject_bit
                            self.injected_iid = e[2]
                        inj += 1
                    dfn = p[1]
                    if len(stack) >= max_call_depth:
                        raise SimTrap(
                            "stack-overflow",
                            f"call depth {max_call_depth} exceeded "
                            f"calling @{dfn.fn.name}")
                    sp_save = self.sp
                    sp = sp_save - 16
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"calling @{dfn.fn.name}")
                    frame.index = i
                    stack.append(frame)
                    block, code = dfn.entry_pair
                    frame = _Frame(
                        fn=dfn.fn, block=block, index=0, temps={},
                        sp_save=sp_save,
                        ret_target=e[2] if kind == 1 else None,
                        arg_values=call_args, ret_flip_bit=flip_bit,
                        code=code,
                    )
                    i = 0
        except IndexError:
            raise IRError(
                f"fell off block {frame.block.label} in @{frame.fn.name}"
            ) from None
        except KeyError as k:
            raise IRError(
                f"use of unevaluated %t{k.args[0]} in @{frame.fn.name}"
            ) from None
        finally:
            self.dyn_total = dt
            self.dyn_injectable = inj

    def _run_decoded_cf(self, frame: _Frame, stack: List[_Frame],
                        watch: Optional[Sequence[int]] = None,
                        watch_cb=None):
        """Pre-decoded dispatch loop under the control-flow fault model.

        A dedicated sibling of :meth:`_run_decoded` so the SEU/SET hot
        path pays nothing: here the injectable sites are ``br`` (kind 5)
        and ``condbr`` (kind 6) — decode entry element 4 carries the
        per-function block list for the redirect — while value
        producers and calls allocate no indices at all.
        """
        stack_limit = self.memory.stack_limit
        max_call_depth = self.max_call_depth
        counts = self._counts
        tracer = self.tracer
        hook = tracer.hook if tracer is not None else None
        track = counts is not None or hook is not None

        dt = self.dyn_total
        inj = self.dyn_injectable
        max_steps = self.max_steps
        target = self.inject_index if self.inject_index is not None else -1
        inject_bit = self.inject_bit

        watch_iter = iter(watch) if watch is not None else None
        next_watch = (next(watch_iter, None)
                      if watch_iter is not None else None)

        code = frame.code
        i = frame.index
        try:
            while True:
                e = code[i]
                kind = e[0]

                if (next_watch is not None and (kind == 5 or kind == 6)
                        and inj == next_watch):
                    frame.index = i
                    self.dyn_total = dt
                    self.dyn_injectable = inj
                    watch_cb(next_watch, self._snapshot(stack, frame))
                    next_watch = next(watch_iter, None)
                    if next_watch is None:
                        raise CheckpointsDone()

                i += 1
                dt += 1
                if dt > max_steps:
                    raise SimTrap("step-budget",
                                  f"exceeded {max_steps} steps")
                if track:
                    if counts is not None:
                        counts[e[2]] += 1
                    if hook is not None:
                        frame.index = i
                        self.dyn_total = dt
                        self.dyn_injectable = inj
                        hook(e[3], frame)

                if kind == 0:       # value producer (not a cf site)
                    frame.temps[e[2]] = e[1](self, frame)
                elif kind == 5:     # br (injection site)
                    if inj == target:
                        pairs = e[4]
                        pair = pairs[inject_bit % len(pairs)]
                        self._note_cf_edge(frame, e[3], e[1][0], pair[0])
                        frame.block, code = pair
                    else:
                        frame.block, code = e[1]
                    inj += 1
                    frame.code = code
                    i = 0
                elif kind == 6:     # condbr (injection site)
                    p = e[1]
                    normal = p[1] if p[0](self, frame) else p[2]
                    if inj == target:
                        pairs = e[4]
                        pair = pairs[inject_bit % len(pairs)]
                        self._note_cf_edge(frame, e[3], normal[0], pair[0])
                        frame.block, code = pair
                    else:
                        frame.block, code = normal
                    inj += 1
                    frame.code = code
                    i = 0
                elif kind == 2:     # store / void intrinsic / raiser
                    e[1](self, frame)
                elif kind == 4:     # ret (never flipped under cf)
                    p = e[1]
                    rv = p(self, frame) if p is not None else None
                    self.sp = frame.sp_save
                    if not stack:
                        return rv
                    tgt = frame.ret_target
                    frame = stack.pop()
                    code = frame.code
                    i = frame.index
                    if tgt is not None:
                        frame.temps[tgt] = rv
                elif kind == 7:     # alloca
                    sp = (self.sp - e[1]) & ~7
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"@{frame.fn.name}")
                    frame.temps[e[2]] = sp
                else:               # call (results never flipped under cf)
                    p = e[1]
                    call_args = p[0](self, frame)
                    dfn = p[1]
                    if len(stack) >= max_call_depth:
                        raise SimTrap(
                            "stack-overflow",
                            f"call depth {max_call_depth} exceeded "
                            f"calling @{dfn.fn.name}")
                    sp_save = self.sp
                    sp = sp_save - 16
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"calling @{dfn.fn.name}")
                    frame.index = i
                    stack.append(frame)
                    block, code = dfn.entry_pair
                    frame = _Frame(
                        fn=dfn.fn, block=block, index=0, temps={},
                        sp_save=sp_save,
                        ret_target=e[2] if kind == 1 else None,
                        arg_values=call_args, ret_flip_bit=None,
                        code=code,
                    )
                    i = 0
        except IndexError:
            raise IRError(
                f"fell off block {frame.block.label} in @{frame.fn.name}"
            ) from None
        except KeyError as k:
            raise IRError(
                f"use of unevaluated %t{k.args[0]} in @{frame.fn.name}"
            ) from None
        finally:
            self.dyn_total = dt
            self.dyn_injectable = inj

    # -- codegen execution core -------------------------------------------

    def _execute_codegen(self, entry_fn: Function,
                         args: List[Union[int, float]],
                         resume_from: Optional[IRSnapshot] = None):
        from .codegen import codegen_module

        gm = codegen_module(self.module, self.layout, self.fault_model)
        careful = False
        if resume_from is None:
            if entry_fn.is_declaration:
                raise IRError(f"cannot execute declaration @{entry_fn.name}")
            stack: List[_Frame] = []
            frame = self._push_frame(entry_fn, args, None)
            dfn = gm.dm.functions[entry_fn]
            frame.block, frame.code = dfn.entry_pair
            bbs: List[int] = []
            bb = 0
        else:
            snap = resume_from
            mem = self.memory
            if len(snap.mem) != len(mem.data):
                raise IRError("snapshot does not match interpreter memory "
                              "geometry")
            mem.data[:] = snap.mem
            mem.heap_break = snap.heap_break
            self.sp = snap.sp
            self.outputs[:] = snap.outputs
            self.dyn_total = snap.dyn_total
            self.dyn_injectable = snap.dyn_injectable
            self.injected = False
            self.injected_iid = None
            frames = [
                _Frame(fn=f, block=b, index=i, temps=dict(t), sp_save=s,
                       ret_target=rt, arg_values=list(av), ret_flip_bit=rf,
                       code=c)
                for (f, b, c, i, t, s, rt, rf, av) in snap.frames
            ]
            frame = frames.pop()
            stack = frames
            # outer frames always suspend at after-call positions, which
            # are chunk boundaries by construction
            bbs = [gm.functions[f.fn].entry_bb[(f.block, f.index)]
                   for f in stack]
            entry = gm.functions[frame.fn].entry_bb.get(
                (frame.block, frame.index))
            if entry is None:
                # snapshot stopped mid-chunk: step decoded entries until
                # the next control transfer, then enter generated code
                careful = True
                bb = -1
            else:
                bb = entry
        self._armed = True
        return self._run_codegen(gm, frame, stack, bbs, bb, careful)

    def _run_codegen(self, gm, frame: _Frame, stack: List[_Frame],
                     bbs: List[int], bb: int, careful: bool):
        """Trampoline driver for generated code.

        Generated functions execute whole chunks and return action
        tuples (see :mod:`repro.interp.codegen`); this loop handles the
        frame pushes/pops (with the decoded loop's exact depth and
        stack-overflow semantics), return-value flips, and the fallback
        onto the decoded loop when the step budget is about to expire.
        """
        c = [self.dyn_total, self.dyn_injectable,
             self.inject_index if self.inject_index is not None else -1,
             self.inject_bit]
        stack_limit = self.memory.stack_limit
        max_call_depth = self.max_call_depth
        fns = gm.functions
        cf_mode = self.fault_model == "cf"
        flip = _set_value if self.fault_model == "set" else _flip_value
        careful_step = self._careful_step_cf if cf_mode else \
            self._careful_step
        decoded_loop = self._run_decoded_cf if cf_mode else \
            self._run_decoded
        try:
            r = careful_step(frame, stack, c,
                             fns[frame.fn]) if careful else None
            while True:
                if r is None:
                    r = fns[frame.fn].run(self, frame, c, bb)
                tag = r[0]
                if tag == 1:        # ret
                    rv = r[1]
                    self.sp = frame.sp_save
                    if not stack:
                        return rv
                    tgt = frame.ret_target
                    fb = frame.ret_flip_bit
                    callee_ret = frame.fn.return_type
                    frame = stack.pop()
                    bb = bbs.pop()
                    if tgt is not None:
                        if fb is not None:
                            rv = flip(rv, callee_ret, fb)
                            self.injected = True
                        frame.temps[tgt] = rv
                elif tag == 2:      # call
                    dfn = r[1]
                    if len(stack) >= max_call_depth:
                        raise SimTrap(
                            "stack-overflow",
                            f"call depth {max_call_depth} exceeded "
                            f"calling @{dfn.fn.name}")
                    sp_save = self.sp
                    sp = sp_save - 16
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"calling @{dfn.fn.name}")
                    stack.append(frame)
                    bbs.append(r[5])
                    block, code = dfn.entry_pair
                    frame = _Frame(
                        fn=dfn.fn, block=block, index=0, temps={},
                        sp_save=sp_save, ret_target=r[3],
                        arg_values=r[2], ret_flip_bit=r[4], code=code,
                    )
                    bb = 0
                elif tag == 0:      # budget bail: decoded finishes
                    self.dyn_total = c[0]
                    self.dyn_injectable = c[1]
                    try:
                        return decoded_loop(frame, stack)
                    finally:
                        c[0] = self.dyn_total
                        c[1] = self.dyn_injectable
                else:               # careful stepper reached a block start
                    bb = fns[frame.fn].entry_bb[(frame.block, 0)]
                r = None
        except KeyError as k:
            raise IRError(
                f"use of unevaluated %t{k.args[0]} in @{frame.fn.name}"
            ) from None
        finally:
            self.dyn_total = c[0]
            self.dyn_injectable = c[1]

    def _careful_step(self, frame: _Frame, stack: List[_Frame], c,
                      gf) -> tuple:
        """Execute decoded entries of a mid-chunk frame until the next
        control transfer (which always lands on a chunk boundary),
        mirroring ``_run_decoded``'s counter and injection semantics.
        Returns a codegen driver action: ``(1, rv)``, ``(2, ...)`` or
        ``(3,)`` after positioning ``frame`` at a block start."""
        dt, inj, target, inject_bit = c
        max_steps = self.max_steps
        stack_limit = self.memory.stack_limit
        flip = _set_value if self.fault_model == "set" else _flip_value
        code = frame.code
        i = frame.index
        try:
            while True:
                e = code[i]
                kind = e[0]
                i += 1
                dt += 1
                if dt > max_steps:
                    raise SimTrap("step-budget",
                                  f"exceeded {max_steps} steps")
                if kind == 0:
                    r = e[1](self, frame)
                    if inj == target:
                        r = flip(r, e[3].type, inject_bit)
                        self.injected = True
                        self.injected_iid = e[2]
                    inj += 1
                    frame.temps[e[2]] = r
                elif kind == 5:
                    frame.block, frame.code = e[1]
                    frame.index = 0
                    return (3,)
                elif kind == 6:
                    p = e[1]
                    frame.block, frame.code = \
                        p[1] if p[0](self, frame) else p[2]
                    frame.index = 0
                    return (3,)
                elif kind == 2:
                    e[1](self, frame)
                elif kind == 4:
                    p = e[1]
                    rv = p(self, frame) if p is not None else None
                    frame.index = i
                    return (1, rv)
                elif kind == 7:
                    sp = (self.sp - e[1]) & ~7
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"@{frame.fn.name}")
                    frame.temps[e[2]] = sp
                else:               # call (kind 1 with result, 3 void)
                    p = e[1]
                    call_args = p[0](self, frame)
                    flip_bit = None
                    if kind == 1:
                        if inj == target:
                            flip_bit = inject_bit
                            self.injected_iid = e[2]
                        inj += 1
                    frame.index = i
                    return (2, p[1], call_args,
                            e[2] if kind == 1 else None, flip_bit,
                            gf.entry_bb[(frame.block, i)])
        except IndexError:
            raise IRError(
                f"fell off block {frame.block.label} in @{frame.fn.name}"
            ) from None
        except KeyError as k:
            raise IRError(
                f"use of unevaluated %t{k.args[0]} in @{frame.fn.name}"
            ) from None
        finally:
            c[0] = dt
            c[1] = inj

    def _careful_step_cf(self, frame: _Frame, stack: List[_Frame], c,
                         gf) -> tuple:
        """Control-flow-model sibling of :meth:`_careful_step`:
        br/condbr are the injection sites (with redirect), value
        producers and calls allocate no indices."""
        dt, inj, target, inject_bit = c
        max_steps = self.max_steps
        stack_limit = self.memory.stack_limit
        code = frame.code
        i = frame.index
        try:
            while True:
                e = code[i]
                kind = e[0]
                i += 1
                dt += 1
                if dt > max_steps:
                    raise SimTrap("step-budget",
                                  f"exceeded {max_steps} steps")
                if kind == 0:
                    frame.temps[e[2]] = e[1](self, frame)
                elif kind == 5:
                    if inj == target:
                        pairs = e[4]
                        pair = pairs[inject_bit % len(pairs)]
                        self._note_cf_edge(frame, e[3], e[1][0], pair[0])
                        frame.block, frame.code = pair
                    else:
                        frame.block, frame.code = e[1]
                    inj += 1
                    frame.index = 0
                    return (3,)
                elif kind == 6:
                    p = e[1]
                    normal = p[1] if p[0](self, frame) else p[2]
                    if inj == target:
                        pairs = e[4]
                        pair = pairs[inject_bit % len(pairs)]
                        self._note_cf_edge(frame, e[3], normal[0], pair[0])
                        frame.block, frame.code = pair
                    else:
                        frame.block, frame.code = normal
                    inj += 1
                    frame.index = 0
                    return (3,)
                elif kind == 2:
                    e[1](self, frame)
                elif kind == 4:
                    p = e[1]
                    rv = p(self, frame) if p is not None else None
                    frame.index = i
                    return (1, rv)
                elif kind == 7:
                    sp = (self.sp - e[1]) & ~7
                    self.sp = sp
                    if sp < stack_limit:
                        raise SimTrap("stack-overflow",
                                      f"@{frame.fn.name}")
                    frame.temps[e[2]] = sp
                else:               # call (kind 1 with result, 3 void)
                    p = e[1]
                    call_args = p[0](self, frame)
                    frame.index = i
                    return (2, p[1], call_args,
                            e[2] if kind == 1 else None, None,
                            gf.entry_bb[(frame.block, i)])
        except IndexError:
            raise IRError(
                f"fell off block {frame.block.label} in @{frame.fn.name}"
            ) from None
        except KeyError as k:
            raise IRError(
                f"use of unevaluated %t{k.args[0]} in @{frame.fn.name}"
            ) from None
        finally:
            c[0] = dt
            c[1] = inj

    def _snapshot(self, stack: List[_Frame], frame: _Frame) -> IRSnapshot:
        frames = tuple(
            (f.fn, f.block, f.code, f.index, dict(f.temps), f.sp_save,
             f.ret_target, f.ret_flip_bit, list(f.arg_values))
            for f in (*stack, frame)
        )
        return IRSnapshot(
            mem=bytes(self.memory.data),
            heap_break=self.memory.heap_break,
            sp=self.sp,
            outputs=tuple(self.outputs),
            dyn_total=self.dyn_total,
            dyn_injectable=self.dyn_injectable,
            frames=frames,
        )

    # -- helpers -----------------------------------------------------------

    def _push_frame(
        self,
        fn: Function,
        args: Sequence[Union[int, float]],
        ret_target: Optional[int],
    ) -> _Frame:
        if len(args) != len(fn.args):
            raise IRError(
                f"@{fn.name} expects {len(fn.args)} args, got {len(args)}"
            )
        # Model the call's stack footprint (return address + saved frame
        # pointer) so runaway recursion traps as a stack overflow, exactly
        # as at assembly level.
        sp_save = self.sp
        self.sp -= 16
        if self.sp < self.memory.stack_limit:
            raise SimTrap("stack-overflow", f"calling @{fn.name}")
        return _Frame(
            fn=fn,
            block=fn.entry,
            index=0,
            temps={},
            sp_save=sp_save,
            ret_target=ret_target,
            arg_values=list(args),
        )

    def _note_cf_edge(self, frame: _Frame, inst: Instruction,
                      normal: BasicBlock, redirect: BasicBlock) -> None:
        """Record the corrupted edge of a control-flow fault."""
        self.injected = True
        self.injected_iid = inst.iid
        self._cf_edge = {
            "layer": "ir",
            "fn": frame.fn.name,
            "from": frame.block.label,
            "iid": inst.iid,
            "to": normal.label,
            "redirect": redirect.label,
        }

    def _redirect_block(self, frame: _Frame, inst: Instruction,
                        normal: BasicBlock) -> BasicBlock:
        """Pick the uniformly drawn redirect target of a cf fault."""
        blocks = frame.fn.blocks
        redirect = blocks[self.inject_bit % len(blocks)]
        self._note_cf_edge(frame, inst, normal, redirect)
        return redirect

    def _value(self, frame: _Frame, v: Value) -> Union[int, float]:
        if isinstance(v, Instruction):
            try:
                return frame.temps[v.iid]
            except KeyError:
                raise IRError(
                    f"use of unevaluated %t{v.iid} in @{frame.fn.name}"
                ) from None
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, GlobalVariable):
            return self.layout.address_of(v)
        if isinstance(v, Argument):
            return frame.arg_values[v.index]
        raise IRError(f"cannot evaluate operand {v!r}")

    def _load_typed(self, addr: int, ty: T.Type) -> Union[int, float]:
        if ty.is_float:
            return self.memory.read_f64(addr)
        if ty.is_pointer:
            return self.memory.read_int(addr, 8, signed=False)
        return self.memory.read_int(addr, ty.size)

    def _store_typed(self, addr: int, value: Union[int, float], ty: T.Type) -> None:
        if ty.is_float:
            self.memory.write_f64(addr, float(value))
        else:
            self.memory.write_int(addr, int(value), ty.size)

    def _do_call(self, inst: Call, frame: _Frame, stack: List[_Frame]) -> _Frame:
        args = [self._value(frame, a) for a in inst.operands]
        has_result = not inst.type.is_void

        # decide whether this call's *result* receives the fault (calls
        # are not sites under the cf model — IR callees are direct)
        flip_bit: Optional[int] = None
        if has_result and self.fault_model != "cf":
            idx = self.dyn_injectable
            self.dyn_injectable += 1
            if idx == self.inject_index:
                flip_bit = self.inject_bit
                self.injected_iid = inst.iid

        if isinstance(inst.callee, str):
            result = self._intrinsic(inst.callee, args)
            if has_result:
                if flip_bit is not None:
                    flip = (_set_value if self.fault_model == "set"
                            else _flip_value)
                    result = flip(result, inst.type, flip_bit)
                    self.injected = True
                frame.temps[inst.iid] = result
            return frame

        callee: Function = inst.callee
        if callee.is_declaration:
            raise IRError(f"call to declaration @{callee.name}")
        if len(stack) >= self.max_call_depth:
            raise SimTrap(
                "stack-overflow",
                f"call depth {self.max_call_depth} exceeded "
                f"calling @{callee.name}")
        stack.append(frame)
        new = self._push_frame(
            callee, args, inst.iid if has_result else None
        )
        new.ret_flip_bit = flip_bit
        return new

    def _intrinsic(self, name: str, args: List[Union[int, float]]):
        if name == PRINT_I64:
            self.outputs.append(format_i64(int(args[0])) + "\n")
            return None
        if name == PRINT_F64:
            self.outputs.append(format_f64(float(args[0])) + "\n")
            return None
        if name == PRINT_CHAR:
            self.outputs.append(format_char(int(args[0])))
            return None
        if name == DETECT:
            raise FaultDetected("checker")
        if name in INTRINSICS:
            return _math(name)(*[float(a) for a in args])
        raise IRError(f"unknown intrinsic @{name}")

    # -- pure computation --------------------------------------------------

    def _compute(self, frame: _Frame, inst: Instruction, op: str):
        val = self._value
        if op == "load":
            addr = val(frame, inst.operands[0])
            return self._load_typed(addr, inst.type)
        if op == "gep":
            base = val(frame, inst.operands[0])
            index = val(frame, inst.operands[1])
            return (base + index * inst.element_size) & bits.mask(64)
        if op == "icmp":
            a = val(frame, inst.operands[0])
            b = val(frame, inst.operands[1])
            return 1 if _icmp(inst.pred, int(a), int(b),
                              inst.operands[0].type) else 0
        if op == "fcmp":
            a = float(val(frame, inst.operands[0]))
            b = float(val(frame, inst.operands[1]))
            return 1 if _fcmp(inst.pred, a, b) else 0
        if op == "select":
            c = val(frame, inst.operands[0])
            return val(frame, inst.operands[1 if c else 2])
        if op in _INT_ARITH:
            a = int(val(frame, inst.operands[0]))
            b = int(val(frame, inst.operands[1]))
            return _int_arith(op, a, b, inst.type.bits)
        if op in _FLOAT_ARITH:
            a = float(val(frame, inst.operands[0]))
            b = float(val(frame, inst.operands[1]))
            return _float_arith(op, a, b)
        if op in ("sext", "zext", "trunc", "sitofp", "fptosi",
                  "bitcast", "ptrtoint", "inttoptr"):
            return _cast(op, val(frame, inst.operands[0]),
                         inst.operands[0].type, inst.type)
        raise IRError(f"cannot execute opcode {op!r}")


_INT_ARITH = frozenset(
    ["add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr", "lshr"]
)
_FLOAT_ARITH = frozenset(["fadd", "fsub", "fmul", "fdiv"])


def _int_arith(op: str, a: int, b: int, width: int) -> int:
    if op == "add":
        return bits.wrap_signed(a + b, width)
    if op == "sub":
        return bits.wrap_signed(a - b, width)
    if op == "mul":
        return bits.wrap_signed(a * b, width)
    if op == "sdiv":
        if b == 0:
            raise SimTrap("div-by-zero")
        return bits.wrap_signed(_c_div(a, b), width)
    if op == "srem":
        if b == 0:
            raise SimTrap("div-by-zero")
        return bits.wrap_signed(a - _c_div(a, b) * b, width)
    if op == "and":
        return bits.wrap_signed(a & b, width)
    if op == "or":
        return bits.wrap_signed(a | b, width)
    if op == "xor":
        return bits.wrap_signed(a ^ b, width)
    sh = b & (width - 1)
    ua = bits.to_unsigned(a, width)
    if op == "shl":
        return bits.wrap_signed(ua << sh, width)
    if op == "ashr":
        return bits.wrap_signed(a >> sh, width)
    if op == "lshr":
        return bits.wrap_signed(ua >> sh, width)
    raise IRError(f"unknown int op {op!r}")


def _float_arith(op: str, a: float, b: float) -> float:
    try:
        if op == "fadd":
            return a + b
        if op == "fsub":
            return a - b
        if op == "fmul":
            return a * b
        if op == "fdiv":
            if b == 0.0:
                return float("inf") if a > 0 else (
                    float("-inf") if a < 0 else float("nan")
                )
            return a / b
    except OverflowError:
        return float("inf")
    raise IRError(f"unknown float op {op!r}")


def _icmp(pred: str, a: int, b: int, ty: T.Type) -> bool:
    if pred in ("ult", "ule", "ugt", "uge"):
        width = 64 if ty.is_pointer else ty.bits
        a = bits.to_unsigned(a, width)
        b = bits.to_unsigned(b, width)
        pred = {"ult": "slt", "ule": "sle", "ugt": "sgt", "uge": "sge"}[pred]
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred == "slt":
        return a < b
    if pred == "sle":
        return a <= b
    if pred == "sgt":
        return a > b
    if pred == "sge":
        return a >= b
    raise IRError(f"unknown icmp predicate {pred!r}")


def _fcmp(pred: str, a: float, b: float) -> bool:
    import math

    if math.isnan(a) or math.isnan(b):
        return False  # ordered predicates are all false on NaN
    if pred == "oeq":
        return a == b
    if pred == "one":
        return a != b
    if pred == "olt":
        return a < b
    if pred == "ole":
        return a <= b
    if pred == "ogt":
        return a > b
    if pred == "oge":
        return a >= b
    raise IRError(f"unknown fcmp predicate {pred!r}")


def _cast(op: str, v, from_ty: T.Type, to_ty: T.Type):
    import math

    if op == "sext":
        return int(v)  # canonical signed form is width-independent
    if op == "zext":
        return bits.to_unsigned(int(v), from_ty.bits)
    if op == "trunc":
        return bits.truncate(int(v), to_ty.bits)
    if op == "sitofp":
        return float(int(v))
    if op == "fptosi":
        f = float(v)
        if math.isnan(f) or math.isinf(f):
            return 0
        return bits.wrap_signed(int(f), to_ty.bits)
    if op in ("bitcast", "ptrtoint", "inttoptr"):
        return int(v) & bits.mask(64)
    raise IRError(f"unknown cast {op!r}")


def run_ir(
    module: Module,
    entry: str = "main",
    args: Sequence[Union[int, float]] = (),
    layout: Optional[GlobalLayout] = None,
    inject_index: Optional[int] = None,
    inject_bit: int = 0,
    profile: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    trace=None,
    dispatch: str = "decoded",
    fault_model: Optional[str] = None,
) -> ExecResult:
    """Convenience wrapper: build an interpreter and run once."""
    interp = IRInterpreter(module, layout=layout, max_steps=max_steps,
                           trace=trace, dispatch=dispatch,
                           fault_model=fault_model)
    return interp.run(
        entry=entry,
        args=args,
        inject_index=inject_index,
        inject_bit=inject_bit,
        profile=profile,
    )
