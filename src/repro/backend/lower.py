"""IR -> assembly lowering (instruction selection + local allocation).

This stage is where every cross-layer deficiency of the paper *emerges
mechanically*:

* **store penetration** — operands are kept in a per-block register
  cache; a value consumed in a *different* block than its definition
  (e.g. a store pushed behind a checker's conditional branch) must be
  reloaded from its home slot (``mov slot -> reg``), and that reload is
  an unprotected injection site (§5.2, fig. 4/5);
* **branch penetration** — a conditional branch uses the FLAGS set by
  its compare only while no flag-clobbering instruction intervened;
  checkers insert a compare in between, forcing ``test cond, cond``
  whose FLAGS write is unprotected (§5.2, fig. 6/7);
* **comparison penetration** — redundant-compare elimination: two
  compares with the same predicate over value-numbered-equal operands
  (loads from the same address with no intervening store, geps over
  equal bases/indices, constants) are folded to one ``cmp/setcc``; the
  duplication checker ``icmp eq c, c'`` then becomes constant-true and
  its branch an unconditional jump, deleting the protection (§5.2,
  fig. 8/9).  Scope is a single basic block; volatile loads advance the
  memory epoch — both of which Flowery's anti-comparison patch exploits;
* **call penetration** — arguments are moved into the argument
  registers right before the call; those ``mov``s map to no IR value
  (§5.2, fig. 10/11);
* **mapping penetration** — prologue/epilogue frame code (``mov
  rsp->rbp``, ``sub rsp``, ``pop rbp``) and return-value moves have no
  IR counterpart (§5.2, fig. 12).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..errors import LoweringError
from ..interp.layout import GlobalLayout
from ..ir import types as T
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .frame import RBP, FrameLayout
from .isa import (
    AsmInst,
    FP_ARG_REGS,
    Imm,
    INT_ARG_REGS,
    Label,
    Mem,
    Reg,
    Role,
)
from .program import AsmFunction, AsmProgram
from .regcache import RegCache

__all__ = ["lower_module", "LoweringOptions"]

RSP = Reg("rsp")
RAX = Reg("rax")
RDX = Reg("rdx")
RCX = Reg("rcx")
XMM0 = Reg("xmm0")

_ICMP_CC = {
    "eq": "e", "ne": "ne", "slt": "l", "sle": "le", "sgt": "g", "sge": "ge",
    "ult": "b", "ule": "be", "ugt": "a", "uge": "ae",
}
_FCMP_CC = {
    "oeq": "fe", "one": "fne", "olt": "fb", "ole": "fbe",
    "ogt": "fa", "oge": "fae",
}

_INT_2OP = {"add": "add", "sub": "sub", "mul": "imul",
            "and": "and", "or": "or", "xor": "xor"}
_SHIFTS = {"shl": "shl", "ashr": "sar", "lshr": "shr"}
_FP_2OP = {"fadd": "addsd", "fsub": "subsd", "fmul": "mulsd", "fdiv": "divsd"}

_FLAG_CLOBBERING = frozenset(
    ["add", "sub", "imul", "and", "or", "xor", "shl", "sar", "shr",
     "idiv", "cmp", "test", "ucomisd"]
)


class LoweringOptions:
    """Backend configuration knobs (ablation levers)."""

    def __init__(
        self,
        compare_cse: bool = True,
        gpr_pool: int = 0,
        xmm_pool: int = 0,
    ):
        #: redundant-compare elimination — the cause of comparison
        #: penetration; disable for the `ablation_lvn` experiment
        self.compare_cse = compare_cse
        #: scratch-register pool limits (0 = full x86-64 pool); small
        #: pools model register-starved ISAs, inflating store penetration
        self.gpr_pool = gpr_pool
        self.xmm_pool = xmm_pool


def _arg_key(index: int) -> int:
    """Pseudo-iid for argument values in the register cache."""
    return -(index + 1)


class FunctionLowering:
    def __init__(
        self,
        fn: Function,
        layout: GlobalLayout,
        program: AsmProgram,
        options: LoweringOptions,
    ):
        self.fn = fn
        self.layout = layout
        self.program = program
        self.options = options
        self.frame = FrameLayout(fn)
        self.out = AsmFunction(fn.name, frame_size=self.frame.frame_size)
        self.cache = RegCache(options.gpr_pool, options.xmm_pool)
        # FLAGS tracking: iid of the compare whose result the flags hold
        self.flags_owner: Optional[int] = None
        # per-block compare CSE state
        self.avail_cmp: Dict[tuple, int] = {}
        self.load_vn: Dict[tuple, int] = {}     # (addrkey, epoch) -> iid
        self.vn_of: Dict[int, object] = {}      # iid -> value number
        self.epoch = 0
        # folding results
        self.cmp_alias: Dict[int, int] = {}     # folded cmp iid -> master iid
        self.slot_alias: Dict[int, int] = {}    # reload aliasing for folds
        self.const_result: Dict[int, int] = {}  # compile-time-known i1 results
        self.cmp_iids: Set[int] = set()         # iids that are compares

    # -- emission helpers ---------------------------------------------------

    def _emit(
        self,
        opcode: str,
        *operands,
        cc: Optional[str] = None,
        size: int = 8,
        prov: Optional[int] = None,
        role: str = Role.MAIN,
        comment: str = "",
    ) -> AsmInst:
        inst = AsmInst(
            opcode=opcode,
            operands=tuple(operands),
            cc=cc,
            size=size,
            prov_iid=prov,
            role=role,
            comment=comment,
        )
        self.out.emit(inst)
        if opcode in _FLAG_CLOBBERING:
            self.flags_owner = None
        if opcode == "call":
            self.flags_owner = None
        return inst

    @staticmethod
    def _slot_size(ty: T.Type) -> int:
        return 1 if ty.size == 1 else 8

    def _block_label(self, block: BasicBlock) -> str:
        return block.label

    def _reset_block_state(self) -> None:
        self.cache.clear()
        self.flags_owner = None
        self.avail_cmp.clear()
        self.load_vn.clear()
        # vn_of / aliases persist: they are per-function facts about which
        # IR values were folded, needed wherever those values are used
        self.epoch += 1

    # -- value numbering for compare CSE ---------------------------------------

    def _vnkey(self, v: Value) -> object:
        if isinstance(v, Constant):
            return ("c", v.value)
        if isinstance(v, GlobalVariable):
            return ("g", v.name)
        if isinstance(v, Argument):
            return ("a", v.index)
        if isinstance(v, Instruction):
            iid = self.cmp_alias.get(v.iid, v.iid)
            return self.vn_of.get(iid, iid)
        raise LoweringError(f"unexpected operand {v!r}")

    def _addr_vnkey(self, ptr: Value) -> object:
        if isinstance(ptr, Alloca):
            return ("al", ptr.iid)
        if isinstance(ptr, GlobalVariable):
            return ("g", ptr.name)
        return self._vnkey(ptr)

    # -- operand materialisation ---------------------------------------------

    def _home_mem(self, iid: int) -> Mem:
        return self.frame.home_mem(self.slot_alias.get(iid, iid))

    def _fetch(
        self,
        v: Value,
        consumer: Instruction,
        reload_role: str = Role.OPERAND_RELOAD,
        exclude: Set[str] = frozenset(),
    ) -> Reg:
        """Materialise ``v`` into a register, reloading from its home
        slot (tagged ``reload_role``) only when the cache misses."""
        fp = v.type.is_float
        if isinstance(v, Constant):
            reg = self.cache.alloc(fp=fp, exclude=exclude)
            if fp:
                self._emit("movsd", reg, Imm(float(v.value)),
                           prov=consumer.iid, role=reload_role)
            else:
                self._emit("mov", reg, Imm(int(v.value)),
                           prov=consumer.iid, role=reload_role)
            return reg
        if isinstance(v, GlobalVariable):
            reg = self.cache.alloc(exclude=exclude)
            self._emit("mov", reg, Imm(self.layout.address_of(v)),
                       prov=consumer.iid, role=Role.ADDR)
            return reg
        if isinstance(v, Argument):
            key = _arg_key(v.index)
            cached = self.cache.lookup(key)
            if cached is not None:
                return cached
            reg = self.cache.alloc(fp=fp, exclude=exclude)
            op = "movsd" if fp else "mov"
            self._emit(op, reg, self.frame.arg_mem(v.index),
                       prov=consumer.iid, role=reload_role)
            self.cache.bind(key, reg)
            return reg
        if isinstance(v, Alloca):
            reg = self.cache.alloc(exclude=exclude)
            self._emit("lea", reg, self.frame.alloca_mem(v),
                       prov=consumer.iid, role=Role.ADDR)
            return reg
        if isinstance(v, Instruction):
            key = self.slot_alias.get(v.iid, v.iid)
            if v.iid in self.const_result or key in self.const_result:
                # folded checker result used as a plain value
                reg = self.cache.alloc(exclude=exclude)
                self._emit("mov", reg, Imm(self.const_result.get(
                    v.iid, self.const_result.get(key, 0))),
                    prov=consumer.iid, role=reload_role)
                return reg
            cached = self.cache.lookup(key) or self.cache.lookup(v.iid)
            if cached is not None:
                return cached
            reg = self.cache.alloc(fp=fp, exclude=exclude)
            op = "movsd" if fp else "mov"
            self._emit(op, reg, self._home_mem(v.iid),
                       size=self._slot_size(v.type),
                       prov=consumer.iid, role=reload_role)
            self.cache.bind(key, reg)
            return reg
        raise LoweringError(f"cannot materialise operand {v!r}")

    def _operand_ri(
        self, v: Value, consumer: Instruction, exclude: Set[str] = frozenset()
    ) -> Union[Reg, Imm]:
        """Register-or-immediate form for 2-operand arithmetic sources."""
        if isinstance(v, Constant) and not v.type.is_float:
            return Imm(int(v.value))
        return self._fetch(v, consumer, exclude=exclude)

    def _pointer_mem(
        self, ptr: Value, consumer: Instruction, reload_role: str
    ) -> Mem:
        """Addressing mode for a load/store pointer operand."""
        if isinstance(ptr, Alloca):
            return self.frame.alloca_mem(ptr)
        if isinstance(ptr, GlobalVariable):
            return Mem(None, self.layout.address_of(ptr))
        reg = self._fetch(ptr, consumer, reload_role=reload_role)
        return Mem(reg, 0)

    # -- prologue / epilogue -----------------------------------------------------

    def _prologue(self) -> None:
        self.out.place_label(self.fn.name)
        self._emit("push", RBP, role=Role.FRAME)
        self._emit("mov", RBP, RSP, role=Role.FRAME)
        if self.frame.frame_size:
            self._emit("sub", RSP, Imm(self.frame.frame_size), role=Role.FRAME)
        int_idx = fp_idx = 0
        for i, arg in enumerate(self.fn.args):
            if arg.type.is_float:
                if fp_idx >= len(FP_ARG_REGS):
                    raise LoweringError(
                        f"@{self.fn.name}: more than {len(FP_ARG_REGS)} float args"
                    )
                self._emit("movsd", self.frame.arg_mem(i),
                           Reg(FP_ARG_REGS[fp_idx]), role=Role.ARG_SPILL)
                fp_idx += 1
            else:
                if int_idx >= len(INT_ARG_REGS):
                    raise LoweringError(
                        f"@{self.fn.name}: more than {len(INT_ARG_REGS)} int args"
                    )
                self._emit("mov", self.frame.arg_mem(i),
                           Reg(INT_ARG_REGS[int_idx]), role=Role.ARG_SPILL)
                int_idx += 1

    def _epilogue(self, prov: Optional[int]) -> None:
        self._emit("mov", RSP, RBP, prov=prov, role=Role.FRAME)
        self._emit("pop", RBP, prov=prov, role=Role.FRAME)
        self._emit("ret", prov=prov, role=Role.FRAME)

    # -- driver -----------------------------------------------------------------

    def run(self) -> AsmFunction:
        self._prologue()
        for block in self.fn.blocks:
            self.out.place_label(self._block_label(block))
            self._reset_block_state()
            for inst in block.instructions:
                self._lower_inst(inst)
        return self.out

    def _lower_inst(self, inst: Instruction) -> None:
        op = inst.opcode
        if op == "alloca":
            return  # pure frame layout
        if op == "load":
            self._lower_load(inst)  # type: ignore[arg-type]
        elif op == "store":
            self._lower_store(inst)  # type: ignore[arg-type]
        elif op in _INT_2OP or op in _SHIFTS or op in ("sdiv", "srem"):
            self._lower_int_binop(inst)  # type: ignore[arg-type]
        elif op in _FP_2OP:
            self._lower_fp_binop(inst)  # type: ignore[arg-type]
        elif op in ("icmp", "fcmp"):
            self._lower_cmp(inst)  # type: ignore[arg-type]
        elif op == "gep":
            self._lower_gep(inst)  # type: ignore[arg-type]
        elif op in ("sext", "zext", "trunc", "sitofp", "fptosi",
                    "bitcast", "ptrtoint", "inttoptr"):
            self._lower_cast(inst)  # type: ignore[arg-type]
        elif op == "select":
            self._lower_select(inst)  # type: ignore[arg-type]
        elif op == "call":
            self._lower_call(inst)  # type: ignore[arg-type]
        elif op == "br":
            self._emit("jmp", Label(inst.target.label), prov=inst.iid)
        elif op == "condbr":
            self._lower_condbr(inst)  # type: ignore[arg-type]
        elif op == "ret":
            self._lower_ret(inst)  # type: ignore[arg-type]
        elif op == "unreachable":
            self._emit("ud2", prov=inst.iid)
        else:  # pragma: no cover
            raise LoweringError(f"cannot lower opcode {op!r}")

    # -- results ---------------------------------------------------------------

    def _define(self, inst: Instruction, reg: Reg) -> None:
        """Spill a fresh result to its home slot and cache the register."""
        op = "movsd" if inst.type.is_float else "mov"
        self._emit(op, self._home_mem(inst.iid), reg,
                   size=self._slot_size(inst.type),
                   prov=inst.iid, role=Role.RESULT_SPILL)
        self.cache.bind(inst.iid, reg)

    # -- memory ------------------------------------------------------------------

    def _lower_load(self, inst: Load) -> None:
        ptr = inst.pointer
        mem = self._pointer_mem(ptr, inst, Role.OPERAND_RELOAD)
        fp = inst.type.is_float
        reg = self.cache.alloc(fp=fp)
        if fp:
            self._emit("movsd", reg, mem, prov=inst.iid, role=Role.MAIN)
        else:
            self._emit("mov", reg, mem, size=self._slot_size(inst.type),
                       prov=inst.iid, role=Role.MAIN)
        self._define(inst, reg)
        # value numbering for compare CSE
        if inst.volatile:
            self.epoch += 1
            self.vn_of[inst.iid] = ("vol", inst.iid)
        else:
            key = (self._addr_vnkey(ptr), self.epoch)
            first = self.load_vn.get(key)
            if first is None:
                self.load_vn[key] = inst.iid
                self.vn_of[inst.iid] = ("ld", key)
            else:
                self.vn_of[inst.iid] = ("ld", key)

    def _lower_store(self, inst: Store) -> None:
        value, ptr = inst.value, inst.pointer
        mem = self._pointer_mem(ptr, inst, Role.STORE_ADDR_RELOAD)
        size = self._slot_size(value.type)
        if isinstance(value, Constant) and not value.type.is_float:
            self._emit("mov", mem, Imm(int(value.value)), size=size,
                       prov=inst.iid, role=Role.MAIN)
        else:
            reg = self._fetch(value, inst, reload_role=Role.STORE_RELOAD,
                              exclude=_mem_regs(mem))
            op = "movsd" if value.type.is_float else "mov"
            self._emit(op, mem, reg, size=size, prov=inst.iid, role=Role.MAIN)
        self.epoch += 1  # stores invalidate load availability

    # -- integer arithmetic ----------------------------------------------------------

    def _lower_int_binop(self, inst: BinOp) -> None:
        op = inst.opcode
        a, b = inst.operands
        if op in ("sdiv", "srem"):
            self._lower_div(inst, op, a, b)
            return
        if op in _SHIFTS:
            self._lower_shift(inst, _SHIFTS[op], a, b)
            return
        dst = self.cache.alloc()
        if isinstance(a, Constant):
            self._emit("mov", dst, Imm(int(a.value)),
                       prov=inst.iid, role=Role.MAIN_COPY)
        else:
            ra = self._fetch(a, inst, exclude={dst.name})
            self._emit("mov", dst, ra, prov=inst.iid, role=Role.MAIN_COPY)
        src = self._operand_ri(b, inst, exclude={dst.name})
        self._emit(_INT_2OP[op], dst, src, prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)

    def _lower_div(self, inst: BinOp, op: str, a: Value, b: Value) -> None:
        # rax = a; idiv b  ->  quotient rax, remainder rdx
        self.cache.evict("rax")
        self.cache.evict("rdx")
        if isinstance(a, Constant):
            self._emit("mov", RAX, Imm(int(a.value)),
                       prov=inst.iid, role=Role.MAIN_COPY)
        else:
            ra = self._fetch(a, inst, exclude={"rax", "rdx"})
            if ra.name != "rax":
                self._emit("mov", RAX, ra, prov=inst.iid, role=Role.MAIN_COPY)
        rb = self._fetch(b, inst, exclude={"rax", "rdx"})
        if rb.name in ("rax", "rdx"):
            moved = self.cache.alloc(exclude={"rax", "rdx", rb.name})
            self._emit("mov", moved, rb, prov=inst.iid, role=Role.MAIN_COPY)
            rb = moved
        self._emit("idiv", rb, prov=inst.iid, role=Role.MAIN)
        if op == "sdiv":
            self._define(inst, RAX)
        else:
            dst = self.cache.alloc(exclude={"rdx"})
            self._emit("mov", dst, RDX, prov=inst.iid, role=Role.MAIN)
            self._define(inst, dst)

    def _lower_shift(self, inst: BinOp, opcode: str, a: Value, b: Value) -> None:
        dst = self.cache.alloc(exclude={"rcx"})
        if isinstance(a, Constant):
            self._emit("mov", dst, Imm(int(a.value)),
                       prov=inst.iid, role=Role.MAIN_COPY)
        else:
            ra = self._fetch(a, inst, exclude={dst.name, "rcx"})
            self._emit("mov", dst, ra, prov=inst.iid, role=Role.MAIN_COPY)
        if isinstance(b, Constant):
            self._emit(opcode, dst, Imm(int(b.value)),
                       prov=inst.iid, role=Role.MAIN)
        else:
            self.cache.evict("rcx")
            rb = self._fetch(b, inst, exclude={dst.name, "rcx"})
            if rb.name != "rcx":
                self._emit("mov", RCX, rb, prov=inst.iid, role=Role.MAIN_COPY)
            self._emit(opcode, dst, RCX, prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)

    # -- floating point ------------------------------------------------------------

    def _lower_fp_binop(self, inst: BinOp) -> None:
        a, b = inst.operands
        dst = self.cache.alloc(fp=True)
        ra = self._fetch(a, inst, exclude={dst.name})
        self._emit("movsd", dst, ra, prov=inst.iid, role=Role.MAIN_COPY)
        rb = self._fetch(b, inst, exclude={dst.name, ra.name})
        self._emit(_FP_2OP[inst.opcode], dst, rb, prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)

    # -- compares & the redundant-compare elimination -----------------------------------

    def _cmp_key(self, inst: Union[ICmp, FCmp]) -> tuple:
        a, b = inst.operands
        return (inst.opcode, inst.pred, self._vnkey(a), self._vnkey(b))

    def _lower_cmp(self, inst: Union[ICmp, FCmp]) -> None:
        self.cmp_iids.add(inst.iid)
        a, b = inst.operands

        # constant-fold compares of literals
        if isinstance(a, Constant) and isinstance(b, Constant):
            self.const_result[inst.iid] = 1 if _static_cmp(inst) else 0
            return

        if self.options.compare_cse:
            # checker fold: `icmp eq c, c'` over two compares with equal
            # value numbers is constant-true (the comparison penetration)
            if inst.opcode == "icmp" and inst.pred in ("eq", "ne"):
                if (
                    isinstance(a, Instruction)
                    and isinstance(b, Instruction)
                    and self.cmp_alias.get(a.iid, a.iid) in self.cmp_iids
                    and self.cmp_alias.get(b.iid, b.iid) in self.cmp_iids
                    and self.cmp_alias.get(a.iid, a.iid)
                    == self.cmp_alias.get(b.iid, b.iid)
                ):
                    self.const_result[inst.iid] = 1 if inst.pred == "eq" else 0
                    if inst.is_checker:
                        master = self.cmp_alias.get(a.iid, a.iid)
                        self.program.folded_checkers.add(inst.iid)
                        self.program.folded_masters.add(master)
                    return

            # redundant-compare elimination proper
            key = self._cmp_key(inst)
            master = self.avail_cmp.get(key)
            if master is not None:
                self.cmp_alias[inst.iid] = master
                self.slot_alias[inst.iid] = master
                cached = self.cache.lookup(master)
                if cached is not None:
                    self.cache.bind(master, cached)  # refresh LRU only
                return

        # emit the compare
        if inst.opcode == "fcmp":
            ra = self._fetch(a, inst)
            rb = self._fetch(b, inst, exclude={ra.name})
            self._emit("ucomisd", ra, rb, prov=inst.iid, role=Role.MAIN)
            cc = _FCMP_CC[inst.pred]
        else:
            ra = self._fetch(a, inst)
            src = self._operand_ri(b, inst, exclude={ra.name})
            self._emit("cmp", ra, src, prov=inst.iid, role=Role.MAIN)
            cc = _ICMP_CC[inst.pred]
        self.flags_owner = inst.iid
        dst = self.cache.alloc()
        self._emit("setcc", dst, cc=cc, prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)
        if self.options.compare_cse:
            self.avail_cmp[self._cmp_key(inst)] = inst.iid

    # -- address arithmetic -----------------------------------------------------------

    def _lower_gep(self, inst: Gep) -> None:
        base, index = inst.base, inst.index
        scale = inst.element_size
        dst = self.cache.alloc()
        if isinstance(index, Constant):
            rb = self._fetch(base, inst, exclude={dst.name})
            self._emit("mov", dst, rb, prov=inst.iid, role=Role.MAIN_COPY)
            offset = int(index.value) * scale
            if offset:
                self._emit("add", dst, Imm(offset), prov=inst.iid, role=Role.MAIN)
        else:
            ri = self._fetch(index, inst, exclude={dst.name})
            self._emit("mov", dst, ri, prov=inst.iid, role=Role.MAIN_COPY)
            if scale != 1:
                self._emit("imul", dst, Imm(scale), prov=inst.iid, role=Role.MAIN)
            rb = self._fetch(base, inst, exclude={dst.name})
            self._emit("add", dst, rb, prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)
        self.vn_of[inst.iid] = (
            "gep", self._vnkey(base), self._vnkey(index), scale
        )

    # -- casts ------------------------------------------------------------------------

    def _lower_cast(self, inst: Cast) -> None:
        (src,) = inst.operands
        op = inst.opcode
        if op == "sitofp":
            ra = self._fetch(src, inst)
            dst = self.cache.alloc(fp=True)
            self._emit("cvtsi2sd", dst, ra, prov=inst.iid, role=Role.MAIN)
            self._define(inst, dst)
            return
        if op == "fptosi":
            ra = self._fetch(src, inst)
            dst = self.cache.alloc()
            self._emit("cvttsd2si", dst, ra, prov=inst.iid, role=Role.MAIN)
            self._define(inst, dst)
            return
        ra = self._fetch(src, inst)
        dst = self.cache.alloc(exclude={ra.name})
        self._emit("mov", dst, ra, prov=inst.iid, role=Role.MAIN)
        if op == "trunc" and inst.type is T.I1:
            self._emit("and", dst, Imm(1), prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)

    # -- select -------------------------------------------------------------------------

    def _lower_select(self, inst: Select) -> None:
        cond, a, b = inst.operands
        if inst.type.is_float:
            raise LoweringError("float select is not used by this frontend")
        rc = self._fetch(cond, inst)
        dst = self.cache.alloc(exclude={rc.name})
        if isinstance(b, Constant):
            self._emit("mov", dst, Imm(int(b.value)),
                       prov=inst.iid, role=Role.MAIN_COPY)
        else:
            rb = self._fetch(b, inst, exclude={dst.name, rc.name})
            self._emit("mov", dst, rb, prov=inst.iid, role=Role.MAIN_COPY)
        ra = self._fetch(a, inst, exclude={dst.name, rc.name})
        self._emit("test", rc, rc, prov=inst.iid, role=Role.SELECT_TEST)
        self._emit("cmov", dst, ra, cc="ne", prov=inst.iid, role=Role.MAIN)
        self._define(inst, dst)

    # -- calls --------------------------------------------------------------------------

    def _lower_call(self, inst: Call) -> None:
        # Argument registers are about to be overwritten; drop any cached
        # values living there so later arguments reload from their home
        # slots instead of reading a clobbered register.
        for name in INT_ARG_REGS + FP_ARG_REGS:
            self.cache.evict(name)
        int_idx = fp_idx = 0
        for arg in inst.operands:
            if arg.type.is_float:
                if fp_idx >= len(FP_ARG_REGS):
                    raise LoweringError("too many float call arguments")
                target = Reg(FP_ARG_REGS[fp_idx])
                fp_idx += 1
                self._move_arg(arg, target, inst, fp=True)
            else:
                if int_idx >= len(INT_ARG_REGS):
                    raise LoweringError("too many int call arguments")
                target = Reg(INT_ARG_REGS[int_idx])
                int_idx += 1
                self._move_arg(arg, target, inst, fp=False)
        self.cache.clear()   # caller-saved registers die here
        self.epoch += 1      # callee may write memory
        self._emit("call", Label(inst.callee_name), prov=inst.iid, role=Role.MAIN)
        if inst.has_result:
            ret_reg = XMM0 if inst.type.is_float else RAX
            self._define(inst, ret_reg)

    def _move_arg(self, arg: Value, target: Reg, inst: Call, fp: bool) -> None:
        """Argument-register setup — the call penetration sites."""
        op = "movsd" if fp else "mov"
        if isinstance(arg, Constant):
            imm = Imm(float(arg.value)) if fp else Imm(int(arg.value))
            self._emit(op, target, imm, prov=inst.iid, role=Role.CALL_ARG)
            return
        if isinstance(arg, GlobalVariable):
            self._emit("mov", target, Imm(self.layout.address_of(arg)),
                       prov=inst.iid, role=Role.CALL_ARG)
            return
        if isinstance(arg, Alloca):
            self._emit("lea", target, self.frame.alloca_mem(arg),
                       prov=inst.iid, role=Role.CALL_ARG)
            return
        if isinstance(arg, Argument):
            key = _arg_key(arg.index)
            cached = self.cache.lookup(key)
            if cached is not None:
                self._emit(op, target, cached, prov=inst.iid, role=Role.CALL_ARG)
            else:
                self._emit(op, target, self.frame.arg_mem(arg.index),
                           prov=inst.iid, role=Role.CALL_ARG)
            return
        assert isinstance(arg, Instruction)
        key = self.slot_alias.get(arg.iid, arg.iid)
        if arg.iid in self.const_result:
            self._emit("mov", target, Imm(self.const_result[arg.iid]),
                       prov=inst.iid, role=Role.CALL_ARG)
            return
        cached = self.cache.lookup(key)
        if cached is not None:
            self._emit(op, target, cached, prov=inst.iid, role=Role.CALL_ARG)
        else:
            self._emit(op, target, self._home_mem(arg.iid),
                       size=self._slot_size(arg.type),
                       prov=inst.iid, role=Role.CALL_ARG)

    # -- control flow -----------------------------------------------------------------------

    def _lower_condbr(self, inst: CondBr) -> None:
        cond = inst.condition
        then_l = Label(inst.then_block.label)
        else_l = Label(inst.else_block.label)

        const = None
        if isinstance(cond, Constant):
            const = int(cond.value)
        elif isinstance(cond, Instruction) and cond.iid in self.const_result:
            const = self.const_result[cond.iid]
        if const is not None:
            role = (
                Role.FOLDED_CHECKER_JMP
                if isinstance(cond, Instruction)
                and cond.iid in self.program.folded_checkers
                else Role.MAIN
            )
            self._emit("jmp", then_l if const else else_l,
                       prov=inst.iid, role=role)
            return

        if (
            isinstance(cond, (ICmp, FCmp))
            and self.flags_owner == cond.iid
        ):
            # flags still live: branch directly on the compare
            cc = (_FCMP_CC[cond.pred] if isinstance(cond, FCmp)
                  else _ICMP_CC[cond.pred])
            self._emit("jcc", then_l, cc=cc, prov=inst.iid, role=Role.MAIN)
            self._emit("jmp", else_l, prov=inst.iid, role=Role.MAIN)
            return

        # flags dead: materialise them — the branch penetration sites
        rc = self._fetch(cond, inst, reload_role=Role.BR_COND_RELOAD)
        self._emit("test", rc, rc, prov=inst.iid, role=Role.BR_TEST)
        self._emit("jcc", then_l, cc="ne", prov=inst.iid, role=Role.MAIN)
        self._emit("jmp", else_l, prov=inst.iid, role=Role.MAIN)

    def _lower_ret(self, inst: Ret) -> None:
        value = inst.value
        if value is not None:
            if value.type.is_float:
                if isinstance(value, Constant):
                    self._emit("movsd", XMM0, Imm(float(value.value)),
                               prov=inst.iid, role=Role.RET_VAL)
                else:
                    reg = self._fetch(value, inst, reload_role=Role.RET_VAL)
                    if reg.name != "xmm0":
                        self._emit("movsd", XMM0, reg,
                                   prov=inst.iid, role=Role.RET_VAL)
            else:
                if isinstance(value, Constant):
                    self._emit("mov", RAX, Imm(int(value.value)),
                               prov=inst.iid, role=Role.RET_VAL)
                else:
                    reg = self._fetch(value, inst, reload_role=Role.RET_VAL)
                    if reg.name != "rax":
                        self._emit("mov", RAX, reg,
                                   prov=inst.iid, role=Role.RET_VAL)
        self._epilogue(inst.iid)


def _mem_regs(mem: Mem) -> Set[str]:
    return {mem.base.name} if mem.base is not None else set()


def _static_cmp(inst: Union[ICmp, FCmp]) -> bool:
    """Compile-time evaluation of a compare between two constants."""
    from ..interp.interpreter import _fcmp, _icmp

    a, b = inst.operands
    if inst.opcode == "fcmp":
        return _fcmp(inst.pred, float(a.value), float(b.value))
    return _icmp(inst.pred, int(a.value), int(b.value), a.type)


def lower_module(
    module: Module,
    layout: Optional[GlobalLayout] = None,
    options: Optional[LoweringOptions] = None,
) -> AsmProgram:
    """Lower every defined function of ``module`` to assembly."""
    layout = layout or GlobalLayout(module)
    options = options or LoweringOptions()
    program = AsmProgram(module.name)
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        program.add_function(
            FunctionLowering(fn, layout, program, options).run()
        )
    return program
