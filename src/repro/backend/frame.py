"""Stack-frame layout — the ``-O0`` home-slot discipline.

Every ``alloca`` gets a frame object, and *every result-producing IR
instruction gets a "home slot"*: its result is spilled there at the
definition and reloaded from there whenever the local register cache no
longer holds it.  This is the central property behind the paper's store
penetration: a value that crosses a basic-block boundary (e.g. because a
checker block was inserted before its consuming store) must be reloaded
from its home slot — and that reload is an unprotected injection site.

Frame picture (rbp-based, all offsets negative):

::

    rbp + 8   return address       (pushed by call)
    rbp + 0   saved rbp
    rbp - 8.. alloca objects, argument slots, temp home slots
    rsp       = rbp - frame_size
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import LoweringError
from ..ir.instructions import Alloca, Instruction
from ..ir.module import Function
from .isa import Mem, Reg

__all__ = ["FrameLayout"]

RBP = Reg("rbp")


def _align(n: int, a: int) -> int:
    return (n + a - 1) & ~(a - 1)


class FrameLayout:
    """Assigns rbp-relative offsets to allocas, argument spill slots and
    instruction home slots of one function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self._offset = 0
        self.alloca_offsets: Dict[int, int] = {}
        self.arg_offsets: Dict[int, int] = {}
        self.home_offsets: Dict[int, int] = {}

        for i, arg in enumerate(fn.args):
            self.arg_offsets[i] = self._reserve(8)
        for inst in fn.instructions():
            if isinstance(inst, Alloca):
                self.alloca_offsets[inst.iid] = self._reserve(
                    max(1, inst.allocated_type.size)
                )
            elif inst.has_result and not inst.type.is_void:
                self.home_offsets[inst.iid] = self._reserve(
                    max(1, inst.type.size)
                )
        self.frame_size = _align(self._offset, 16)

    def _reserve(self, size: int) -> int:
        size = _align(size, 8)
        self._offset += size
        return -self._offset

    # -- addressing helpers -------------------------------------------------

    def alloca_mem(self, inst: Alloca) -> Mem:
        return Mem(RBP, self.alloca_offsets[inst.iid])

    def home_mem(self, iid: int) -> Mem:
        try:
            return Mem(RBP, self.home_offsets[iid])
        except KeyError:
            raise LoweringError(
                f"no home slot for %t{iid} in @{self.fn.name}"
            ) from None

    def arg_mem(self, index: int) -> Mem:
        return Mem(RBP, self.arg_offsets[index])

    def has_home(self, iid: int) -> bool:
        return iid in self.home_offsets
