"""x86-flavoured backend: lowering, frame layout, the asm program model."""

from .isa import AsmInst, Imm, Label, Mem, Reg, Role  # noqa: F401
from .lower import LoweringOptions, lower_module  # noqa: F401
from .program import AsmFunction, AsmProgram, FlatProgram  # noqa: F401

__all__ = [
    "lower_module", "LoweringOptions",
    "AsmProgram", "AsmFunction", "FlatProgram",
    "AsmInst", "Reg", "Imm", "Mem", "Label", "Role",
]
