"""Assembly program container and flattening for the machine.

An :class:`AsmFunction` is a list of :class:`~repro.backend.isa.AsmInst`
plus a label table (label -> instruction index).  :class:`AsmProgram`
owns one per IR function plus lowering metadata the analysis layer
consumes (folded checkers, asm->IR provenance statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import LoweringError
from .isa import AsmInst

__all__ = ["AsmFunction", "AsmProgram", "FlatProgram"]


@dataclass
class AsmFunction:
    name: str
    insts: List[AsmInst] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    frame_size: int = 0

    def place_label(self, label: str) -> None:
        if label in self.labels:
            raise LoweringError(f"duplicate label {label} in {self.name}")
        self.labels[label] = len(self.insts)

    def emit(self, inst: AsmInst) -> AsmInst:
        self.insts.append(inst)
        return inst


@dataclass
class FlatProgram:
    """The machine's view: one linear instruction array."""

    insts: List[AsmInst]
    label_index: Dict[str, int]
    #: function name of each instruction (diagnostics)
    inst_fn: List[str]
    entry_label: str


class AsmProgram:
    """All lowered functions plus metadata for cross-layer analysis."""

    def __init__(self, module_name: str):
        self.module_name = module_name
        self.functions: Dict[str, AsmFunction] = {}
        #: iids of checker compares the backend folded away (comparison
        #: penetration evidence)
        self.folded_checkers: Set[int] = set()
        #: iids of compare instructions whose duplicate was folded onto them
        self.folded_masters: Set[int] = set()

    def add_function(self, fn: AsmFunction) -> AsmFunction:
        if fn.name in self.functions:
            raise LoweringError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def static_count(self) -> int:
        return sum(len(f.insts) for f in self.functions.values())

    def flatten(self, entry: str = "main") -> FlatProgram:
        """Concatenate all functions into one instruction array with
        globally unique labels (``fn`` for entries, ``fn.block`` inside)."""
        insts: List[AsmInst] = []
        label_index: Dict[str, int] = {}
        inst_fn: List[str] = []
        for fn in self.functions.values():
            base = len(insts)
            if fn.name in label_index:
                raise LoweringError(f"label clash for function {fn.name}")
            label_index[fn.name] = base
            for label, idx in fn.labels.items():
                qualified = label if label == fn.name else f"{fn.name}.{label}"
                label_index[qualified] = base + idx
            insts.extend(fn.insts)
            inst_fn.extend([fn.name] * len(fn.insts))
        if entry not in label_index:
            raise LoweringError(f"entry function {entry!r} not lowered")
        return FlatProgram(insts, label_index, inst_fn, entry)

    def text(self) -> str:
        """Human-readable listing of the whole program."""
        lines: List[str] = [f"# module {self.module_name}"]
        for fn in self.functions.values():
            lines.append("")
            lines.append(f"{fn.name}:")
            by_index: Dict[int, List[str]] = {}
            for label, idx in fn.labels.items():
                by_index.setdefault(idx, []).append(label)
            for i, inst in enumerate(fn.insts):
                for label in by_index.get(i, []):
                    lines.append(f".{label}:")
                prov = (
                    f" ; ir=%t{inst.prov_iid}:{inst.role}"
                    if inst.prov_iid is not None
                    else (f" ; {inst.role}" if inst.role != "main" else "")
                )
                lines.append(f"    {inst}{prov}")
            for label in by_index.get(len(fn.insts), []):  # trailing labels
                lines.append(f".{label}:")
        return "\n".join(lines) + "\n"
