"""The x86-flavoured target ISA.

A deliberately simplified x86-64: 16 integer registers, 16 XMM
registers, a FLAGS register, 2-operand arithmetic, FLAGS-based control
flow, and a System-V-style calling convention (first six integer args in
``rdi rsi rdx rcx r8 r9``, float args in ``xmm0..xmm7``, returns in
``rax``/``xmm0``).

Documented simplifications (none affect the paper's phenomena):

* all integer operations are 64-bit (MiniC ``int`` is ``i64``); ``mov``
  carries a byte-size of 1 or 8 for ``i1`` memory traffic, and a 1-byte
  load zero-extends (i.e. it is ``movzbq``);
* ``setcc`` writes the full register with 0/1 (real x86 writes the low
  byte; the difference is unobservable because ``i1`` slots hold 0/1);
* ``idiv src`` computes ``rax = rax / src``, ``rdx = rax % src`` from
  the 64-bit ``rax`` alone (no ``cqo``/128-bit dividend);
* ``ucomisd`` sets an explicit unordered flag ``UF`` and FP condition
  codes (``fe``, ``fne``, ``fb`` ...) read it, so NaN semantics match
  the IR's ordered predicates exactly without parity-flag tricks.

Fault-injection sites (PIN-style, §4.3 of the paper): an assembly
instruction is injectable iff it has a *register* destination — a GPR,
an XMM register, or FLAGS.  Stores to memory, pushes, branches, calls
and returns have no register destination and are not injection sites;
this mirrors how the extra ``mov``s/``test``s introduced by lowering
become unprotected sites while the IR instructions they came from have
none.

Every instruction carries provenance: the ``iid`` of the IR instruction
it implements (or ``None`` for frame code) and a ``role`` string; the
root-cause classifier is driven entirely by these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Reg",
    "Imm",
    "Mem",
    "Label",
    "AsmInst",
    "GPRS",
    "XMMS",
    "INT_ARG_REGS",
    "FP_ARG_REGS",
    "SCRATCH_GPRS",
    "SCRATCH_XMMS",
    "CC_CODES",
    "FP_CC_CODES",
    "CC_READS",
    "Role",
]

GPRS = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)
XMMS = tuple(f"xmm{i}" for i in range(16))

INT_ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
FP_ARG_REGS = tuple(f"xmm{i}" for i in range(8))

#: registers the lowering's local value cache may hand out (caller-saved)
SCRATCH_GPRS = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")
SCRATCH_XMMS = ("xmm2", "xmm3", "xmm4", "xmm5", "xmm6", "xmm7")

#: integer condition codes
CC_CODES = ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae")
#: floating-point condition codes (read UF; all-false when unordered
#: except none — matching the IR's ordered predicates)
FP_CC_CODES = ("fe", "fne", "fb", "fbe", "fa", "fae")

#: architectural flag read-set per condition code, mirroring the
#: machine's ``_eval_cc`` exactly — flags outside a branch's read set
#: are dead at that branch, the fact the bit-level liveness analysis
#: (:mod:`repro.analysis.bitlive`) builds on
CC_READS = {
    "e": ("zf",), "ne": ("zf",),
    "l": ("sf", "of"), "ge": ("sf", "of"),
    "le": ("zf", "sf", "of"), "g": ("zf", "sf", "of"),
    "b": ("cf",), "ae": ("cf",),
    "be": ("cf", "zf"), "a": ("cf", "zf"),
    "fe": ("uf", "zf"), "fne": ("uf", "zf"),
    "fb": ("uf", "cf"), "fae": ("uf", "cf"),
    "fbe": ("uf", "cf", "zf"), "fa": ("uf", "cf", "zf"),
}


class Role:
    """Provenance role vocabulary (see the classifier in
    :mod:`repro.analysis.rootcause`)."""

    MAIN = "main"                    # the core computation of the IR inst
    MAIN_COPY = "main-copy"          # mov into the dest reg before a 2-op op
    OPERAND_RELOAD = "operand-reload"  # home-slot reload of an operand
    RESULT_SPILL = "result-spill"    # spill of a fresh result to its slot
    ADDR = "addr"                    # address materialisation
    STORE_RELOAD = "store-reload"    # reload of the value a store writes
    STORE_ADDR_RELOAD = "store-addr-reload"  # reload of a store's pointer
    BR_COND_RELOAD = "br-cond-reload"  # reload of a branch condition
    BR_TEST = "br-test"              # test materialising branch flags
    CALL_ARG = "call-arg"            # argument-register setup mov
    RET_VAL = "ret-val"              # move of the return value into rax
    FRAME = "frame"                  # prologue/epilogue/frame bookkeeping
    ARG_SPILL = "arg-spill"          # spill of an incoming argument
    CHECKER = "checker"              # instruction belongs to a checker
    SELECT_TEST = "select-test"      # test feeding a cmov
    FOLDED_CHECKER_JMP = "folded-checker-jmp"  # checker folded to a jump


@dataclass(frozen=True)
class Reg:
    name: str

    @property
    def is_xmm(self) -> bool:
        return self.name.startswith("xmm")

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    value: Union[int, float]

    def __str__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """``disp(base)`` addressing; ``base=None`` means absolute."""

    base: Optional[Reg]
    disp: int

    def __str__(self) -> str:
        if self.base is None:
            return f"{self.disp:#x}"
        if self.disp:
            return f"{self.disp:#x}({self.base})"
        return f"({self.base})"


@dataclass(frozen=True)
class Label:
    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, Mem, Label]

# opcodes with a GPR destination as first operand
_REG_DEST_OPS = frozenset(
    ["mov", "lea", "add", "sub", "imul", "and", "or", "xor",
     "shl", "sar", "shr", "setcc", "cmov", "cvttsd2si", "pop"]
)
_XMM_DEST_OPS = frozenset(
    ["movsd", "addsd", "subsd", "mulsd", "divsd", "cvtsi2sd"]
)
_FLAGS_DEST_OPS = frozenset(["cmp", "test", "ucomisd"])


@dataclass
class AsmInst:
    """One assembly instruction.

    ``operands`` puts the destination first (Intel operand order; the
    printed form uses AT&T-style ``%reg``/``disp(base)`` spelling but
    keeps destination-first order — ``mov %rax, -0x8(%rbp)`` therefore
    reads "load the slot into rax").  ``cc`` holds the condition code
    for ``setcc``, ``cmov`` and ``jcc``.  ``size`` is the memory-access
    width in bytes for ``mov`` (1 or 8).
    """

    opcode: str
    operands: Tuple[Operand, ...] = ()
    cc: Optional[str] = None
    size: int = 8
    #: IR instruction this lowers (None = frame/runtime code)
    prov_iid: Optional[int] = None
    role: str = Role.MAIN
    comment: str = ""

    # -- fault-injection site analysis -------------------------------------

    def dest_kind(self) -> Optional[str]:
        """'gpr' | 'xmm' | 'flags' | None — what a fault would corrupt."""
        op = self.opcode
        if op in _FLAGS_DEST_OPS:
            return "flags"
        if op in _XMM_DEST_OPS:
            dest = self.operands[0]
            if isinstance(dest, Reg) and dest.is_xmm:
                return "xmm"
            return None  # movsd to memory
        if op in _REG_DEST_OPS:
            dest = self.operands[0]
            if isinstance(dest, Reg):
                return "xmm" if dest.is_xmm else "gpr"
            return None  # mov to memory
        if op == "idiv":
            return "gpr"  # quotient lands in rax
        return None  # push, jmp, jcc, call, ret, label-pseudo

    @property
    def is_injectable(self) -> bool:
        return self.dest_kind() is not None

    def dest_reg(self) -> Optional[Reg]:
        """Destination register, when dest_kind is gpr/xmm."""
        if self.opcode == "idiv":
            return Reg("rax")
        kind = self.dest_kind()
        if kind in ("gpr", "xmm"):
            return self.operands[0]  # type: ignore[return-value]
        return None

    def __str__(self) -> str:
        parts = [self.opcode if self.cc is None else f"{self.opcode}{self.cc}"]
        if self.opcode == "mov" and self.size == 1:
            parts[0] = "movb"
        ops = ", ".join(str(o) for o in self.operands)
        text = f"{parts[0]:10s}{ops}"
        if self.comment:
            text = f"{text:44s}# {self.comment}"
        return text
