"""Local register value cache used during lowering.

The backend allocates registers *per basic block*: a freshly computed
value stays bound to its register until the register is reused (LRU),
a call clobbers the caller-saved set, or the block ends.  Because every
definition is also spilled to its home slot, eviction is free — the
cache only tracks which register still mirrors which IR value.

This is exactly what makes the paper's eager-store fix work: a store
emitted in the *defining* block finds the value still cached and needs
no reload; a store pushed into a later block (by the checker) does not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import LoweringError
from .isa import Reg, SCRATCH_GPRS, SCRATCH_XMMS

__all__ = ["RegCache"]


class RegCache:
    def __init__(self, gpr_pool: int = 0, xmm_pool: int = 0):
        """``gpr_pool``/``xmm_pool`` limit the scratch registers the
        cache may use (0 = all).  Shrinking the pool models a
        register-starved ISA: more home-slot reloads, hence more
        store-penetration surface (the paper's §8 RISC-V/ARM argument).
        A GPR pool below 4 cannot satisfy lowering's operand-exclusion
        requirements."""
        n_gpr = gpr_pool or len(SCRATCH_GPRS)
        n_xmm = xmm_pool or len(SCRATCH_XMMS)
        if not 4 <= n_gpr <= len(SCRATCH_GPRS):
            raise LoweringError(
                f"gpr_pool must be in [4, {len(SCRATCH_GPRS)}], got {n_gpr}"
            )
        if not 2 <= n_xmm <= len(SCRATCH_XMMS):
            raise LoweringError(
                f"xmm_pool must be in [2, {len(SCRATCH_XMMS)}], got {n_xmm}"
            )
        self._gpr_order: List[str] = list(SCRATCH_GPRS[:n_gpr])
        self._xmm_order: List[str] = list(SCRATCH_XMMS[:n_xmm])
        self.reg_to_iid: Dict[str, int] = {}
        self.iid_to_reg: Dict[int, str] = {}
        self._lru: List[str] = []  # least-recently-used first

    # -- queries ----------------------------------------------------------

    def lookup(self, iid: int) -> Optional[Reg]:
        name = self.iid_to_reg.get(iid)
        if name is None:
            return None
        self._touch(name)
        return Reg(name)

    # -- allocation ---------------------------------------------------------

    def alloc(self, fp: bool = False, exclude: Set[str] = frozenset()) -> Reg:
        """A register to define a new value in; evicts LRU if needed.

        ``exclude`` protects registers holding operands of the current
        instruction from being reused mid-lowering.
        """
        order = self._xmm_order if fp else self._gpr_order
        free = [r for r in order if r not in self.reg_to_iid and r not in exclude]
        if free:
            name = free[0]
        else:
            for name in self._lru:
                if name in order and name not in exclude:
                    self.evict(name)
                    break
            else:
                raise LoweringError("register pool exhausted")
        self._touch(name)
        return Reg(name)

    def bind(self, iid: int, reg: Reg) -> None:
        self.evict(reg.name)
        old = self.iid_to_reg.pop(iid, None)
        if old is not None:
            self.reg_to_iid.pop(old, None)
        self.reg_to_iid[reg.name] = iid
        self.iid_to_reg[iid] = reg.name
        self._touch(reg.name)

    # -- invalidation ---------------------------------------------------------

    def evict(self, reg_name: str) -> None:
        iid = self.reg_to_iid.pop(reg_name, None)
        if iid is not None:
            self.iid_to_reg.pop(iid, None)

    def clear(self) -> None:
        self.reg_to_iid.clear()
        self.iid_to_reg.clear()
        self._lru.clear()

    def _touch(self, name: str) -> None:
        if name in self._lru:
            self._lru.remove(name)
        self._lru.append(name)
