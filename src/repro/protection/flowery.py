"""Flowery — the paper's three mitigation patches (§6).

All three operate on IR *after* instruction duplication, exactly as the
paper describes, and are driven by the duplication metadata:

* **eager store** (§6.1) is implemented inside the duplication pass as
  ``store_mode="eager"`` (store-then-check); :func:`eager_store_mode`
  documents the knob.  The stored value is then consumed inside its
  defining block, so the backend's block-local register cache still
  holds it and no post-checker home-slot reload (the store-penetration
  site) is emitted.
* **postponed branch condition check** (§6.2): before every protected
  conditional branch, the expected successor id is computed from the
  same condition (``select``) and stored to a global; each outgoing edge
  is split and verifies the global against its own id, catching
  wrong-direction jumps caused by faults in the branch's ``test`` FLAGS
  after the fact.
* **anti-comparison duplication** (§6.3): every checker that validates a
  *compare* result is sunk, together with the shadow compare, into a
  fresh block behind an opaque (volatile-load) guard.  The backend's
  redundant-compare elimination is block-local and treats volatile loads
  as availability barriers, so the shadow compare and the checker
  survive lowering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import IRError
from ..ir import types as T
from ..ir.instructions import (
    Br,
    Call,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
    Unreachable,
)
from ..ir.intrinsics import DETECT
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import const_int
from .duplication import DuplicationInfo

__all__ = [
    "apply_flowery",
    "postponed_branch_check",
    "anti_comparison_duplication",
    "eager_store_mode",
    "GUARD_GLOBAL",
    "EXPECT_GLOBAL",
]

GUARD_GLOBAL = "__flowery_guard"
EXPECT_GLOBAL = "__flowery_br_expect"


def eager_store_mode() -> str:
    """The duplication ``store_mode`` implementing Flowery §6.1.

    The patch is a *placement* policy for store checkers, so it lives in
    the duplication pass; pass ``store_mode=eager_store_mode()`` to
    :func:`~repro.protection.duplication.duplicate_module`.
    """
    return "eager"


def _ensure_global(module: Module, name: str, init: int, volatile: bool):
    gv = module.globals.get(name)
    if gv is None:
        gv = module.global_var(name, T.I64, init, volatile=volatile)
    return gv


def _get_detect_block(fn: Function, info: DuplicationInfo) -> BasicBlock:
    label = info.detect_blocks.get(fn.name)
    if label is not None:
        return fn.block_by_label(label)
    block = fn.new_block("detect")
    call = Call(DETECT, [], ret_type=T.VOID)
    call.attrs["checker"] = True
    fn.module.assign_iid(call)
    block.append(call)
    ur = Unreachable()
    ur.attrs["checker"] = True
    fn.module.assign_iid(ur)
    block.append(ur)
    info.detect_blocks[fn.name] = block.label
    return block


def _mark(inst: Instruction, patch: str) -> Instruction:
    inst.attrs["flowery"] = patch
    inst.attrs["checker"] = True
    return inst


# -- §6.2 postponed branch condition check ---------------------------------


def postponed_branch_check(module: Module, info: DuplicationInfo) -> int:
    """Instrument every checker-protected conditional branch; returns the
    number of branches instrumented."""
    expect = _ensure_global(module, EXPECT_GLOBAL, 0, volatile=False)
    protected_syncs = {c.sync_iid for c in info.checkers.values()}
    count = 0
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        detect = None
        for block in list(fn.blocks):
            term = block.terminator
            if (
                not isinstance(term, CondBr)
                or term.is_checker
                or "flowery" in term.attrs
                or term.iid not in protected_syncs
                or term.attrs.get("flowery_branch_done")
            ):
                continue
            if term.then_block is term.else_block:
                continue
            term.attrs["flowery_branch_done"] = True
            if detect is None:
                detect = _get_detect_block(fn, info)
            then_id = term.iid * 2
            else_id = term.iid * 2 + 1

            # before the branch: expected-successor bookkeeping
            sel = _mark(
                Select(term.condition, const_int(then_id), const_int(else_id)),
                "postponed-branch",
            )
            st = _mark(Store(sel, expect), "postponed-branch")
            module.assign_iid(sel)
            module.assign_iid(st)
            at = block.index_of(term)
            block.insert(at, sel)
            block.insert(at + 1, st)

            # split both edges with verification blocks
            term.then_block = _edge_checker(
                fn, module, expect, term.then_block, then_id, detect
            )
            term.else_block = _edge_checker(
                fn, module, expect, term.else_block, else_id, detect
            )
            count += 1
    return count


def _edge_checker(
    fn: Function,
    module: Module,
    expect,
    target: BasicBlock,
    expected_id: int,
    detect: BasicBlock,
) -> BasicBlock:
    edge = fn.new_block("br.verify")
    load = _mark(Load(expect), "postponed-branch")
    cmp_ = _mark(ICmp("eq", load, const_int(expected_id)), "postponed-branch")
    br = _mark(CondBr(cmp_, target, detect), "postponed-branch")
    for inst in (load, cmp_, br):
        module.assign_iid(inst)
        edge.append(inst)
    return edge


# -- §6.3 anti-comparison duplication ------------------------------------------


def anti_comparison_duplication(module: Module, info: DuplicationInfo) -> int:
    """Sink compare-validating checkers behind opaque guards; returns the
    number of checkers hardened."""
    guard = _ensure_global(module, GUARD_GLOBAL, 1, volatile=True)
    by_iid = {inst.iid: inst for inst in module.instructions()}
    count = 0
    for checker_iid, cinfo in list(info.checkers.items()):
        checker = by_iid.get(checker_iid)
        if checker is None or checker.attrs.get("flowery_anticmp_done"):
            continue
        master = checker.operands[0]
        shadow = checker.operands[1]
        if not isinstance(master, (ICmp, FCmp)):
            continue  # only compare-validating checkers are foldable
        if not isinstance(shadow, Instruction) or not shadow.is_shadow:
            continue
        checker.attrs["flowery_anticmp_done"] = True

        block = checker.parent
        fn = block.parent
        condbr = block.terminator
        if not isinstance(condbr, CondBr) or condbr.condition is not checker:
            raise IRError(
                f"checker %t{checker_iid} is not followed by its branch"
            )
        cont = condbr.then_block
        detect = condbr.else_block

        # A fresh clone of the shadow compare goes into the guarded block
        # (the original shadow may serve other checkers, so it stays put;
        # if this was its only use it simply becomes dead).  Computing the
        # clone in a separate block is what defeats the backend's
        # block-local redundant-compare elimination.
        from .duplication import _clone_instruction

        clone = _clone_instruction(shadow, {})
        clone.attrs.update(shadow.attrs)
        clone.attrs["flowery"] = "anti-cmp"
        module.assign_iid(clone)
        info.shadow_of[clone.iid] = clone.attrs["dup_of"]
        if checker.operands[1] is shadow:
            checker.operands[1] = clone
        else:
            checker.operands[0] = clone
        shadow = clone

        # detach the checker pair from its block
        k_at = block.index_of(checker)
        assert block.instructions[k_at + 1] is condbr
        del block.instructions[k_at : k_at + 2]

        # guarded diamond
        check_block = fn.new_block("anticmp.check")
        skip_block = fn.new_block("anticmp.skip")
        gl = _mark(Load(guard, volatile=True), "anti-cmp")
        gc = _mark(ICmp("ne", gl, const_int(0)), "anti-cmp")
        gbr = _mark(CondBr(gc, check_block, skip_block), "anti-cmp")
        for inst in (gl, gc, gbr):
            module.assign_iid(inst)
            block.append(inst)

        for inst in (shadow, checker, condbr):
            inst.parent = check_block
            check_block.instructions.append(inst)

        skip_br = _mark(Br(cont), "anti-cmp")
        module.assign_iid(skip_br)
        skip_block.append(skip_br)

        # keep layout readable: place the diamond right after the block
        pos = fn.blocks.index(block)
        fn.blocks.remove(check_block)
        fn.blocks.remove(skip_block)
        fn.blocks.insert(pos + 1, check_block)
        fn.blocks.insert(pos + 2, skip_block)
        count += 1
    return count


def _find_inst(module: Module, iid: int) -> Optional[Instruction]:
    for inst in module.instructions():
        if inst.iid == iid:
            return inst
    return None


# -- orchestration ---------------------------------------------------------------


def apply_flowery(
    module: Module,
    info: DuplicationInfo,
    branch_patch: bool = True,
    cmp_patch: bool = True,
) -> Dict[str, int]:
    """Apply the post-duplication Flowery patches (§6.2 and §6.3).

    §6.1 (eager store) must be selected at duplication time via
    ``store_mode="eager"``.  Returns per-patch instrumentation counts.
    """
    stats = {"postponed_branch": 0, "anti_cmp": 0}
    if cmp_patch:
        stats["anti_cmp"] = anti_comparison_duplication(module, info)
    if branch_patch:
        stats["postponed_branch"] = postponed_branch_check(module, info)
    return stats
