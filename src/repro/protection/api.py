"""High-level protection pipeline.

``protect(module, level, ...)`` runs the whole chain the paper
evaluates:

1. profile the unprotected module with IR fault injection,
2. plan the protected set with the knapsack (benefit = SDC profile,
   cost = dynamic count, budget = level% of full duplication),
3. duplicate + insert checkers (lazy or eager store mode),
4. optionally apply the Flowery patches.

The module is deep-compiled fresh by the caller (passes mutate in
place), so callers hand in a module they are willing to transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..ir.module import Module
from ..ir.verifier import verify_module
from .duplication import DuplicationInfo, duplicate_module
from .flowery import apply_flowery
from .planner import ProtectionPlan, SdcProfile, plan_protection, profile_module

__all__ = ["ProtectedProgram", "protect"]


@dataclass
class ProtectedProgram:
    """A protected module plus all metadata the analysis layer needs."""

    module: Module
    level: int
    plan: Optional[ProtectionPlan]
    dup_info: DuplicationInfo
    flowery: bool
    flowery_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def checker_sync_map(self) -> Dict[int, list]:
        """sync iid -> checker iids guarding it."""
        out: Dict[int, list] = {}
        for cid, cinfo in self.dup_info.checkers.items():
            out.setdefault(cinfo.sync_iid, []).append(cid)
        return out


def protect(
    module: Module,
    level: int = 100,
    profile: Optional[SdcProfile] = None,
    flowery: bool = False,
    solver: str = "greedy",
    profile_campaigns: int = 1000,
    profile_seed: int = 0,
    verify: bool = True,
    selected: Optional[Set[int]] = None,
) -> ProtectedProgram:
    """Protect ``module`` in place at the given protection level.

    ``flowery=True`` enables all three Flowery patches (eager store at
    duplication time, postponed branch check and anti-comparison
    duplication afterwards).  ``selected`` overrides the planner with an
    explicit protected set (used by tests and ablations).
    """
    plan: Optional[ProtectionPlan] = None
    if selected is None:
        if level == 100:
            selected = None  # duplicate_module defaults to everything
        else:
            if profile is None:
                profile = profile_module(
                    module, n_campaigns=profile_campaigns, seed=profile_seed
                )
            plan = plan_protection(module, profile, level, solver=solver)
            selected = plan.selected

    store_mode = "eager" if flowery else "lazy"
    dup_info = duplicate_module(module, protected=selected, store_mode=store_mode)

    stats: Dict[str, int] = {}
    if flowery:
        stats = apply_flowery(module, dup_info)
    if verify:
        verify_module(module)
    return ProtectedProgram(
        module=module,
        level=level,
        plan=plan,
        dup_info=dup_info,
        flowery=flowery,
        flowery_stats=stats,
    )
