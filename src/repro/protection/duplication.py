"""SWIFT-style selective instruction duplication (§3 of the paper).

For every *protected* computational instruction the pass inserts a
shadow copy immediately after the master, computing on shadow operands
where they exist.  Before every synchronisation point — ``store``,
``condbr``, ``call``, ``ret`` — a checker compares each shadowed operand
of the sync point against its shadow and branches to a ``__detect``
handler on mismatch.

The pass records rich metadata for the cross-layer analysis:

* ``shadow_of``   — shadow iid -> master iid
* ``checkers``    — checker (the comparison instruction) iid ->
  :class:`CheckerInfo` with the sync point, the checked value and the
  *dependence cone* of masters the checker transitively covers
* ``guarded_by``  — master iid -> checker iids covering it

The cone/guard maps let the root-cause classifier decide whether a
fault that escaped at assembly level did so because every checker
covering its instruction was folded away by the backend (comparison
penetration) or for another reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from ..errors import IRError
from ..ir import types as T
from ..ir.instructions import (
    Alloca,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.intrinsics import DETECT
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import Value

__all__ = ["duplicate_module", "DuplicationInfo", "CheckerInfo",
           "duplicable_instructions", "is_duplicable", "sync_kind"]

#: opcodes the pass can duplicate (pure computations + loads)
_DUPLICABLE_OPS = frozenset(
    ["load", "icmp", "fcmp", "gep", "select",
     "add", "sub", "mul", "sdiv", "srem", "and", "or", "xor",
     "shl", "ashr", "lshr", "fadd", "fsub", "fmul", "fdiv",
     "sext", "zext", "trunc", "sitofp", "fptosi",
     "bitcast", "ptrtoint", "inttoptr"]
)


def is_duplicable(inst: Instruction) -> bool:
    """Can the duplication pass shadow this instruction?

    Checker / Flowery instrumentation is never re-protected.
    """
    if inst.is_checker or "flowery" in inst.attrs or inst.is_shadow:
        return False
    return inst.opcode in _DUPLICABLE_OPS


def duplicable_instructions(module: Module) -> List[Instruction]:
    """All instructions a protection plan may select."""
    return [i for i in module.instructions() if is_duplicable(i)]


def sync_kind(inst: Instruction) -> Optional[str]:
    """Classify a synchronisation point: ``store``/``branch``/``call``/
    ``ret`` (``None`` for non-sync instructions).

    Used by the analysis and mutation-testing layers to group checkers
    by the kind of sync point they guard.
    """
    if isinstance(inst, Store):
        return "store"
    if isinstance(inst, CondBr):
        return "branch"
    if isinstance(inst, Call):
        return "call"
    if isinstance(inst, Ret):
        return "ret"
    return None


@dataclass
class CheckerInfo:
    checker_iid: int
    sync_iid: int
    value_iid: int
    covers: Set[int] = field(default_factory=set)


@dataclass
class DuplicationInfo:
    """Metadata produced by :func:`duplicate_module`."""

    protected: Set[int] = field(default_factory=set)
    shadow_of: Dict[int, int] = field(default_factory=dict)
    checkers: Dict[int, CheckerInfo] = field(default_factory=dict)
    guarded_by: Dict[int, List[int]] = field(default_factory=dict)
    #: per-function detect blocks (label names), for diagnostics
    detect_blocks: Dict[str, str] = field(default_factory=dict)

    def checker_count(self) -> int:
        return len(self.checkers)


def _clone_instruction(
    inst: Instruction, shadow_operand: Dict[int, Value]
) -> Instruction:
    """Structural copy of ``inst`` with operands redirected to shadows."""

    def m(v: Value) -> Value:
        if isinstance(v, Instruction) and v.iid in shadow_operand:
            return shadow_operand[v.iid]
        return v

    if isinstance(inst, Load):
        return Load(m(inst.pointer), volatile=inst.volatile)
    if isinstance(inst, ICmp):
        return ICmp(inst.pred, m(inst.operands[0]), m(inst.operands[1]))
    if isinstance(inst, FCmp):
        return FCmp(inst.pred, m(inst.operands[0]), m(inst.operands[1]))
    if isinstance(inst, Gep):
        return Gep(m(inst.base), m(inst.index))
    if isinstance(inst, Cast):
        return Cast(inst.opcode, m(inst.operands[0]), inst.type)
    if isinstance(inst, Select):
        return Select(m(inst.operands[0]), m(inst.operands[1]),
                      m(inst.operands[2]))
    # remaining duplicable ops are plain BinOps
    from ..ir.instructions import BinOp

    return BinOp(inst.opcode, m(inst.operands[0]), m(inst.operands[1]))


class _FunctionDuplicator:
    def __init__(
        self,
        fn: Function,
        protected: Set[int],
        info: DuplicationInfo,
        store_mode: str,
    ):
        self.fn = fn
        self.module = fn.module
        self.protected = protected
        self.info = info
        self.store_mode = store_mode
        self.shadow: Dict[int, Value] = {}
        self.detect_block: Optional[BasicBlock] = None

    # -- detect handler -----------------------------------------------------

    def _get_detect_block(self) -> BasicBlock:
        if self.detect_block is None:
            block = self.fn.new_block("detect")
            call = Call(DETECT, [], ret_type=T.VOID)
            call.attrs["checker"] = True
            self.module.assign_iid(call)
            block.append(call)
            ur = Unreachable()
            ur.attrs["checker"] = True
            self.module.assign_iid(ur)
            block.append(ur)
            self.detect_block = block
            self.info.detect_blocks[self.fn.name] = block.label
        return self.detect_block

    # -- cone computation ------------------------------------------------------

    def _cone(self, value: Value) -> Set[int]:
        """Masters transitively covered by a checker on ``value``."""
        cone: Set[int] = set()
        stack = [value]
        while stack:
            v = stack.pop()
            if not isinstance(v, Instruction):
                continue
            if v.iid in cone or v.iid not in self.shadow:
                continue
            cone.add(v.iid)
            stack.extend(v.operands)
        return cone

    # -- main walk ----------------------------------------------------------------

    def run(self) -> None:
        block_idx = 0
        # fn.blocks grows as we split; index-based iteration is safe since
        # splits append the continuation right after the current block
        while block_idx < len(self.fn.blocks):
            block = self.fn.blocks[block_idx]
            block_idx += 1
            if self.detect_block is not None and block is self.detect_block:
                continue
            i = 0
            while i < len(block.instructions):
                inst = block.instructions[i]
                if inst.is_checker or "flowery" in inst.attrs or inst.is_shadow:
                    i += 1
                    continue
                if inst.iid in self.protected and is_duplicable(inst):
                    shadow = _clone_instruction(inst, self.shadow)
                    shadow.attrs["dup_of"] = inst.iid
                    self.module.assign_iid(shadow)
                    inst.attrs["protected"] = True
                    self.shadow[inst.iid] = shadow
                    self.info.shadow_of[shadow.iid] = inst.iid
                    self.info.protected.add(inst.iid)
                    block.insert(i + 1, shadow)
                    i += 2
                    continue
                if inst.is_sync_point:
                    consumed = self._insert_checkers(block, i, inst)
                    if consumed:
                        # the block was split; the sync point now heads the
                        # continuation block — move on to it
                        break
                i += 1

    def _checked_operands(self, sync: Instruction) -> List[Value]:
        if isinstance(sync, Store):
            return [sync.value, sync.pointer]
        if isinstance(sync, CondBr):
            return [sync.condition]
        if isinstance(sync, Call):
            return list(sync.operands)
        if isinstance(sync, Ret):
            return [sync.value] if sync.value is not None else []
        return []

    def _insert_checkers(
        self, block: BasicBlock, index: int, sync: Instruction
    ) -> bool:
        """Insert checker sequences before ``sync``.  Returns True if the
        containing block was split (iteration must restart)."""
        if sync.attrs.get("sync_checked"):
            return False
        to_check = [
            v
            for v in self._checked_operands(sync)
            if isinstance(v, Instruction) and v.iid in self.shadow
        ]
        if not to_check:
            return False
        sync.attrs["sync_checked"] = True

        # Eager store (Flowery §6.1): perform the store *before* its
        # checkers so the stored value is consumed inside its defining
        # block and never needs a post-checker reload.
        eager = self.store_mode == "eager" and isinstance(sync, Store)

        detect = self._get_detect_block()
        current = block
        split_at = index

        if eager:
            # leave the store where it is; checkers go right after it
            split_at = index + 1

        for v in to_check:
            shadow = self.shadow[v.iid]
            pred = "oeq" if v.type.is_float else "eq"
            checker: Instruction = (
                FCmp(pred, v, shadow) if v.type.is_float else ICmp(pred, v, shadow)
            )
            checker.attrs["checker"] = True
            checker.attrs["checked_sync"] = sync.iid
            checker.attrs["checked_value"] = v.iid
            self.module.assign_iid(checker)

            cont = self._split_block(current, split_at)
            current.instructions.insert(split_at, checker)
            checker.parent = current
            condbr = CondBr(checker, cont, detect)
            condbr.attrs["checker"] = True
            self.module.assign_iid(condbr)
            current.instructions.append(condbr)
            condbr.parent = current

            cone = self._cone(v)
            cinfo = CheckerInfo(
                checker_iid=checker.iid,
                sync_iid=sync.iid,
                value_iid=v.iid,
                covers=cone,
            )
            self.info.checkers[checker.iid] = cinfo
            for iid in cone:
                self.info.guarded_by.setdefault(iid, []).append(checker.iid)

            current = cont
            split_at = 0
        return True

    def _split_block(self, block: BasicBlock, index: int) -> BasicBlock:
        """Move ``block.instructions[index:]`` into a fresh block inserted
        right after ``block`` in layout order."""
        cont = BasicBlock(self.fn._unique_label(block.label + ".chk"), self.fn)
        cont.instructions = block.instructions[index:]
        for inst in cont.instructions:
            inst.parent = cont
        block.instructions = block.instructions[:index]
        pos = self.fn.blocks.index(block)
        self.fn.blocks.insert(pos + 1, cont)
        return cont


def duplicate_module(
    module: Module,
    protected: Optional[Set[int]] = None,
    store_mode: str = "lazy",
) -> DuplicationInfo:
    """Apply instruction duplication in place.

    ``protected`` is the set of instruction iids to duplicate (from a
    :mod:`~repro.protection.planner` plan); ``None`` means full
    protection.  ``store_mode`` selects the original lazy checker
    placement (check-then-store) or Flowery's eager placement
    (store-then-check, §6.1).
    """
    if store_mode not in ("lazy", "eager"):
        raise IRError(f"unknown store mode {store_mode!r}")
    if protected is None:
        protected = {i.iid for i in duplicable_instructions(module)}
    info = DuplicationInfo()
    for fn in module.functions.values():
        if not fn.is_declaration:
            _FunctionDuplicator(fn, protected, info, store_mode).run()
    return info
