"""Instruction duplication, protection planning, and Flowery mitigation."""

from .api import ProtectedProgram, protect  # noqa: F401
from .duplication import (  # noqa: F401
    CheckerInfo,
    DuplicationInfo,
    duplicable_instructions,
    duplicate_module,
    is_duplicable,
)
from .flowery import (  # noqa: F401
    EXPECT_GLOBAL,
    GUARD_GLOBAL,
    anti_comparison_duplication,
    apply_flowery,
    eager_store_mode,
    postponed_branch_check,
)
from .planner import (  # noqa: F401
    PROTECTION_LEVELS,
    ProtectionPlan,
    SdcProfile,
    knapsack_exact,
    knapsack_greedy,
    plan_protection,
    profile_module,
)

__all__ = [
    "protect", "ProtectedProgram",
    "duplicate_module", "DuplicationInfo", "CheckerInfo",
    "duplicable_instructions", "is_duplicable",
    "apply_flowery", "postponed_branch_check", "anti_comparison_duplication",
    "eager_store_mode", "GUARD_GLOBAL", "EXPECT_GLOBAL",
    "profile_module", "plan_protection", "SdcProfile", "ProtectionPlan",
    "knapsack_greedy", "knapsack_exact", "PROTECTION_LEVELS",
]
