"""Signature-based control-flow checking (CFC).

A compile-time pass in the spirit of CFCSS/ACFC: every basic block gets
a globally-unique compile-time signature, and a single runtime signature
register (here a volatile module global, ``@__cfc_sig``) tracks the
block control flow *believes* it is in.  Before every branch to a
signature-mapped block the taken edge stores the *target*'s signature;
on entry to every non-entry block the current runtime signature is
compared against the block's own compile-time signature, and a mismatch
transfers to a per-function ``cfc.detect`` block that raises the
existing ``__detect`` path (so :func:`classify_outcome` counts the run
as Detected, exactly like a duplication checker firing).

Invariant maintained on fault-free runs: *at the first instruction of a
signature-mapped block, the runtime signature equals that block's
compile-time signature*.  After a call to a defined function (whose own
instrumentation clobbers the global) the caller re-stores the signature
of the block containing the call, restoring the invariant mid-block.

What this catches: a control-flow fault that redirects a branch to the
wrong block entry arrives with the signature of the *intended* edge
still in the global, so the landing block's entry check fires (unless
the landing block is unchecked — the entry block, a ``.cfc``
continuation, or a detect block — the classic single-signature scheme
gap).  What it does not catch: redirects that happen to land on the
intended target, and cross-function edges (function entries are
unchecked because the verifier guarantees entry blocks have no
intra-function predecessors; a corrupted asm-layer ``CALL`` is only
caught once the callee branches into a checked block).

The pass runs *after* duplication (so ``.chk`` continuation blocks are
themselves signature-mapped and checked) and *before*
:class:`~repro.backend.layout.GlobalLayout` (so ``@__cfc_sig`` is laid
out like any other global).  All inserted instructions carry
``attrs["checker"]`` and ``attrs["cfc"]`` so duplication-oriented
analyses skip them; the entry-check conditional branch additionally
carries ``attrs["cfc_check"]`` so the edge-store walk does not treat it
as a real edge.

``weakness`` deliberately mis-implements the scheme for mutation
testing (see ``testgen/mutants.py``):

* ``"dropped-update"`` — no edge stores (and no post-call restores):
  the very first entry check of a fault-free run mismatches, so the
  golden run dies in the detect path.
* ``"unchecked-backedge"`` — blocks targeted by a back edge (an edge
  from a block at the same or a later layout position, i.e. loop
  headers) get no entry check; redirects landing on hot loop headers go
  undetected and measured detection drops.
* ``"constant-signature"`` — every block shares one signature value;
  all checks pass vacuously and detection collapses to ~zero while the
  golden run stays clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import IRError
from ..ir import types as T
from ..ir.instructions import (
    Br,
    Call,
    CondBr,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
    Unreachable,
)
from ..ir.intrinsics import DETECT
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import Constant

__all__ = ["CFC_WEAKNESSES", "CFCInfo", "apply_cfc"]

SIG_GLOBAL = "__cfc_sig"

CFC_WEAKNESSES = ("dropped-update", "unchecked-backedge", "constant-signature")


@dataclass
class CFCInfo:
    """What the CFC pass did — for reporting and tests."""

    #: fn name -> block label -> compile-time signature
    signatures: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: fn name -> label of the per-function ``cfc.detect`` block
    detect_blocks: Dict[str, str] = field(default_factory=dict)
    checks: int = 0
    edge_stores: int = 0
    restores: int = 0
    weakness: Optional[str] = None

    def to_doc(self) -> Dict[str, object]:
        return {
            "checks": self.checks,
            "edge_stores": self.edge_stores,
            "restores": self.restores,
            "weakness": self.weakness,
            "functions": sorted(self.signatures),
        }


def _is_detect_block(block: BasicBlock) -> bool:
    insts = block.instructions
    return bool(insts) and isinstance(insts[0], Call) and insts[0].callee_name == DETECT


def _mark(inst: Instruction) -> Instruction:
    inst.attrs["checker"] = True
    inst.attrs["cfc"] = True
    return inst


class _FunctionCFC:
    def __init__(
        self,
        module: Module,
        fn: Function,
        sig_ptr,
        sigs: Dict[BasicBlock, int],
        info: CFCInfo,
        weakness: Optional[str],
    ) -> None:
        self.module = module
        self.fn = fn
        self.sig_ptr = sig_ptr
        self.sigs = sigs
        self.info = info
        self.weakness = weakness
        self.detect_block: Optional[BasicBlock] = None

    # -- helpers -----------------------------------------------------------

    def _const(self, sig: int) -> Constant:
        return Constant(T.I64, sig)

    def _get_detect_block(self) -> BasicBlock:
        if self.detect_block is None:
            block = self.fn.new_block("cfc.detect")
            call = _mark(Call(DETECT, [], ret_type=T.VOID))
            self.module.assign_iid(call)
            block.append(call)
            ur = _mark(Unreachable())
            self.module.assign_iid(ur)
            block.append(ur)
            self.detect_block = block
            self.info.detect_blocks[self.fn.name] = block.label
        return self.detect_block

    def _split_entry(self, block: BasicBlock) -> BasicBlock:
        """Move all of ``block``'s instructions into a fresh ``.cfc``
        continuation inserted right after it; the (now empty) original
        keeps its label and incoming edges and will hold the check."""
        cont = BasicBlock(self.fn._unique_label(block.label + ".cfc"), self.fn)
        cont.instructions = block.instructions
        for inst in cont.instructions:
            inst.parent = cont
        block.instructions = []
        self.fn.blocks.insert(self.fn.blocks.index(block) + 1, cont)
        # the continuation runs in the same "control-flow region": give it
        # the same signature so post-call restores inside it are coherent
        self.sigs[cont] = self.sigs[block]
        return cont

    # -- the three instrumentation walks -----------------------------------

    def insert_checks(self) -> None:
        entry = self.fn.entry
        back_targets = set()
        if self.weakness == "unchecked-backedge":
            pos = {b: i for i, b in enumerate(self.fn.blocks)}
            for block in self.fn.blocks:
                for succ in block.successors():
                    if pos[succ] <= pos[block]:
                        back_targets.add(succ)
        for block in list(self.fn.blocks):
            if block is entry or block not in self.sigs:
                continue
            if block in back_targets:
                continue
            cont = self._split_entry(block)
            detect = self._get_detect_block()
            load = _mark(Load(self.sig_ptr, volatile=True))
            self.module.assign_iid(load)
            block.append(load)
            cmp = _mark(ICmp("eq", load, self._const(self.sigs[cont])))
            self.module.assign_iid(cmp)
            block.append(cmp)
            condbr = _mark(CondBr(cmp, cont, detect))
            condbr.attrs["cfc_check"] = True
            self.module.assign_iid(condbr)
            block.append(condbr)
            self.info.checks += 1

    def insert_edge_stores(self) -> None:
        for block in list(self.fn.blocks):
            if _is_detect_block(block):
                continue
            term = block.terminator
            if term is None or term.attrs.get("cfc_check"):
                continue
            stores: List[Instruction] = []
            if isinstance(term, Br):
                sig = self.sigs.get(term.target)
                if sig is not None:
                    stores.append(Store(self._const(sig), self.sig_ptr, volatile=True))
            elif isinstance(term, CondBr):
                s_then = self.sigs.get(term.then_block)
                s_else = self.sigs.get(term.else_block)
                if s_then is not None and s_else is not None and s_then != s_else:
                    sel = _mark(
                        Select(term.condition, self._const(s_then), self._const(s_else))
                    )
                    self.module.assign_iid(sel)
                    stores.append(sel)
                    stores.append(Store(sel, self.sig_ptr, volatile=True))
                else:
                    sig = s_then if s_then is not None else s_else
                    if sig is not None:
                        stores.append(
                            Store(self._const(sig), self.sig_ptr, volatile=True)
                        )
            if not stores:
                continue
            at = block.index_of(term)
            for inst in stores:
                if inst.iid <= 0:
                    _mark(inst)
                    self.module.assign_iid(inst)
                block.insert(at, inst)
                at += 1
            self.info.edge_stores += 1

    def insert_restores(self) -> None:
        for block in list(self.fn.blocks):
            sig = self.sigs.get(block)
            if sig is None:
                continue
            call_at = [
                i
                for i, inst in enumerate(block.instructions)
                if isinstance(inst, Call)
                and isinstance(inst.callee, Function)
                and not inst.callee.is_declaration
            ]
            for i in reversed(call_at):
                st = _mark(Store(self._const(sig), self.sig_ptr, volatile=True))
                self.module.assign_iid(st)
                block.insert(i + 1, st)
                self.info.restores += 1

    def run(self) -> None:
        self.insert_checks()
        if self.weakness != "dropped-update":
            self.insert_edge_stores()
            self.insert_restores()


def apply_cfc(module: Module, weakness: Optional[str] = None) -> CFCInfo:
    """Instrument ``module`` in place with signature-based CFC.

    Idempotence is not supported: applying CFC twice raises.  Returns a
    :class:`CFCInfo` describing the instrumentation.
    """
    if weakness is not None and weakness not in CFC_WEAKNESSES:
        raise IRError(
            f"unknown CFC weakness {weakness!r}; expected one of "
            f"{', '.join(CFC_WEAKNESSES)}"
        )
    if SIG_GLOBAL in module.globals:
        raise IRError("module already has CFC applied")
    sig_ptr = module.global_var(SIG_GLOBAL, T.I64, initializer=0, volatile=True)

    info = CFCInfo(weakness=weakness)
    next_sig = 1
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        sigs: Dict[BasicBlock, int] = {}
        for block in fn.blocks:
            if _is_detect_block(block):
                continue
            sigs[block] = 1 if weakness == "constant-signature" else next_sig
            next_sig += 1
        _FunctionCFC(module, fn, sig_ptr, sigs, info, weakness).run()
        info.signatures[fn.name] = {
            b.label: s for b, s in sigs.items() if b in set(fn.blocks)
        }
    return info
