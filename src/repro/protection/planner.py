"""Selective-protection planning (§3 of the paper).

Protecting an instruction costs extra *dynamic* instructions at runtime
(its own execution count, roughly doubled) and buys SDC detection
proportional to how many SDCs faults in that instruction cause.  The
paper formulates the selection as 0-1 knapsack: benefit = estimated SDC
contribution, cost = dynamic execution count, budget = protection level
x total duplicable dynamic count.

Benefits come from an IR-level fault-injection *profiling* campaign on
the unprotected program (:class:`SdcProfile`), the standard methodology
of the instruction-duplication literature the paper follows.

Two solvers are provided: the greedy benefit/cost heuristic used in
practice (near-optimal for this problem shape) and an exact dynamic
program for small instances (used in tests and the planner ablation).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import PlanError
from ..execresult import RunStatus
from ..interp.interpreter import IRInterpreter
from ..interp.layout import GlobalLayout
from ..ir.module import Module
from .duplication import duplicable_instructions

__all__ = ["SdcProfile", "ProtectionPlan", "profile_module", "plan_protection",
           "knapsack_greedy", "knapsack_exact", "validate_plan",
           "evaluate_protection"]

PROTECTION_LEVELS = (30, 50, 70, 100)


@dataclass
class SdcProfile:
    """Per-static-instruction fault profile of an unprotected module."""

    #: dynamic execution count of every instruction (one golden run)
    dyn_counts: Dict[int, int]
    #: SDC occurrences attributed to each instruction by the campaign
    sdc_counts: Dict[int, int]
    #: campaign bookkeeping
    campaigns: int
    sdc_total: int
    golden_output: str
    golden_dyn_total: int
    golden_dyn_injectable: int

    @property
    def sdc_probability(self) -> float:
        return self.sdc_total / self.campaigns if self.campaigns else 0.0


@dataclass
class ProtectionPlan:
    """The instructions selected for duplication at one protection level."""

    level: int
    selected: Set[int]
    budget: int
    spent: int
    total_cost: int

    @property
    def dynamic_fraction(self) -> float:
        return self.spent / self.total_cost if self.total_cost else 0.0


#: golden profiling runs keyed by module; a level sweep re-plans over
#: the same unprotected module many times, but its dynamic counts never
#: change, so the (expensive) profiled execution is paid once
_GOLDEN_CACHE: "weakref.WeakKeyDictionary[Module, Tuple]" = \
    weakref.WeakKeyDictionary()


def _module_fingerprint(module: Module) -> Tuple[int, int]:
    """Cheap structural identity (decode-cache style): instruction
    count plus an order-insensitive hash of object ids, so in-place
    pass mutation invalidates the cached golden run."""
    n = 0
    h = 0
    for fn in module.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                n += 1
                h ^= id(inst) ^ (inst.iid * 0x9E3779B1)
    return n, h


def _golden_profile(module: Module, layout: GlobalLayout):
    """One profiled golden execution per (module, structure) pair."""
    fp = _module_fingerprint(module)
    cached = _GOLDEN_CACHE.get(module)
    if cached is not None and cached[0] == fp:
        return cached[1]
    golden = IRInterpreter(module, layout=layout).run(profile=True)
    if golden.status is not RunStatus.OK:
        raise PlanError(
            f"golden run failed: {golden.status} {golden.trap_kind}"
        )
    _GOLDEN_CACHE[module] = (fp, golden)
    return golden


def profile_module(
    module: Module,
    n_campaigns: int = 1000,
    seed: int = 0,
    layout: Optional[GlobalLayout] = None,
    max_steps_factor: int = 4,
) -> SdcProfile:
    """IR-level fault-injection profiling of an unprotected module.

    Runs one golden profiling execution, then ``n_campaigns`` single-
    bit-flip campaigns, attributing each SDC to the static instruction
    that received the fault.
    """
    layout = layout or GlobalLayout(module)
    golden = _golden_profile(module, layout)
    max_steps = max(10_000, golden.dyn_total * max_steps_factor)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, golden.dyn_injectable, size=n_campaigns)
    bits = rng.integers(0, 64, size=n_campaigns)

    sdc_counts: Dict[int, int] = {}
    sdc_total = 0
    for idx, bit in zip(indices.tolist(), bits.tolist()):
        res = IRInterpreter(module, layout=layout, max_steps=max_steps).run(
            inject_index=idx, inject_bit=bit
        )
        if res.status is RunStatus.OK and res.output != golden.output:
            sdc_total += 1
            if res.injected_iid is not None:
                sdc_counts[res.injected_iid] = (
                    sdc_counts.get(res.injected_iid, 0) + 1
                )
    return SdcProfile(
        dyn_counts=dict(golden.per_inst_counts or {}),
        sdc_counts=sdc_counts,
        campaigns=n_campaigns,
        sdc_total=sdc_total,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
    )


def knapsack_greedy(
    items: Sequence[Tuple[int, float, int]], budget: int
) -> Set[int]:
    """Greedy benefit/cost knapsack.

    ``items`` are ``(id, benefit, cost)``; returns the chosen ids.
    Zero-cost items (never-executed instructions) are free and always
    taken.  Ties break deterministically by id.
    """
    chosen: Set[int] = set()
    remaining = budget
    ranked = sorted(
        items,
        key=lambda it: (-(it[1] / it[2]) if it[2] else float("-inf"), it[0]),
    )
    for iid, benefit, cost in items:
        if cost == 0:
            chosen.add(iid)
    for iid, benefit, cost in ranked:
        if cost == 0 or iid in chosen:
            continue
        if cost <= remaining:
            chosen.add(iid)
            remaining -= cost
    return chosen


def knapsack_exact(
    items: Sequence[Tuple[int, float, int]], budget: int
) -> Set[int]:
    """Exact 0-1 knapsack via dynamic programming.

    O(n * budget) — intended for small instances (tests, ablation);
    raises :class:`PlanError` when the table would exceed ~10^7 cells.
    """
    n = len(items)
    if n * max(budget, 1) > 10_000_000:
        raise PlanError(
            f"exact knapsack instance too large: {n} items x {budget} budget"
        )
    free = {iid for iid, _, c in items if c == 0}
    paid = [(iid, b, c) for iid, b, c in items if c > 0]
    table = np.zeros((len(paid) + 1, budget + 1), dtype=np.float64)
    for i, (_, benefit, cost) in enumerate(paid, start=1):
        prev = table[i - 1]
        row = table[i]
        row[:] = prev
        if cost <= budget:
            np.maximum(
                prev[: budget + 1 - cost] + benefit,
                prev[cost:],
                out=row[cost:],
            )
    chosen: Set[int] = set(free)
    b = budget
    for i in range(len(paid), 0, -1):
        iid, benefit, cost = paid[i - 1]
        if cost <= b and table[i][b] != table[i - 1][b]:
            chosen.add(iid)
            b -= cost
    return chosen


def validate_plan(
    plan: ProtectionPlan,
    module: Module,
    profile: SdcProfile,
) -> List[str]:
    """Check the structural invariants every protection plan must hold.

    Returns a list of human-readable violations (empty = valid):

    * the selected set only names duplicable instructions of ``module``;
    * ``spent`` equals the recomputed dynamic cost of the selection;
    * below level 100, the budget is respected (``spent <= budget``).

    The mutation-testing harness (:mod:`repro.testgen.mutants`) uses
    this as its plan-invariant oracle; a corrupted knapsack must fail
    here even when the resulting program still runs correctly.
    """
    violations: List[str] = []
    duplicable = {i.iid for i in duplicable_instructions(module)}
    stray = plan.selected - duplicable
    if stray:
        violations.append(
            f"selection names {len(stray)} non-duplicable iids "
            f"(e.g. {sorted(stray)[:3]})")
    spent = sum(
        profile.dyn_counts.get(iid, 0) for iid in plan.selected & duplicable
    )
    if spent != plan.spent:
        violations.append(
            f"spent mismatch: plan claims {plan.spent}, "
            f"selection costs {spent}")
    if plan.level < 100 and spent > plan.budget:
        violations.append(
            f"budget exceeded: {spent} > {plan.budget} "
            f"at level {plan.level}")
    return violations


def plan_protection(
    module: Module,
    profile: SdcProfile,
    level: int,
    solver: str = "greedy",
) -> ProtectionPlan:
    """Choose the instructions to duplicate for a protection level.

    ``level`` is the percentage of the full-duplication dynamic-
    instruction budget the plan may spend (30/50/70/100 in the paper).
    """
    if not 0 < level <= 100:
        raise PlanError(f"protection level must be in (0, 100], got {level}")
    candidates = duplicable_instructions(module)
    items = [
        (
            inst.iid,
            float(profile.sdc_counts.get(inst.iid, 0)),
            profile.dyn_counts.get(inst.iid, 0),
        )
        for inst in candidates
    ]
    total_cost = sum(c for _, _, c in items)
    if level == 100:
        selected = {iid for iid, _, _ in items}
        return ProtectionPlan(level, selected, total_cost, total_cost, total_cost)
    budget = (total_cost * level) // 100
    if solver == "greedy":
        selected = knapsack_greedy(items, budget)
    elif solver == "exact":
        selected = knapsack_exact(items, budget)
    else:
        raise PlanError(f"unknown solver {solver!r}")
    spent = sum(c for iid, _, c in items if iid in selected)
    return ProtectionPlan(level, selected, budget, spent, total_cost)


def evaluate_protection(
    built,
    store,
    config=None,
    *,
    layer: str = "ir",
    fault_model: Optional[str] = None,
    dispatch: Optional[str] = None,
):
    """Estimate a built (possibly protected) program's outcome rates by
    section-profile lookup + composition.

    This is how a planner sweep over protection levels becomes
    near-free: each candidate level rebuilds the program, but functions
    whose protected code is unchanged between candidates hash to the
    same section keys, so only genuinely new sections are simulated —
    the rest is a :class:`~repro.fi.compose.SectionProfileStore` lookup
    followed by the weighted composition.  Returns the
    :class:`~repro.fi.compose.ComposedResult`; call ``.summary()`` for
    rates with confidence intervals.
    """
    from ..fi.campaign import CampaignConfig
    from ..fi.compose import run_incremental_campaign

    return run_incremental_campaign(
        built, layer, config or CampaignConfig(), store,
        fault_model=fault_model, dispatch=dispatch,
    )
