"""repro — reproduction of "Demystifying and Mitigating Cross-Layer
Deficiencies of Soft Error Protection in Instruction Duplication"
(SC 2023).

The package builds the paper's entire stack from scratch in Python:

* :mod:`repro.ir`, :mod:`repro.frontend` — a Clang -O0-style compiler
  frontend for the MiniC benchmark language
* :mod:`repro.interp` — the "LLVM level" execution/injection layer
* :mod:`repro.backend`, :mod:`repro.machine` — an x86-flavoured backend
  and simulated CPU, the "assembly level"
* :mod:`repro.protection` — SWIFT-style selective instruction
  duplication, the knapsack planner, and the Flowery mitigation
* :mod:`repro.fi`, :mod:`repro.analysis` — fault-injection campaigns,
  SDC coverage, penetration root-cause classification
* :mod:`repro.benchsuite` — the paper's 16 benchmarks in MiniC
* :mod:`repro.experiments` — one driver per paper table/figure

Quickstart::

    from repro.pipeline import build
    from repro.fi import CampaignConfig, run_asm_campaign

    built = build("crc32", scale="small", level=100, flowery=True)
    result = run_asm_campaign(built.compiled, built.layout,
                              CampaignConfig(n_campaigns=300))
    print(result.summary())
"""

__version__ = "1.0.0"

from .pipeline import BuiltProgram, build, build_from_source  # noqa: F401

__all__ = ["build", "build_from_source", "BuiltProgram", "__version__"]
