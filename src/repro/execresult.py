"""Execution result types shared by the IR interpreter and the machine.

A simulated run ends in one of three ways:

* ``OK``       — ran to completion; output may or may not match golden
* ``DETECTED`` — a duplication/Flowery checker fired (``__detect``)
* ``TRAP``     — the program crashed (segfault, div-by-zero, bad jump,
  stack overflow, timeout); the DUE class of the paper

The mapping to the paper's outcome taxonomy (Benign / SDC / DUE /
Detected) additionally needs the golden output and lives in
:mod:`repro.fi.outcomes`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class RunStatus(enum.Enum):
    OK = "ok"
    DETECTED = "detected"
    TRAP = "trap"


@dataclass
class ExecResult:
    """Outcome of one simulated execution."""

    status: RunStatus
    #: concatenated program output (the bytes SDC detection diffs)
    output: str
    #: total dynamic instructions executed
    dyn_total: int
    #: dynamic instructions that are fault-injection sites
    dyn_injectable: int
    #: trap kind when status is TRAP ("segfault", "step-budget", ...)
    trap_kind: Optional[str] = None
    #: return value of the entry function (None for void)
    return_value: Optional[object] = None
    #: whether a requested injection actually happened
    injected: bool = False
    #: static id of the instruction that received the fault
    injected_iid: Optional[int] = None
    #: per-static-instruction dynamic execution counts (profiling runs)
    per_inst_counts: Optional[Dict[int, int]] = None
    #: free-form extras (layer-specific diagnostics)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.status is RunStatus.OK
