"""Exception hierarchy for the repro package.

Every error raised by the toolchain derives from :class:`ReproError` so
callers can catch toolchain problems without swallowing genuine Python
bugs.  Simulated-program failures (traps) are *not* exceptions of the
host toolchain: they are represented by :class:`SimTrap`, which the
interpreters raise internally and convert into a
:class:`repro.fi.outcomes.Outcome`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all toolchain errors."""


class IRError(ReproError):
    """Malformed IR detected while building or verifying a module."""


class IRTypeError(IRError):
    """An IR operation was applied to values of the wrong type."""


class VerifierError(IRError):
    """Module failed structural verification."""


class ParseError(ReproError):
    """MiniC source (or IR text) failed to parse."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class SemanticError(ParseError):
    """MiniC source is syntactically valid but semantically ill-formed."""


class LoweringError(ReproError):
    """The backend could not lower an IR construct to assembly."""


class PlanError(ReproError):
    """The protection planner received inconsistent inputs."""


class CampaignError(ReproError):
    """A fault-injection campaign was misconfigured."""


class StoreLockTimeout(CampaignError):
    """Advisory-lock acquisition on a shared store exhausted its budget.

    Raised *loudly* by :class:`repro.fi.journal.FileLock` after bounded
    exponential backoff, naming the lock path and the wait budget.
    The shared-store layer (DESIGN §16) catches it at coordination
    points and degrades to private-store mode rather than aborting a
    campaign; anything else propagating it is a genuine failure.
    """


class CodegenCacheError(ReproError):
    """The on-disk codegen cache (``REPRO_CODEGEN_CACHE``) is unusable.

    Raised *loudly* instead of silently falling back to the decoded
    dispatch tier: a benchmark that believes it measured generated code
    but actually measured closures would report a fictitious speedup.
    """


class SimTrap(Exception):
    """A simulated program trapped (the DUE class of outcomes).

    ``kind`` is a short machine-readable string; the taxonomy (see
    DESIGN §11) is ``"segfault"``, ``"div-by-zero"``, ``"bad-jump"``,
    ``"stack-overflow"``, ``"unreachable"``, ``"overflow"``, ``"oom"``,
    the resource budgets ``"step-budget"`` (formerly ``"timeout"``),
    ``"mem-budget"``, ``"output-budget"``, and ``"host-escape"`` (a
    host exception converted at the containment boundary).
    """

    def __init__(self, kind: str, detail: str = ""):
        self.kind = kind
        self.detail = detail
        super().__init__(f"{kind}: {detail}" if detail else kind)


class FaultDetected(Exception):
    """Raised by a checker in a simulated program upon detecting a fault."""

    def __init__(self, where: str = ""):
        self.where = where
        super().__init__(where)


class CheckpointsDone(Exception):
    """Internal control-flow signal, not an error: a checkpointing run
    has delivered its last requested snapshot and may stop early.

    Raised by the decoded simulator drivers and caught by their
    ``run()`` wrappers, which report the partial run as an OK result
    flagged with ``extra["early_stop"]``.
    """
