"""The 16-benchmark suite of the paper's Table 1, in MiniC."""

from .registry import (  # noqa: F401
    BENCHMARKS,
    Benchmark,
    SCALES,
    benchmark_names,
    get_benchmark,
    load_source,
)

__all__ = ["BENCHMARKS", "Benchmark", "SCALES", "benchmark_names",
           "get_benchmark", "load_source"]
