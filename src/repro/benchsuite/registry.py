"""Benchmark registry — the paper's Table 1 suite, re-written in MiniC.

Each benchmark module exposes ``source(scale)`` returning self-contained
MiniC text (input data embedded as deterministic literals, so runs are
reproducible without a filesystem).  Three scales are provided:

* ``tiny``   — unit-test sized (sub-millisecond runs)
* ``small``  — default for fault-injection campaigns (a few thousand to
  a few tens of thousands of dynamic assembly instructions)
* ``medium`` — for Table 1 dynamic-instruction accounting

The paper's inputs produce millions-to-billions of dynamic instructions
on native hardware; pure-Python simulation scales these down (see
DESIGN.md substitution table).  Kernel structure and instruction mix —
what the penetration distribution actually depends on — are preserved.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import ReproError

__all__ = ["Benchmark", "BENCHMARKS", "get_benchmark", "benchmark_names",
           "load_source"]


@dataclass(frozen=True)
class Benchmark:
    name: str
    suite: str
    domain: str
    module: str
    #: dynamic instruction count reported in the paper's Table 1 (millions)
    paper_di_millions: float


BENCHMARKS: Dict[str, Benchmark] = {
    b.name: b
    for b in [
        Benchmark("backprop", "Rodinia", "Machine Learning",
                  "repro.benchsuite.programs.backprop", 148.20),
        Benchmark("bfs", "Rodinia", "Graph Algorithm",
                  "repro.benchsuite.programs.bfs", 527.92),
        Benchmark("pathfinder", "Rodinia", "Dynamic Programming",
                  "repro.benchsuite.programs.pathfinder", 0.6),
        Benchmark("lud", "Rodinia", "Linear Algebra",
                  "repro.benchsuite.programs.lud", 59.16),
        Benchmark("needle", "Rodinia", "Dynamic Programming",
                  "repro.benchsuite.programs.needle", 593.39),
        Benchmark("knn", "Rodinia", "Machine Learning",
                  "repro.benchsuite.programs.knn", 206.44),
        Benchmark("ep", "NPB", "Parallel Computing",
                  "repro.benchsuite.programs.ep", 4904.50),
        Benchmark("cg", "NPB", "Gradient Algorithm",
                  "repro.benchsuite.programs.cg", 721.95),
        Benchmark("is", "NPB", "Sort Algorithm",
                  "repro.benchsuite.programs.is_sort", 43.97),
        Benchmark("fft2", "MiBench", "Signal Processing",
                  "repro.benchsuite.programs.fft2", 3.24),
        Benchmark("quicksort", "MiBench", "Sort Algorithm",
                  "repro.benchsuite.programs.quicksort", 1.98),
        Benchmark("basicmath", "MiBench", "Mathematical Calculations",
                  "repro.benchsuite.programs.basicmath", 2.80),
        Benchmark("susan", "MiBench", "Image Recognition",
                  "repro.benchsuite.programs.susan", 42.30),
        Benchmark("crc32", "MiBench", "Error Detection",
                  "repro.benchsuite.programs.crc32", 21.90),
        Benchmark("stringsearch", "MiBench", "Comparison Algorithm",
                  "repro.benchsuite.programs.stringsearch", 2.60),
        Benchmark("patricia", "MiBench", "Data Structure",
                  "repro.benchsuite.programs.patricia", 4.96),
    ]
}

SCALES = ("tiny", "small", "medium")


def benchmark_names() -> List[str]:
    return list(BENCHMARKS.keys())


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None


def load_source(name: str, scale: str = "small") -> str:
    """MiniC source text for a benchmark at a given scale."""
    if scale not in SCALES:
        raise ReproError(f"unknown scale {scale!r}; available: {SCALES}")
    bench = get_benchmark(name)
    module = importlib.import_module(bench.module)
    return module.source(scale)
