"""Stringsearch (MiBench) — Boyer-Moore-Horspool substring search.

Bad-character table construction + the skip-loop search over an
embedded text, for several patterns — the comparison-heavy kernel
whose coverage gap is the paper's worst case (82%).
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_TEXTS = {
    "tiny": ("the quick brown fox", ["quick", "fox", "dog"]),
    "small": (
        "we hold these truths to be self evident that all men are "
        "created equal and endowed with certain unalienable rights",
        ["truths", "rights", "liberty", "equal"],
    ),
    "medium": (
        ("four score and seven years ago our fathers brought forth on this "
         "continent a new nation conceived in liberty and dedicated to the "
         "proposition that all men are created equal now we are engaged in "
         "a great civil war testing whether that nation can long endure"),
        ["nation", "liberty", "conceived", "endure", "fathers", "zebra"],
    ),
}


def source(scale: str = "small") -> str:
    text, patterns = _TEXTS[scale]
    text_codes = [ord(c) for c in text]
    decls = [int_array_decl("text", text_codes)]
    pat_offsets = [0]
    pat_codes = []
    for p in patterns:
        pat_codes.extend(ord(c) for c in p)
        pat_offsets.append(len(pat_codes))
    decls.append(int_array_decl("patterns", pat_codes))
    decls.append(int_array_decl("pat_offsets", pat_offsets))
    decl_text = "\n".join(decls)
    return f"""
const int TEXTLEN = {len(text_codes)};
const int NPATTERNS = {len(patterns)};

{decl_text}

int skip[128];

int search(int pstart, int plen) {{
    // Boyer-Moore-Horspool
    for (int c = 0; c < 128; c++) {{ skip[c] = plen; }}
    for (int k = 0; k < plen - 1; k++) {{
        skip[patterns[pstart + k]] = plen - k - 1;
    }}
    int pos = 0;
    while (pos <= TEXTLEN - plen) {{
        int j = plen - 1;
        while (j >= 0 && text[pos + j] == patterns[pstart + j]) {{
            j--;
        }}
        if (j < 0) {{ return pos; }}
        pos += skip[text[pos + plen - 1]];
    }}
    return -1;
}}

int main() {{
    for (int p = 0; p < NPATTERNS; p++) {{
        int start = pat_offsets[p];
        int len = pat_offsets[p + 1] - start;
        print(search(start, len));
    }}
    return 0;
}}
"""
