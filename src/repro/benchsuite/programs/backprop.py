"""Backprop (Rodinia) — one training step of a 2-layer MLP.

Forward pass with a rational sigmoid approximation, output error,
backward pass updating both weight matrices — the same compute
structure (dense mat-vec + elementwise nonlinearity + outer-product
update) as the Rodinia kernel, scaled down.
"""

from __future__ import annotations

from ._data import float_array_decl, rng

_SIZES = {"tiny": (4, 3, 2), "small": (8, 6, 3), "medium": (16, 12, 4)}


def source(scale: str = "small") -> str:
    n_in, n_hid, n_out = _SIZES[scale]
    g = rng(101)
    x = g.uniform(-1, 1, n_in)
    w1 = g.uniform(-0.5, 0.5, n_in * n_hid)
    w2 = g.uniform(-0.5, 0.5, n_hid * n_out)
    target = g.uniform(0, 1, n_out)
    return f"""
const int NIN = {n_in};
const int NHID = {n_hid};
const int NOUT = {n_out};

{float_array_decl("x", x)}
{float_array_decl("w1", w1)}
{float_array_decl("w2", w2)}
{float_array_decl("target", target)}

float hidden[{n_hid}];
float output[{n_out}];
float delta_out[{n_out}];
float delta_hid[{n_hid}];

float squash(float v) {{
    // rational sigmoid approximation (Rodinia uses expf; keep it
    // algebraic so both layers agree bit-for-bit)
    if (v < 0.0) {{ return 1.0 - 1.0 / (1.0 + fabs(v) + v * v * 0.5); }}
    return 1.0 / (1.0 + fabs(v) + v * v * 0.5);
}}

void forward() {{
    for (int j = 0; j < NHID; j++) {{
        float sum = 0.0;
        for (int i = 0; i < NIN; i++) {{
            sum += x[i] * w1[i * NHID + j];
        }}
        hidden[j] = squash(sum);
    }}
    for (int k = 0; k < NOUT; k++) {{
        float sum = 0.0;
        for (int j = 0; j < NHID; j++) {{
            sum += hidden[j] * w2[j * NOUT + k];
        }}
        output[k] = squash(sum);
    }}
}}

void backward() {{
    for (int k = 0; k < NOUT; k++) {{
        float o = output[k];
        delta_out[k] = o * (1.0 - o) * (target[k] - o);
    }}
    for (int j = 0; j < NHID; j++) {{
        float sum = 0.0;
        for (int k = 0; k < NOUT; k++) {{
            sum += delta_out[k] * w2[j * NOUT + k];
        }}
        float h = hidden[j];
        delta_hid[j] = h * (1.0 - h) * sum;
    }}
    float eta = 0.3;
    for (int j = 0; j < NHID; j++) {{
        for (int k = 0; k < NOUT; k++) {{
            w2[j * NOUT + k] += eta * delta_out[k] * hidden[j];
        }}
    }}
    for (int i = 0; i < NIN; i++) {{
        for (int j = 0; j < NHID; j++) {{
            w1[i * NHID + j] += eta * delta_hid[j] * x[i];
        }}
    }}
}}

int main() {{
    forward();
    backward();
    forward();
    float err = 0.0;
    for (int k = 0; k < NOUT; k++) {{
        float d = target[k] - output[k];
        err += d * d;
        print(output[k]);
    }}
    print(err);
    return 0;
}}
"""
