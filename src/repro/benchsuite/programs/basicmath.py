"""Basicmath (MiBench) — cubic roots, integer square roots, angle
conversions.

The MiBench kernel solves cubics (Cardano), computes isqrt by bit
shifting and converts degrees to radians; all three parts appear here
with deterministic inputs.
"""

from __future__ import annotations

from ._data import float_array_decl, rng

_SIZES = {"tiny": 3, "small": 8, "medium": 24}


def source(scale: str = "small") -> str:
    n = _SIZES[scale]
    g = rng(121)
    coeff_b = g.uniform(-5, 5, n)
    coeff_c = g.uniform(-10, 10, n)
    coeff_d = g.uniform(-20, 20, n)
    return f"""
const int N = {n};

{float_array_decl("cb", coeff_b)}
{float_array_decl("cc", coeff_c)}
{float_array_decl("cd", coeff_d)}

int isqrt(int x) {{
    // bit-by-bit integer square root (MiBench's usqrt)
    int root = 0;
    int bit = 1 << 30;
    while (bit > x) {{ bit = bit >> 2; }}
    while (bit != 0) {{
        if (x >= root + bit) {{
            x -= root + bit;
            root = (root >> 1) + bit;
        }} else {{
            root = root >> 1;
        }}
        bit = bit >> 2;
    }}
    return root;
}}

int main() {{
    float pi = 3.14159265358979;
    // cubic x^3 + b x^2 + c x + d: count real roots via discriminant
    for (int i = 0; i < N; i++) {{
        float b = cb[i];
        float c = cc[i];
        float d = cd[i];
        float q = (3.0 * c - b * b) / 9.0;
        float r = (9.0 * b * c - 27.0 * d - 2.0 * b * b * b) / 54.0;
        float disc = q * q * q + r * r;
        if (disc > 0.0) {{
            float s = r + sqrt(disc);
            float t = r - sqrt(disc);
            float cube = 1.0 / 3.0;
            float sr = pow(fabs(s), cube);
            if (s < 0.0) {{ sr = -sr; }}
            float tr = pow(fabs(t), cube);
            if (t < 0.0) {{ tr = -tr; }}
            print(sr + tr - b / 3.0);
        }} else {{
            print(disc);
        }}
    }}
    for (int x = 1; x <= N; x++) {{
        print(isqrt(x * x * 7 + x));
    }}
    for (int deg = 0; deg <= 180; deg += 60) {{
        print(float(deg) * pi / 180.0);
    }}
    return 0;
}}
"""
