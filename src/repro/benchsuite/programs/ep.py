"""EP (NAS Parallel Benchmarks) — embarrassingly parallel Gaussian pairs.

A linear-congruential stream feeds the Marsaglia polar acceptance test;
accepted pairs are binned by annulus exactly like NPB's EP, with the
sums of deviates as the verification output.
"""

from __future__ import annotations

_SIZES = {"tiny": 24, "small": 96, "medium": 320}


def source(scale: str = "small") -> str:
    n_pairs = _SIZES[scale]
    return f"""
const int NPAIRS = {n_pairs};

int counts[10];

int lcg_state = 271828183;

float lcg_next() {{
    // 31-bit LCG (same constants as C rand) scaled to [0, 1)
    lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
    if (lcg_state < 0) {{ lcg_state = -lcg_state; }}
    return float(lcg_state) / 2147483648.0;
}}

int main() {{
    float sx = 0.0;
    float sy = 0.0;
    int accepted = 0;
    for (int i = 0; i < NPAIRS; i++) {{
        float x = 2.0 * lcg_next() - 1.0;
        float y = 2.0 * lcg_next() - 1.0;
        float t = x * x + y * y;
        if (t <= 1.0 && t > 0.0) {{
            float factor = sqrt(-2.0 * log(t) / t);
            float gx = x * factor;
            float gy = y * factor;
            sx += gx;
            sy += gy;
            float ax = fabs(gx);
            float ay = fabs(gy);
            float m = ax;
            if (ay > m) {{ m = ay; }}
            int bin = int(m);
            if (bin > 9) {{ bin = 9; }}
            counts[bin]++;
            accepted++;
        }}
    }}
    print(accepted);
    print(sx);
    print(sy);
    for (int b = 0; b < 10; b++) {{ print(counts[b]); }}
    return 0;
}}
"""
