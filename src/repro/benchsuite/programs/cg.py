"""CG (NAS Parallel Benchmarks) — conjugate gradient on a sparse SPD matrix.

A random symmetric diagonally dominant matrix in CSR form, a fixed
number of CG iterations, and the residual norm as verification — NPB
CG's structure (sparse mat-vec + dot products + axpys) at toy scale.
"""

from __future__ import annotations

from ._data import float_array_decl, int_array_decl, rng

_SIZES = {"tiny": (5, 2), "small": (10, 3), "medium": (24, 4)}


def source(scale: str = "small") -> str:
    n, nnz_row = _SIZES[scale]
    g = rng(707)
    import numpy as np

    dense = np.zeros((n, n))
    for i in range(n):
        cols = g.choice(n, size=min(nnz_row, n), replace=False)
        for j in cols:
            v = float(g.uniform(-1, 1))
            dense[i, j] += v
            dense[j, i] += v
    for i in range(n):
        dense[i, i] = abs(dense[i]).sum() + 1.0
    # CSR
    values, colidx, offsets = [], [], [0]
    for i in range(n):
        for j in range(n):
            if dense[i, j] != 0.0:
                values.append(dense[i, j])
                colidx.append(j)
        offsets.append(len(values))
    b = g.uniform(0.0, 1.0, n)
    iters = {"tiny": 3, "small": 6, "medium": 10}[
        "tiny" if n == 5 else ("small" if n == 10 else "medium")
    ]
    return f"""
const int N = {n};
const int ITERS = {iters};

{float_array_decl("values", values)}
{int_array_decl("colidx", colidx)}
{int_array_decl("offsets", offsets)}
{float_array_decl("rhs", b)}

float x[{n}];
float r[{n}];
float p[{n}];
float q[{n}];

void spmv(float vec[], float out[]) {{
    for (int i = 0; i < N; i++) {{
        float sum = 0.0;
        for (int e = offsets[i]; e < offsets[i + 1]; e++) {{
            sum += values[e] * vec[colidx[e]];
        }}
        out[i] = sum;
    }}
}}

float dot(float u[], float v[]) {{
    float sum = 0.0;
    for (int i = 0; i < N; i++) {{ sum += u[i] * v[i]; }}
    return sum;
}}

int main() {{
    for (int i = 0; i < N; i++) {{
        x[i] = 0.0;
        r[i] = rhs[i];
        p[i] = rhs[i];
    }}
    float rho = dot(r, r);
    for (int it = 0; it < ITERS; it++) {{
        spmv(p, q);
        float alpha = rho / dot(p, q);
        for (int i = 0; i < N; i++) {{
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }}
        float rho_new = dot(r, r);
        float beta = rho_new / rho;
        rho = rho_new;
        for (int i = 0; i < N; i++) {{
            p[i] = r[i] + beta * p[i];
        }}
    }}
    print(sqrt(rho));
    float xsum = 0.0;
    for (int i = 0; i < N; i++) {{ xsum += x[i]; }}
    print(xsum);
    return 0;
}}
"""
