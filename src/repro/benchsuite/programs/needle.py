"""Needle (Rodinia) — Needleman-Wunsch sequence alignment scoring.

Fills the full DP score matrix with affine-free gap penalty and a
random substitution reference, exactly the Rodinia access pattern
(anti-diagonal dependency through a row-major table).
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": 5, "small": 12, "medium": 28}


def source(scale: str = "small") -> str:
    n = _SIZES[scale]
    g = rng(505)
    seq1 = g.integers(0, 4, n)
    seq2 = g.integers(0, 4, n)
    blosum = g.integers(-4, 6, 16)
    dim = n + 1
    return f"""
const int N = {n};
const int DIM = {dim};
const int PENALTY = 2;

{int_array_decl("seq1", seq1)}
{int_array_decl("seq2", seq2)}
{int_array_decl("blosum", blosum)}

int table[{dim * dim}];

int max3(int a, int b, int c) {{
    int m = a;
    if (b > m) {{ m = b; }}
    if (c > m) {{ m = c; }}
    return m;
}}

int main() {{
    for (int i = 0; i < DIM; i++) {{
        table[i * DIM] = -i * PENALTY;
        table[i] = -i * PENALTY;
    }}
    for (int i = 1; i < DIM; i++) {{
        for (int j = 1; j < DIM; j++) {{
            int match = table[(i - 1) * DIM + (j - 1)]
                + blosum[seq1[i - 1] * 4 + seq2[j - 1]];
            int del = table[(i - 1) * DIM + j] - PENALTY;
            int ins = table[i * DIM + (j - 1)] - PENALTY;
            table[i * DIM + j] = max3(match, del, ins);
        }}
    }}
    print(table[N * DIM + N]);
    int checksum = 0;
    for (int i = 0; i < DIM; i++) {{
        checksum += table[i * DIM + i];
    }}
    print(checksum);
    return 0;
}}
"""
