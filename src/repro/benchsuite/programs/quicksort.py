"""Quicksort (MiBench qsort) — recursive quicksort with median-of-three.

Recursive partition-exchange over random integers; recursion exercises
the call/return machinery (the paper's call and mapping penetrations).
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": 10, "small": 32, "medium": 128}


def source(scale: str = "small") -> str:
    n = _SIZES[scale]
    g = rng(111)
    data = g.integers(-1000, 1000, n)
    return f"""
const int N = {n};

{int_array_decl("data", data)}

void sort_range(int lo, int hi) {{
    if (lo >= hi) {{ return; }}
    int mid = lo + (hi - lo) / 2;
    // median-of-three pivot selection
    int a = data[lo];
    int b = data[mid];
    int c = data[hi];
    int pivot = a;
    if ((a <= b && b <= c) || (c <= b && b <= a)) {{ pivot = b; }}
    if ((a <= c && c <= b) || (b <= c && c <= a)) {{ pivot = c; }}
    int i = lo;
    int j = hi;
    while (i <= j) {{
        while (data[i] < pivot) {{ i++; }}
        while (data[j] > pivot) {{ j--; }}
        if (i <= j) {{
            int t = data[i];
            data[i] = data[j];
            data[j] = t;
            i++;
            j--;
        }}
    }}
    sort_range(lo, j);
    sort_range(i, hi);
}}

int main() {{
    sort_range(0, N - 1);
    int checksum = 0;
    for (int i = 0; i < N; i++) {{
        print(data[i]);
        checksum += data[i] * (i + 1);
    }}
    print(checksum);
    return 0;
}}
"""
