"""IS (NAS Parallel Benchmarks) — integer sort via bucketed counting.

Key histogram, prefix sum, rank assignment — NPB IS's counting-sort
structure with a partial-verification probe of ranked keys.
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": (10, 8), "small": (40, 16), "medium": (160, 32)}


def source(scale: str = "small") -> str:
    n, max_key = _SIZES[scale]
    g = rng(808)
    keys = g.integers(0, max_key, n)
    return f"""
const int N = {n};
const int MAXKEY = {max_key};

{int_array_decl("keys", keys)}

int histogram[{max_key}];
int rank_of[{n}];

int main() {{
    for (int k = 0; k < MAXKEY; k++) {{ histogram[k] = 0; }}
    for (int i = 0; i < N; i++) {{
        histogram[keys[i]]++;
    }}
    for (int k = 1; k < MAXKEY; k++) {{
        histogram[k] += histogram[k - 1];
    }}
    for (int i = N - 1; i >= 0; i--) {{
        histogram[keys[i]]--;
        rank_of[i] = histogram[keys[i]];
    }}
    int checksum = 0;
    for (int i = 0; i < N; i++) {{
        checksum += rank_of[i] * (i + 1);
        print(rank_of[i]);
    }}
    print(checksum);
    return 0;
}}
"""
