"""Deterministic input-data generation helpers for the benchmark suite."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["rng", "fmt_ints", "fmt_floats", "int_array_decl",
           "float_array_decl"]


def rng(seed: int) -> np.random.Generator:
    """Seeded generator; every benchmark derives its data from one."""
    return np.random.default_rng(seed)


def fmt_ints(values: Iterable[int]) -> str:
    return ", ".join(str(int(v)) for v in values)


def fmt_floats(values: Iterable[float]) -> str:
    return ", ".join(repr(round(float(v), 6)) for v in values)


def int_array_decl(name: str, values: Sequence[int]) -> str:
    return f"int {name}[{len(values)}] = {{{fmt_ints(values)}}};"


def float_array_decl(name: str, values: Sequence[float]) -> str:
    return f"float {name}[{len(values)}] = {{{fmt_floats(values)}}};"
