"""kNN (Rodinia "nn") — k nearest neighbours by Euclidean distance.

Distance sweep over random 2-D records followed by k rounds of
selection, the same compute/compare mix as the Rodinia hurricane-record
kernel.
"""

from __future__ import annotations

from ._data import float_array_decl, rng

_SIZES = {"tiny": (8, 2), "small": (24, 4), "medium": (80, 5)}


def source(scale: str = "small") -> str:
    n, k = _SIZES[scale]
    g = rng(606)
    lat = g.uniform(0.0, 90.0, n)
    lng = g.uniform(0.0, 180.0, n)
    return f"""
const int N = {n};
const int K = {k};

{float_array_decl("lat", lat)}
{float_array_decl("lng", lng)}

float dist[{n}];
int taken[{n}];

int main() {{
    float qlat = 45.0;
    float qlng = 90.0;
    for (int i = 0; i < N; i++) {{
        float dx = lat[i] - qlat;
        float dy = lng[i] - qlng;
        dist[i] = sqrt(dx * dx + dy * dy);
        taken[i] = 0;
    }}
    for (int round = 0; round < K; round++) {{
        int best = -1;
        float bestd = 1.0e18;
        for (int i = 0; i < N; i++) {{
            if (taken[i] == 0 && dist[i] < bestd) {{
                bestd = dist[i];
                best = i;
            }}
        }}
        taken[best] = 1;
        print(best);
        print(bestd);
    }}
    return 0;
}}
"""
