"""Pathfinder (Rodinia) — minimum-cost path through a grid, row by row.

Classic dynamic program: each row's cost is the cell weight plus the
minimum of the three parents above, double-buffered exactly like the
Rodinia kernel.
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": (4, 6), "small": (8, 16), "medium": (16, 40)}


def source(scale: str = "small") -> str:
    rows, cols = _SIZES[scale]
    g = rng(303)
    wall = g.integers(1, 10, rows * cols)
    return f"""
const int ROWS = {rows};
const int COLS = {cols};

{int_array_decl("wall", wall)}

int src[{cols}];
int dst[{cols}];

int min2(int a, int b) {{
    if (a < b) {{ return a; }}
    return b;
}}

int main() {{
    for (int j = 0; j < COLS; j++) {{ src[j] = wall[j]; }}
    for (int r = 1; r < ROWS; r++) {{
        for (int j = 0; j < COLS; j++) {{
            int best = src[j];
            if (j > 0) {{ best = min2(best, src[j - 1]); }}
            if (j < COLS - 1) {{ best = min2(best, src[j + 1]); }}
            dst[j] = wall[r * COLS + j] + best;
        }}
        for (int j = 0; j < COLS; j++) {{ src[j] = dst[j]; }}
    }}
    int best = src[0];
    for (int j = 1; j < COLS; j++) {{ best = min2(best, src[j]); }}
    for (int j = 0; j < COLS; j++) {{ print(src[j]); }}
    print(best);
    return 0;
}}
"""
