"""Susan (MiBench) — SUSAN-style corner response on a grayscale image.

For each interior pixel, the USAN area (neighbours within a brightness
threshold) is accumulated over a 3x3 mask and thresholded into a corner
response map — the comparison-dense image kernel of MiBench susan.
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": (5, 5), "small": (9, 9), "medium": (18, 18)}


def source(scale: str = "small") -> str:
    h, w = _SIZES[scale]
    g = rng(131)
    img = g.integers(0, 256, h * w)
    return f"""
const int H = {h};
const int W = {w};
const int BT = 27;
const int GEOM = 6;

{int_array_decl("img", img)}

int response[{h * w}];

int main() {{
    int corners = 0;
    for (int y = 1; y < H - 1; y++) {{
        for (int x = 1; x < W - 1; x++) {{
            int center = img[y * W + x];
            int usan = 0;
            for (int dy = -1; dy <= 1; dy++) {{
                for (int dx = -1; dx <= 1; dx++) {{
                    if (dy != 0 || dx != 0) {{
                        int p = img[(y + dy) * W + (x + dx)];
                        int diff = p - center;
                        if (diff < 0) {{ diff = -diff; }}
                        if (diff < BT) {{ usan++; }}
                    }}
                }}
            }}
            int resp = 0;
            if (usan < GEOM) {{
                resp = GEOM - usan;
                corners++;
            }}
            response[y * W + x] = resp;
        }}
    }}
    int checksum = 0;
    for (int i = 0; i < H * W; i++) {{
        checksum += response[i] * (i % 13 + 1);
    }}
    print(corners);
    print(checksum);
    return 0;
}}
"""
