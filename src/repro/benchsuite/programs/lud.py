"""LUD (Rodinia) — in-place LU decomposition (Doolittle, no pivoting).

The matrix is generated diagonally dominant so the factorisation is
well-conditioned; the checksum is the trace of L+U plus a probe of the
factors, mirroring how Rodinia validates.
"""

from __future__ import annotations

from ._data import float_array_decl, rng

_SIZES = {"tiny": 3, "small": 6, "medium": 12}


def source(scale: str = "small") -> str:
    n = _SIZES[scale]
    g = rng(404)
    a = g.uniform(-1.0, 1.0, (n, n))
    for i in range(n):
        a[i, i] = float(n) + abs(a[i]).sum()
    return f"""
const int N = {n};

{float_array_decl("a", a.flatten())}

int main() {{
    for (int k = 0; k < N; k++) {{
        for (int j = k; j < N; j++) {{
            float sum = a[k * N + j];
            for (int p = 0; p < k; p++) {{
                sum -= a[k * N + p] * a[p * N + j];
            }}
            a[k * N + j] = sum;
        }}
        for (int i = k + 1; i < N; i++) {{
            float sum = a[i * N + k];
            for (int p = 0; p < k; p++) {{
                sum -= a[i * N + p] * a[p * N + k];
            }}
            a[i * N + k] = sum / a[k * N + k];
        }}
    }}
    float trace = 0.0;
    for (int i = 0; i < N; i++) {{ trace += a[i * N + i]; }}
    print(trace);
    float probe = 0.0;
    for (int i = 0; i < N; i++) {{
        for (int j = 0; j < N; j++) {{
            probe += a[i * N + j] * float(i - j);
        }}
    }}
    print(probe);
    return 0;
}}
"""
