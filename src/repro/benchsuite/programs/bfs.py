"""BFS (Rodinia) — breadth-first search over a CSR graph.

Random sparse digraph in CSR form (offsets + edge array), explicit
frontier queue, per-node cost (depth) output — the Rodinia kernel's
memory-bound pointer-chasing behaviour, scaled down.
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": (12, 2), "small": (48, 3), "medium": (160, 4)}


def source(scale: str = "small") -> str:
    n_nodes, avg_deg = _SIZES[scale]
    g = rng(202)
    edges = []
    offsets = [0]
    for u in range(n_nodes):
        deg = int(g.integers(1, avg_deg * 2 + 1))
        targets = sorted(set(int(v) for v in g.integers(0, n_nodes, deg)))
        edges.extend(targets)
        offsets.append(len(edges))
    return f"""
const int NNODES = {n_nodes};
const int NEDGES = {len(edges)};

{int_array_decl("offsets", offsets)}
{int_array_decl("edges", edges)}

int cost[{n_nodes}];
int queue[{n_nodes * 4}];

int main() {{
    for (int i = 0; i < NNODES; i++) {{ cost[i] = -1; }}
    int head = 0;
    int tail = 0;
    cost[0] = 0;
    queue[tail] = 0;
    tail++;
    while (head < tail) {{
        int u = queue[head];
        head++;
        int start = offsets[u];
        int end = offsets[u + 1];
        for (int e = start; e < end; e++) {{
            int v = edges[e];
            if (cost[v] < 0) {{
                cost[v] = cost[u] + 1;
                queue[tail] = v;
                tail++;
            }}
        }}
    }}
    int reached = 0;
    int sum = 0;
    for (int i = 0; i < NNODES; i++) {{
        if (cost[i] >= 0) {{ reached++; sum += cost[i]; }}
        print(cost[i]);
    }}
    print(reached);
    print(sum);
    return 0;
}}
"""
