"""FFT2 (MiBench) — iterative radix-2 FFT over a real signal.

Bit-reversal permutation plus butterfly stages with sin/cos twiddles,
printing the magnitude spectrum — the MiBench fft kernel's structure.
"""

from __future__ import annotations

import math

from ._data import float_array_decl, rng

_SIZES = {"tiny": 8, "small": 16, "medium": 64}


def source(scale: str = "small") -> str:
    n = _SIZES[scale]
    g = rng(909)
    signal = [
        math.sin(2 * math.pi * 3 * i / n) + 0.5 * float(g.uniform(-1, 1))
        for i in range(n)
    ]
    logn = int(math.log2(n))
    return f"""
const int N = {n};
const int LOGN = {logn};

{float_array_decl("signal", signal)}

float re[{n}];
float im[{n}];

int main() {{
    // bit-reversal permutation
    for (int i = 0; i < N; i++) {{
        int rev = 0;
        int v = i;
        for (int b = 0; b < LOGN; b++) {{
            rev = (rev << 1) | (v & 1);
            v = v >> 1;
        }}
        re[rev] = signal[i];
        im[rev] = 0.0;
    }}
    // butterfly stages
    float pi = 3.14159265358979;
    for (int s = 1; s <= LOGN; s++) {{
        int m = 1 << s;
        int half = m >> 1;
        float ang = -2.0 * pi / float(m);
        for (int k = 0; k < N; k += m) {{
            for (int j = 0; j < half; j++) {{
                float wr = cos(ang * float(j));
                float wi = sin(ang * float(j));
                int top = k + j;
                int bot = k + j + half;
                float tr = wr * re[bot] - wi * im[bot];
                float ti = wr * im[bot] + wi * re[bot];
                re[bot] = re[top] - tr;
                im[bot] = im[top] - ti;
                re[top] = re[top] + tr;
                im[top] = im[top] + ti;
            }}
        }}
    }}
    for (int i = 0; i < N / 2; i++) {{
        print(sqrt(re[i] * re[i] + im[i] * im[i]));
    }}
    return 0;
}}
"""
