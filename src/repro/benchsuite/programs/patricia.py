"""Patricia (MiBench) — PATRICIA trie insertion and lookup.

An array-backed binary radix trie over 16-bit keys (IP-prefix style):
insert a batch of keys choosing branch bits from the first differing
bit, then look up a mix of hits and misses — the pointer-chasing,
call-dense behaviour of MiBench patricia.
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": (6, 5), "small": (18, 14), "medium": (56, 40)}


def source(scale: str = "small") -> str:
    n_insert, n_lookup = _SIZES[scale]
    g = rng(151)
    keys = sorted(set(int(k) for k in g.integers(0, 1 << 16, n_insert)))
    lookups = [int(k) for k in g.integers(0, 1 << 16, n_lookup // 2)]
    lookups += [keys[int(i)] for i in g.integers(0, len(keys), n_lookup - len(lookups))]
    max_nodes = 2 * len(keys) + 2
    return f"""
const int NKEYS = {len(keys)};
const int NLOOKUPS = {len(lookups)};
const int MAXNODES = {max_nodes};

{int_array_decl("keys", keys)}
{int_array_decl("lookups", lookups)}

// node arrays: key, branch bit, left child, right child
int node_key[{max_nodes}];
int node_bit[{max_nodes}];
int node_left[{max_nodes}];
int node_right[{max_nodes}];
int n_nodes = 0;

int bit_of(int key, int b) {{
    return (key >> b) & 1;
}}

int new_node(int key, int b) {{
    node_key[n_nodes] = key;
    node_bit[n_nodes] = b;
    node_left[n_nodes] = -1;
    node_right[n_nodes] = -1;
    n_nodes++;
    return n_nodes - 1;
}}

int find_leaf(int root, int key) {{
    int cur = root;
    while (node_left[cur] >= 0 || node_right[cur] >= 0) {{
        if (bit_of(key, node_bit[cur]) == 1) {{
            if (node_right[cur] < 0) {{ break; }}
            cur = node_right[cur];
        }} else {{
            if (node_left[cur] < 0) {{ break; }}
            cur = node_left[cur];
        }}
    }}
    return cur;
}}

int insert(int root, int key) {{
    int leaf = find_leaf(root, key);
    if (node_key[leaf] == key) {{ return root; }}
    int diff = node_key[leaf] ^ key;
    int b = 15;
    while (b > 0 && bit_of(diff, b) == 0) {{ b--; }}
    int fresh = new_node(key, b);
    // re-descend and splice at the first node testing a lower bit
    int parent = -1;
    int cur = root;
    int went_right = 0;
    while ((node_left[cur] >= 0 || node_right[cur] >= 0)
           && node_bit[cur] > b) {{
        int go_right = bit_of(key, node_bit[cur]);
        int next = node_left[cur];
        if (go_right == 1) {{ next = node_right[cur]; }}
        if (next < 0) {{ break; }}
        parent = cur;
        went_right = go_right;
        cur = next;
    }}
    if (bit_of(key, b) == 1) {{
        node_right[fresh] = -1;
        node_left[fresh] = cur;
    }} else {{
        node_left[fresh] = -1;
        node_right[fresh] = cur;
    }}
    if (parent < 0) {{ return fresh; }}
    if (went_right == 1) {{ node_right[parent] = fresh; }}
    else {{ node_left[parent] = fresh; }}
    return root;
}}

int lookup(int root, int key) {{
    int leaf = find_leaf(root, key);
    if (node_key[leaf] == key) {{ return 1; }}
    return 0;
}}

int main() {{
    int root = new_node(keys[0], 15);
    for (int i = 1; i < NKEYS; i++) {{
        root = insert(root, keys[i]);
    }}
    int hits = 0;
    for (int i = 0; i < NLOOKUPS; i++) {{
        int found = lookup(root, lookups[i]);
        hits += found;
        print(found);
    }}
    print(hits);
    print(n_nodes);
    return 0;
}}
"""
