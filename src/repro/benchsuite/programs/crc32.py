"""CRC32 (MiBench) — bitwise CRC-32 (IEEE polynomial) over a buffer.

The shift-and-xor inner loop over every bit of every byte — the
error-detection kernel MiBench runs over files, applied to an embedded
pseudo-random buffer.
"""

from __future__ import annotations

from ._data import int_array_decl, rng

_SIZES = {"tiny": 6, "small": 24, "medium": 96}


def source(scale: str = "small") -> str:
    n = _SIZES[scale]
    g = rng(141)
    data = g.integers(0, 256, n)
    return f"""
const int N = {n};
const int POLY = 0xEDB88320;
const int MASK32 = 0xFFFFFFFF;

{int_array_decl("data", data)}

int main() {{
    int crc = MASK32;
    for (int i = 0; i < N; i++) {{
        crc = crc ^ data[i];
        for (int bit = 0; bit < 8; bit++) {{
            if ((crc & 1) != 0) {{
                crc = ((crc >> 1) & 0x7FFFFFFF) ^ POLY;
            }} else {{
                crc = (crc >> 1) & 0x7FFFFFFF;
            }}
            crc = crc & MASK32;
        }}
    }}
    print(crc ^ MASK32);
    return 0;
}}
"""
