"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Lets users write IR fixtures directly and round-trips every module the
printer can emit, including protection metadata comments (``dup_of``,
``checker``, ``protected``, ``flowery``), so a protected module can be
serialised and reloaded.

Grammar (exactly the printer's output format)::

    ; module NAME
    @g = [volatile] (global|constant) TYPE (INT | FLOAT | [v, ...] | zeroinitializer)
    define RET @fn(TYPE %a, ...) {
    label:
      %tN = add i64 %t3, i64 7
      store i64 %t4, i64* @g
      condbr i1 %t5, label %then, label %else
      ...
    }
    declare RET @fn(TYPE, ...)
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ParseError
from . import types as T
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
    CAST_OPS,
    FLOAT_BINOPS,
    INT_BINOPS,
)
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, GlobalVariable, Value

__all__ = ["parse_ir", "IRParseError"]


class IRParseError(ParseError):
    pass


_TYPE_RE = re.compile(r"^(i1|i8|i16|i32|i64|f64|void)(\**)$")
_ARRAY_RE = re.compile(r"^\[(\d+) x (.+)\]$")


def _parse_type(text: str, line: int) -> T.Type:
    text = text.strip()
    m = _ARRAY_RE.match(text)
    if m:
        inner = _parse_type(m.group(2), line)
        return T.array(inner, int(m.group(1)))
    stars = 0
    while text.endswith("*"):
        stars += 1
        text = text[:-1]
    m2 = _ARRAY_RE.match(text)
    if m2:
        base: T.Type = T.array(_parse_type(m2.group(2), line),
                               int(m2.group(1)))
    else:
        base = {
            "i1": T.I1, "i8": T.I8, "i16": T.I16, "i32": T.I32,
            "i64": T.I64, "f64": T.F64, "void": T.VOID,
        }.get(text)
        if base is None:
            raise IRParseError(f"unknown type {text!r}", line)
    for _ in range(stars):
        base = T.ptr(base)
    return base


def _split_args(text: str) -> List[str]:
    """Split a comma-separated operand list, respecting brackets."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _FunctionContext:
    def __init__(self, fn: Function):
        self.fn = fn
        self.temps: Dict[int, Instruction] = {}
        self.args = {f"%{a.name}": a for a in fn.args}
        #: (instruction, operand template) fixups resolved after all
        #: blocks exist / all temps are defined
        self.pending: List[Tuple[Instruction, List[Tuple[int, int]]]] = []
        self.block_fixups: List[Tuple[Instruction, str, str]] = []


class IRTextParser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.pos = 0
        self.module = Module("parsed")

    def _error(self, msg: str) -> IRParseError:
        return IRParseError(msg, self.pos)

    # -- top level ---------------------------------------------------------

    def parse(self) -> Module:
        while self.pos < len(self.lines):
            line = self.lines[self.pos].strip()
            self.pos += 1
            if not line:
                continue
            if line.startswith("; module"):
                self.module.name = line[len("; module"):].strip() or "parsed"
                continue
            if line.startswith(";"):
                continue
            if line.startswith("@"):
                self._parse_global(line)
            elif line.startswith("define"):
                self._parse_function(line)
            elif line.startswith("declare"):
                self._parse_declaration(line)
            else:
                raise self._error(f"unexpected top-level line: {line!r}")
        # instructions without results print no %tN, so they lost their
        # ids; hand out fresh ones above every id seen in the text
        from ..utils.ids import IdAllocator

        max_iid = max(
            (i.iid for i in self.module.instructions()), default=0
        )
        self.module._ids = IdAllocator(max_iid + 1)
        self.module.assign_all_iids()
        return self.module

    _GLOBAL_RE = re.compile(
        r"^@(?P<name>[\w.]+) =(?P<vol> volatile)? "
        r"(?P<kind>global|constant) (?P<rest>.+)$"
    )

    def _parse_global(self, line: str) -> None:
        m = self._GLOBAL_RE.match(line)
        if not m:
            raise self._error(f"bad global: {line!r}")
        rest = m.group("rest").strip()
        # the type is everything up to the initializer; initializer is
        # the last space-separated token unless it is a bracket list
        if rest.endswith("zeroinitializer"):
            ty_text = rest[: -len("zeroinitializer")].strip()
            init = None
        elif rest.endswith("]") and " [" in rest:
            ty_text, _, init_text = rest.rpartition(" [")
            init_text = "[" + init_text
            items = _split_args(init_text[1:-1])
            vt = _parse_type(ty_text, self.pos)
            is_float = vt.is_array and vt.flattened_element.is_float
            init = [
                float(x) if is_float else int(x) for x in items if x
            ]
            self.module.global_var(
                m.group("name"), vt, init,
                is_const=m.group("kind") == "constant",
                volatile=bool(m.group("vol")),
            )
            return
        else:
            ty_text, _, init_text = rest.rpartition(" ")
            vt0 = _parse_type(ty_text, self.pos)
            init = (
                float(init_text) if vt0.is_float else int(init_text)
            )
            self.module.global_var(
                m.group("name"), vt0, init,
                is_const=m.group("kind") == "constant",
                volatile=bool(m.group("vol")),
            )
            return
        vt = _parse_type(ty_text, self.pos)
        self.module.global_var(
            m.group("name"), vt, init,
            is_const=m.group("kind") == "constant",
            volatile=bool(m.group("vol")),
        )

    _SIG_RE = re.compile(
        r"^(define|declare) (?P<ret>[^@]+) @(?P<name>[\w.]+)"
        r"\((?P<params>.*)\)(?P<brace> \{)?$"
    )

    def _parse_signature(self, line: str):
        m = self._SIG_RE.match(line.strip())
        if not m:
            raise self._error(f"bad function signature: {line!r}")
        ret = _parse_type(m.group("ret"), self.pos)
        params: List[T.Type] = []
        names: List[str] = []
        for p in _split_args(m.group("params")):
            if not p:
                continue
            ty_text, _, pname = p.rpartition(" %")
            if not ty_text:  # declaration without names
                params.append(_parse_type(p, self.pos))
                names.append("")
            else:
                params.append(_parse_type(ty_text, self.pos))
                names.append(pname)
        return m.group("name"), ret, params, names

    def _parse_declaration(self, line: str) -> None:
        name, ret, params, names = self._parse_signature(line)
        fn = self.module.add_function(name, T.function_type(ret, params))
        for arg, n in zip(fn.args, names):
            if n:
                arg.name = n

    def _parse_function(self, line: str) -> None:
        name, ret, params, names = self._parse_signature(line)
        fn = self.module.add_function(name, T.function_type(ret, params))
        for arg, n in zip(fn.args, names):
            if n:
                arg.name = n
        ctx = _FunctionContext(fn)
        current: Optional[BasicBlock] = None
        while self.pos < len(self.lines):
            raw = self.lines[self.pos]
            self.pos += 1
            line = raw.strip()
            if line == "}":
                break
            if not line or line.startswith(";"):
                continue
            if line.endswith(":") and not raw.startswith(" "):
                label = line[:-1]
                current = BasicBlock(label, fn)
                fn.blocks.append(current)
                continue
            if current is None:
                raise self._error(f"instruction outside a block: {line!r}")
            inst = self._parse_instruction(line, ctx)
            inst.parent = current
            current.instructions.append(inst)
        # resolve block references
        for inst, then_label, else_label in ctx.block_fixups:
            if isinstance(inst, Br):
                inst.target = fn.block_by_label(then_label)
            else:
                inst.then_block = fn.block_by_label(then_label)
                inst.else_block = fn.block_by_label(else_label)

    # -- instructions ----------------------------------------------------------

    _ATTR_RE = re.compile(r"\s*;\s*(.*)$")

    def _split_attrs(self, line: str) -> Tuple[str, Dict]:
        attrs: Dict = {}
        if ";" in line:
            body, _, tail = line.partition(";")
            for item in tail.split(","):
                item = item.strip()
                if not item:
                    continue
                if item.startswith("dup_of=%t"):
                    attrs["dup_of"] = int(item[len("dup_of=%t"):])
                elif item == "checker":
                    attrs["checker"] = True
                elif item == "protected":
                    attrs["protected"] = True
                elif item.startswith("flowery="):
                    attrs["flowery"] = item[len("flowery="):]
            return body.strip(), attrs
        return line.strip(), attrs

    def _value(self, text: str, ctx: _FunctionContext,
               ty: Optional[T.Type] = None) -> Value:
        """Operand of the form 'TYPE ref' or a bare ref/literal with a
        context-supplied type."""
        text = text.strip()
        # 'TYPE %ref' / 'TYPE @ref' — the type may itself contain spaces
        # ([N x T]), so split at the last %/@ token
        for marker in (" %", " @"):
            idx = text.rfind(marker)
            if idx >= 0:
                maybe_ty = text[:idx].strip()
                try:
                    ty = _parse_type(maybe_ty, self.pos)
                    text = text[idx + 1:].strip()
                except IRParseError:
                    pass
                break
        else:
            if " " in text:
                maybe_ty, _, rest = text.partition(" ")
                try:
                    ty = _parse_type(maybe_ty, self.pos)
                    text = rest.strip()
                except IRParseError:
                    pass
        if text.startswith("%t"):
            iid = int(text[2:])
            inst = ctx.temps.get(iid)
            if inst is None:
                raise self._error(f"use of undefined %t{iid}")
            return inst
        if text.startswith("%"):
            arg = ctx.args.get(text)
            if arg is None:
                raise self._error(f"unknown argument {text}")
            return arg
        if text.startswith("@"):
            return self.module.get_global(text[1:])
        if ty is None:
            raise self._error(f"cannot type literal {text!r}")
        if ty.is_float:
            return Constant(ty, float(text))
        return Constant(ty, int(text))

    _INST_RE = re.compile(r"^%t(?P<iid>\d+) = (?P<body>.+)$")

    def _parse_instruction(self, line: str, ctx: _FunctionContext) -> Instruction:
        body, attrs = self._split_attrs(line)
        m = self._INST_RE.match(body)
        iid = None
        if m:
            iid = int(m.group("iid"))
            body = m.group("body")
        inst = self._build(body, ctx)
        inst.attrs.update(attrs)
        if iid is not None:
            inst.iid = iid
            ctx.temps[iid] = inst
        return inst

    def _build(self, body: str, ctx: _FunctionContext) -> Instruction:
        op, _, rest = body.partition(" ")
        rest = rest.strip()

        if op == "alloca":
            return Alloca(_parse_type(rest, self.pos))
        if op == "load":
            vol = rest.startswith("volatile ")
            if vol:
                rest = rest[len("volatile "):]
            parts = _split_args(rest)
            ptr = self._value(parts[1], ctx)
            return Load(ptr, volatile=vol)
        if op == "store":
            vol = rest.startswith("volatile ")
            if vol:
                rest = rest[len("volatile "):]
            parts = _split_args(rest)
            ptr = self._value(parts[1], ctx)
            value = self._value(parts[0], ctx, ptr.type.pointee)
            return Store(value, ptr, volatile=vol)
        if op in ("icmp", "fcmp"):
            pred, _, operands = rest.partition(" ")
            parts = _split_args(operands)
            a = self._value(parts[0], ctx)
            b = self._value(parts[1], ctx, a.type)
            return ICmp(pred, a, b) if op == "icmp" else FCmp(pred, a, b)
        if op == "gep":
            parts = _split_args(rest)
            base = self._value(parts[0], ctx)
            index = self._value(parts[1], ctx, T.I64)
            return Gep(base, index)
        if op in CAST_OPS:
            src_text, _, to_text = rest.rpartition(" to ")
            value = self._value(src_text, ctx)
            return Cast(op, value, _parse_type(to_text, self.pos))
        if op == "select":
            parts = _split_args(rest)
            cond = self._value(parts[0], ctx, T.I1)
            a = self._value(parts[1], ctx)
            b = self._value(parts[2], ctx, a.type)
            return Select(cond, a, b)
        if op == "call" or (op == "void" and rest.startswith("@")):
            return self._build_call(rest, ctx)
        if op == "br":
            label = rest.split("%", 1)[1]
            inst = Br(None)
            ctx.block_fixups.append((inst, label, ""))
            return inst
        if op == "condbr":
            parts = _split_args(rest)
            cond = self._value(parts[0], ctx, T.I1)
            then_label = parts[1].split("%", 1)[1]
            else_label = parts[2].split("%", 1)[1]
            inst = CondBr(cond, None, None)
            ctx.block_fixups.append((inst, then_label, else_label))
            return inst
        if op == "ret":
            if rest == "void":
                return Ret()
            return Ret(self._value(rest, ctx))
        if op == "unreachable" or body == "unreachable":
            return Unreachable()
        if op in INT_BINOPS or op in FLOAT_BINOPS:
            parts = _split_args(rest)
            a = self._value(parts[0], ctx)
            b = self._value(parts[1], ctx, a.type)
            return BinOp(op, a, b)
        raise self._error(f"cannot parse instruction {body!r}")

    _CALL_RE = re.compile(r"^(?P<ret>.*?)\s*@(?P<name>[\w.]+)\((?P<args>.*)\)$")

    def _build_call(self, rest: str, ctx: _FunctionContext) -> Call:
        m = self._CALL_RE.match(rest)
        if not m:
            raise self._error(f"bad call: {rest!r}")
        ret = _parse_type(m.group("ret") or "void", self.pos)
        name = m.group("name")
        args = [
            self._value(a, ctx) for a in _split_args(m.group("args")) if a
        ]
        callee: Union[str, Function]
        if name in self.module.functions:
            callee = self.module.functions[name]
            return Call(callee, args)
        from .intrinsics import is_intrinsic

        if is_intrinsic(name):
            return Call(name, args, ret_type=ret)
        # forward reference to a function defined later: record a stub
        raise self._error(
            f"call to @{name} before its definition — the printer emits "
            "functions in definition order; reorder or declare it first"
        )


def parse_ir(text: str) -> Module:
    """Parse printer-format IR text into a verified-parseable module.

    Note: call targets must be defined (or declared) before use, as in
    the printer's output order for modules built by the frontend.
    """
    return IRTextParser(text).parse()
