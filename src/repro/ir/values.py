"""IR value hierarchy: everything an instruction can use as an operand.

``Value`` is the abstract base.  Concrete values are:

* :class:`Constant` — integer/float/pointer literals
* :class:`Argument` — formal function parameters
* :class:`GlobalVariable` — module-level storage (also used for MiniC
  string literals, benchmark input arrays and Flowery's guard/expect
  globals)
* :class:`~repro.ir.instructions.Instruction` — any instruction that
  produces a result

Values are compared by identity.  Constants are *not* interned (they are
tiny and identity-interning them would complicate provenance when the
duplication pass clones instruction operand lists).
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..errors import IRTypeError
from . import types as T

__all__ = ["Value", "Constant", "Argument", "GlobalVariable", "const_int",
           "const_float", "const_bool"]


class Value:
    """Abstract IR value with a type and an optional name."""

    __slots__ = ("type", "name")

    def __init__(self, type: T.Type, name: str = ""):
        self.type = type
        self.name = name

    def short(self) -> str:
        """Short printable form used inside instruction operand lists."""
        return self.name or "<anon>"


class Constant(Value):
    """A scalar literal.

    ``value`` is a Python int in canonical signed form for integer and
    pointer types (pointer constants only arise as null) or a Python
    float for ``f64``.
    """

    __slots__ = ("value",)

    def __init__(self, type: T.Type, value: Union[int, float]):
        if type.is_integer or type.is_pointer:
            if not isinstance(value, int):
                raise IRTypeError(f"constant of {type} must be int, got {value!r}")
        elif type.is_float:
            value = float(value)
        else:
            raise IRTypeError(f"cannot make constant of type {type}")
        super().__init__(type, "")
        self.value = value

    def short(self) -> str:
        if self.type.is_float:
            return repr(self.value)
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constant({self.type}, {self.value})"


def const_int(value: int, type: T.IntType = T.I64) -> Constant:
    """Integer constant, wrapped into the type's signed range."""
    from ..utils.bits import wrap_signed

    return Constant(type, wrap_signed(int(value), type.width))


def const_float(value: float) -> Constant:
    """``f64`` constant."""
    return Constant(T.F64, float(value))


def const_bool(value: bool) -> Constant:
    """``i1`` constant."""
    return Constant(T.I1, 1 if value else 0)


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("index", "function")

    def __init__(self, type: T.Type, index: int, name: str = ""):
        super().__init__(type, name or f"arg{index}")
        self.index = index
        self.function = None  # back-reference set by Function

    def short(self) -> str:
        return f"%{self.name}"


class GlobalVariable(Value):
    """Module-level storage.

    The *value type* is what the global stores; like LLVM, the global
    used as an operand has pointer-to-value type.  ``initializer`` is a
    scalar (int/float) for scalar globals or a list of scalars for array
    globals; ``None`` zero-initialises.

    ``volatile`` marks globals whose loads must never be assumed
    redundant by any CSE-style analysis — Flowery's opaque guard relies
    on this, mirroring C ``volatile`` semantics.
    """

    __slots__ = ("value_type", "initializer", "is_const", "volatile")

    def __init__(
        self,
        name: str,
        value_type: T.Type,
        initializer=None,
        is_const: bool = False,
        volatile: bool = False,
    ):
        if not (value_type.is_scalar or value_type.is_array):
            raise IRTypeError(f"global of type {value_type} is not supported")
        super().__init__(T.ptr(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_const = is_const
        self.volatile = volatile

    def short(self) -> str:
        return f"@{self.name}"

    def flat_initializer(self) -> List[Union[int, float]]:
        """Initializer flattened to a list of scalars covering the whole
        storage (zero-filled)."""
        if self.value_type.is_array:
            ty = self.value_type
            count = ty.size // ty.flattened_element.size
            zero = 0.0 if ty.flattened_element.is_float else 0
            data = list(self.initializer or [])
            flat: List[Union[int, float]] = []
            stack = list(data)
            for item in stack:
                if isinstance(item, (list, tuple)):
                    flat.extend(item)
                else:
                    flat.append(item)
            if len(flat) > count:
                raise IRTypeError(
                    f"initializer for @{self.name} has {len(flat)} elements, "
                    f"storage holds {count}"
                )
            flat.extend([zero] * (count - len(flat)))
            return flat
        zero = 0.0 if self.value_type.is_float else 0
        if self.initializer is None:
            return [zero]
        return [self.initializer]
