"""The IR type system.

A deliberately small, LLVM-flavoured set of first-class types:

* ``void``
* integer types ``i1, i8, i16, i32, i64``
* ``f64`` (binary64 floating point)
* pointers (``T*``)
* fixed-size arrays (``[N x T]``) — only as pointee/global types
* function types

Types are interned: constructing the same type twice returns the same
object, so identity comparison (``is``) equals structural equality.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import IRTypeError

__all__ = [
    "Type",
    "VoidType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "FunctionType",
    "VOID",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F64",
    "ptr",
    "array",
]

POINTER_BITS = 64


class Type:
    """Base class of all IR types."""

    #: storage size in bytes; 0 for void/function types
    size: int = 0

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"<{self.__class__.__name__} {self}>"

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_float or self.is_pointer

    @property
    def bits(self) -> int:
        """Value width in bits for scalar types."""
        raise IRTypeError(f"type {self} has no bit width")


class VoidType(Type):
    size = 0

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    def __init__(self, width: int):
        if width not in (1, 8, 16, 32, 64):
            raise IRTypeError(f"unsupported integer width {width}")
        self.width = width
        self.size = max(1, width // 8)

    @property
    def bits(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    size = 8

    @property
    def bits(self) -> int:
        return 64

    def __str__(self) -> str:
        return "f64"


class PointerType(Type):
    size = POINTER_BITS // 8

    def __init__(self, pointee: Type):
        if pointee.is_void:
            raise IRTypeError("pointer to void is not supported; use i8*")
        self.pointee = pointee

    @property
    def bits(self) -> int:
        return POINTER_BITS

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    def __init__(self, element: Type, count: int):
        if count <= 0:
            raise IRTypeError(f"array count must be positive, got {count}")
        if not element.is_scalar and not element.is_array:
            raise IRTypeError(f"invalid array element type {element}")
        self.element = element
        self.count = count
        self.size = element.size * count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    @property
    def flattened_element(self) -> Type:
        """Innermost scalar element type of a (possibly nested) array."""
        ty: Type = self.element
        while isinstance(ty, ArrayType):
            ty = ty.element
        return ty


class FunctionType(Type):
    size = 0

    def __init__(self, ret: Type, params: Sequence[Type], variadic: bool = False):
        self.ret = ret
        self.params: Tuple[Type, ...] = tuple(params)
        self.variadic = variadic

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.ret} ({params})"


# -- interning ----------------------------------------------------------

VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType()

_INT_CACHE = {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}
_PTR_CACHE: dict = {}
_ARRAY_CACHE: dict = {}
_FN_CACHE: dict = {}


def int_type(width: int) -> IntType:
    """Interned integer type of the given width."""
    try:
        return _INT_CACHE[width]
    except KeyError:
        raise IRTypeError(f"unsupported integer width {width}") from None


def ptr(pointee: Type) -> PointerType:
    """Interned pointer-to-``pointee`` type."""
    cached = _PTR_CACHE.get(id(pointee))
    if cached is None:
        cached = PointerType(pointee)
        _PTR_CACHE[id(pointee)] = cached
    return cached


def array(element: Type, count: int) -> ArrayType:
    """Interned ``[count x element]`` type."""
    key = (id(element), count)
    cached = _ARRAY_CACHE.get(key)
    if cached is None:
        cached = ArrayType(element, count)
        _ARRAY_CACHE[key] = cached
    return cached


def function_type(
    ret: Type, params: Sequence[Type], variadic: bool = False
) -> FunctionType:
    """Interned function type."""
    key = (id(ret), tuple(id(p) for p in params), variadic)
    cached = _FN_CACHE.get(key)
    if cached is None:
        cached = FunctionType(ret, params, variadic)
        _FN_CACHE[key] = cached
    return cached


def types_equal(a: Type, b: Type) -> bool:
    """Structural equality; identical to ``is`` thanks to interning, but
    provided for readability at call sites."""
    return a is b


def common_scalar(a: Type, b: Type) -> Optional[Type]:
    """The common type of two scalars if they are identical, else None."""
    return a if a is b else None
