"""Convenience builder for constructing IR programmatically.

The builder holds an insertion point (a basic block) and appends
instructions to it, assigning module-unique ids on the way.  The MiniC
code generator, the protection passes and hand-written test fixtures all
construct IR through this interface.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..errors import IRError
from . import types as T
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import Constant, Value, const_bool, const_float, const_int

__all__ = ["IRBuilder"]


class IRBuilder:
    """Appends instructions at an insertion point, like llvm::IRBuilder."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        self.module: Module = function.module
        self.block: Optional[BasicBlock] = block

    # -- positioning ------------------------------------------------------

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def new_block(self, label: str = "") -> BasicBlock:
        return self.function.new_block(label)

    @property
    def is_terminated(self) -> bool:
        return self.block is not None and self.block.terminator is not None

    def _emit(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion block")
        self.module.assign_iid(inst)
        self.block.append(inst)
        return inst

    # -- constants --------------------------------------------------------

    @staticmethod
    def i64(value: int) -> Constant:
        return const_int(value, T.I64)

    @staticmethod
    def i32(value: int) -> Constant:
        return const_int(value, T.I32)

    @staticmethod
    def f64(value: float) -> Constant:
        return const_float(value)

    @staticmethod
    def true() -> Constant:
        return const_bool(True)

    @staticmethod
    def false() -> Constant:
        return const_bool(False)

    # -- memory -------------------------------------------------------------

    def alloca(self, ty: T.Type, name: str = "") -> Alloca:
        return self._emit(Alloca(ty, name))  # type: ignore[return-value]

    def load(self, ptr: Value, volatile: bool = False) -> Load:
        return self._emit(Load(ptr, volatile))  # type: ignore[return-value]

    def store(self, value: Value, ptr: Value, volatile: bool = False) -> Store:
        return self._emit(Store(value, ptr, volatile))  # type: ignore[return-value]

    def gep(self, ptr: Value, index: Value) -> Gep:
        return self._emit(Gep(ptr, index))  # type: ignore[return-value]

    # -- arithmetic -----------------------------------------------------------

    def binop(self, op: str, a: Value, b: Value) -> BinOp:
        return self._emit(BinOp(op, a, b))  # type: ignore[return-value]

    def add(self, a: Value, b: Value) -> BinOp:
        return self.binop("add", a, b)

    def sub(self, a: Value, b: Value) -> BinOp:
        return self.binop("sub", a, b)

    def mul(self, a: Value, b: Value) -> BinOp:
        return self.binop("mul", a, b)

    def sdiv(self, a: Value, b: Value) -> BinOp:
        return self.binop("sdiv", a, b)

    def srem(self, a: Value, b: Value) -> BinOp:
        return self.binop("srem", a, b)

    def and_(self, a: Value, b: Value) -> BinOp:
        return self.binop("and", a, b)

    def or_(self, a: Value, b: Value) -> BinOp:
        return self.binop("or", a, b)

    def xor(self, a: Value, b: Value) -> BinOp:
        return self.binop("xor", a, b)

    def shl(self, a: Value, b: Value) -> BinOp:
        return self.binop("shl", a, b)

    def ashr(self, a: Value, b: Value) -> BinOp:
        return self.binop("ashr", a, b)

    def lshr(self, a: Value, b: Value) -> BinOp:
        return self.binop("lshr", a, b)

    def fadd(self, a: Value, b: Value) -> BinOp:
        return self.binop("fadd", a, b)

    def fsub(self, a: Value, b: Value) -> BinOp:
        return self.binop("fsub", a, b)

    def fmul(self, a: Value, b: Value) -> BinOp:
        return self.binop("fmul", a, b)

    def fdiv(self, a: Value, b: Value) -> BinOp:
        return self.binop("fdiv", a, b)

    def icmp(self, pred: str, a: Value, b: Value) -> ICmp:
        return self._emit(ICmp(pred, a, b))  # type: ignore[return-value]

    def fcmp(self, pred: str, a: Value, b: Value) -> FCmp:
        return self._emit(FCmp(pred, a, b))  # type: ignore[return-value]

    def select(self, cond: Value, a: Value, b: Value) -> Select:
        return self._emit(Select(cond, a, b))  # type: ignore[return-value]

    def cast(self, op: str, value: Value, to_type: T.Type) -> Cast:
        return self._emit(Cast(op, value, to_type))  # type: ignore[return-value]

    def sext(self, value: Value, to_type: T.Type) -> Cast:
        return self.cast("sext", value, to_type)

    def zext(self, value: Value, to_type: T.Type) -> Cast:
        return self.cast("zext", value, to_type)

    def trunc(self, value: Value, to_type: T.Type) -> Cast:
        return self.cast("trunc", value, to_type)

    def sitofp(self, value: Value) -> Cast:
        return self.cast("sitofp", value, T.F64)

    def fptosi(self, value: Value, to_type: T.Type = T.I64) -> Cast:
        return self.cast("fptosi", value, to_type)

    # -- calls and control flow ------------------------------------------------

    def call(
        self,
        callee: Union[Function, str],
        args: Sequence[Value] = (),
        ret_type: Optional[T.Type] = None,
    ) -> Call:
        return self._emit(Call(callee, args, ret_type))  # type: ignore[return-value]

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))  # type: ignore[return-value]

    def condbr(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> CondBr:
        return self._emit(CondBr(cond, then_block, else_block))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())  # type: ignore[return-value]
