"""Miniature typed IR modeled on Clang ``-O0`` LLVM output.

Public surface:

* :mod:`repro.ir.types` — interned type system (``I32``, ``F64``, ...)
* :class:`repro.ir.Module` / :class:`Function` / :class:`BasicBlock`
* :class:`repro.ir.IRBuilder` — construction API
* instruction classes in :mod:`repro.ir.instructions`
* :func:`repro.ir.verify_module`, :func:`repro.ir.print_module`
"""

from . import types  # noqa: F401
from .builder import IRBuilder  # noqa: F401
from .instructions import (  # noqa: F401
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .intrinsics import DETECT, INTRINSICS, PRINT_F64, PRINT_I64, PRINT_CHAR  # noqa: F401
from .module import BasicBlock, Function, Module  # noqa: F401
from .parser import parse_ir  # noqa: F401
from .printer import format_instruction, print_function, print_module  # noqa: F401
from .values import (  # noqa: F401
    Argument,
    Constant,
    GlobalVariable,
    Value,
    const_bool,
    const_float,
    const_int,
)
from .verifier import verify_function, verify_module  # noqa: F401

__all__ = [
    "types",
    "IRBuilder",
    "Module",
    "Function",
    "BasicBlock",
    "Instruction",
    "Alloca", "BinOp", "Br", "Call", "Cast", "CondBr", "FCmp", "Gep",
    "ICmp", "Load", "Ret", "Select", "Store", "Unreachable",
    "Argument", "Constant", "GlobalVariable", "Value",
    "const_bool", "const_float", "const_int",
    "verify_module", "verify_function",
    "print_module", "print_function", "format_instruction", "parse_ir",
    "DETECT", "INTRINSICS", "PRINT_F64", "PRINT_I64", "PRINT_CHAR",
]
