"""Structural verification of IR modules.

The verifier enforces the invariants every later stage (interpreter,
protection passes, backend) relies on.  Run it after the frontend and
after each transformation pass in tests; it is cheap (linear).

Checked invariants:

* every reachable block ends in exactly one terminator (and only one);
* every instruction has a module-unique positive ``iid``;
* instruction operands are defined before use along every path
  (approximated by: defined in a dominating block — we use the
  conservative check "defined in the same block earlier, or in a block
  that dominates", computed with a standard iterative dominator
  analysis);
* branch targets belong to the same function;
* calls reference functions of the containing module (or intrinsics);
* the entry block has no predecessors.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import VerifierError
from .instructions import Br, Call, CondBr, Instruction
from .intrinsics import is_intrinsic
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, GlobalVariable

__all__ = ["verify_module", "verify_function", "compute_dominators"]


def compute_dominators(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Classic iterative dataflow dominator computation."""
    blocks = fn.blocks
    if not blocks:
        return {}
    entry = blocks[0]
    preds = fn.predecessors()
    all_blocks = set(blocks)
    dom: Dict[BasicBlock, Set[BasicBlock]] = {b: set(all_blocks) for b in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b is entry:
                continue
            pred_doms = [dom[p] for p in preds[b]]
            new = set.intersection(*pred_doms) if pred_doms else set(all_blocks)
            new = new | {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def verify_function(fn: Function, seen_iids: Set[int]) -> None:
    if fn.is_declaration:
        return
    block_set = set(fn.blocks)

    preds = fn.predecessors()
    if preds[fn.entry]:
        raise VerifierError(f"@{fn.name}: entry block has predecessors")

    for block in fn.blocks:
        if not block.instructions:
            raise VerifierError(f"@{fn.name}/{block.label}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator:
            raise VerifierError(
                f"@{fn.name}/{block.label}: block does not end in a terminator"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerifierError(
                    f"@{fn.name}/{block.label}: terminator {inst.describe()} "
                    "in the middle of a block"
                )
        for succ in block.successors():
            if succ not in block_set:
                raise VerifierError(
                    f"@{fn.name}/{block.label}: branch to foreign block "
                    f"{succ.label}"
                )

    # ids
    for inst in fn.instructions():
        if inst.iid <= 0:
            raise VerifierError(
                f"@{fn.name}: instruction without iid: {inst.describe()}"
            )
        if inst.iid in seen_iids:
            raise VerifierError(f"@{fn.name}: duplicate iid {inst.iid}")
        seen_iids.add(inst.iid)

    # def-before-use via dominators
    dom = compute_dominators(fn)
    def_block: Dict[int, BasicBlock] = {}
    def_index: Dict[int, int] = {}
    for block in fn.blocks:
        for idx, inst in enumerate(block.instructions):
            def_block[inst.iid] = block
            def_index[inst.iid] = idx

    for block in fn.blocks:
        for idx, inst in enumerate(block.instructions):
            for op in inst.operands:
                if isinstance(op, Instruction):
                    db = def_block.get(op.iid)
                    if db is None:
                        raise VerifierError(
                            f"@{fn.name}/{block.label}: operand %t{op.iid} of "
                            f"{inst.describe()} is not defined in this function"
                        )
                    if db is block:
                        if def_index[op.iid] >= idx:
                            raise VerifierError(
                                f"@{fn.name}/{block.label}: %t{op.iid} used "
                                f"before definition in {inst.describe()}"
                            )
                    elif db not in dom[block]:
                        raise VerifierError(
                            f"@{fn.name}/{block.label}: %t{op.iid} does not "
                            f"dominate its use in {inst.describe()}"
                        )
                elif isinstance(op, Argument):
                    if op.function is not fn:
                        raise VerifierError(
                            f"@{fn.name}: foreign argument %{op.name} used"
                        )
                elif not isinstance(op, (Constant, GlobalVariable)):
                    raise VerifierError(
                        f"@{fn.name}: invalid operand kind {type(op).__name__}"
                    )

            if isinstance(inst, Call):
                name = inst.callee_name
                if isinstance(inst.callee, str) and not is_intrinsic(name):
                    raise VerifierError(
                        f"@{fn.name}: call to unknown intrinsic @{name}"
                    )


def verify_module(module: Module) -> None:
    """Verify every function; raises :class:`VerifierError` on failure."""
    seen_iids: Set[int] = set()
    for fn in module.functions.values():
        verify_function(fn, seen_iids)
        if not fn.is_declaration:
            for inst in fn.instructions():
                if isinstance(inst, Call) and not isinstance(inst.callee, str):
                    if inst.callee.module is not module:
                        raise VerifierError(
                            f"@{fn.name}: call to function of another module"
                        )
