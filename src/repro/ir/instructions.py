"""IR instruction set.

The instruction vocabulary mirrors the subset of LLVM IR that Clang
``-O0`` emits for C kernels: stack slots (``alloca``), explicit
``load``/``store`` for every variable access, integer/float arithmetic,
comparisons, ``getelementptr``-style address arithmetic (single index),
casts, ``select``, calls, and the three terminators ``br``/``condbr``/
``ret``.  There is no ``phi`` — the ``-O0`` discipline keeps all values
in memory across control flow, which is exactly the property the paper's
store-penetration analysis depends on.

Protection metadata lives on each instruction:

* ``iid``       — module-unique integer identity
* ``attrs``     — free-form dict used by passes.  Established keys:

  - ``"dup_of"``:   iid of the master instruction this shadow copies
  - ``"checker"``:  True on instructions belonging to a checker sequence
  - ``"protected"``: True once the duplication pass has covered this
    instruction with a shadow + checker
  - ``"flowery"``:  name of the Flowery patch that introduced the
    instruction (``"eager-store" | "postponed-branch" | "anti-cmp"``)
  - ``"origin"``:   source-position string from the frontend
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import IRTypeError
from . import types as T
from .values import Value

__all__ = [
    "Instruction",
    "Alloca",
    "Load",
    "Store",
    "BinOp",
    "ICmp",
    "FCmp",
    "Gep",
    "Cast",
    "Select",
    "Call",
    "Br",
    "CondBr",
    "Ret",
    "Unreachable",
    "INT_BINOPS",
    "FLOAT_BINOPS",
    "ICMP_PREDS",
    "FCMP_PREDS",
    "CAST_OPS",
    "BIT_SEMANTICS",
]

INT_BINOPS = frozenset(
    ["add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr", "lshr"]
)

#: Bit-semantics class per opcode, consumed by the bit-level liveness
#: analysis (:mod:`repro.analysis.bitlive`).  The class names how a
#: flip in an *operand* bit can reach the result's bits:
#:
#: - ``carry``      low bits reach every higher bit (carry/borrow chains)
#: - ``bitwise``    bit i only reaches bit i
#: - ``mask-and``   bit i reaches bit i unless the other operand forces 0
#: - ``mask-or``    bit i reaches bit i unless the other operand forces 1
#: - ``shift-*``    bits translate by the (possibly constant) amount
#: - ``opaque-trap`` any bit reaches any bit *and* operand values gate a
#:   trap (division), so operands are observed even when the result dies
#: - ``compare``/``select``/``cast``/``addr``/``load`` structural cases
#:
#: Opcodes absent from the table (stores, branches, calls, returns,
#: float arithmetic) observe their operands fully.
BIT_SEMANTICS = {
    "add": "carry", "sub": "carry", "mul": "carry",
    "sdiv": "opaque-trap", "srem": "opaque-trap",
    "and": "mask-and", "or": "mask-or", "xor": "bitwise",
    "shl": "shift-l", "lshr": "shift-r", "ashr": "shift-ar",
    "icmp": "compare", "fcmp": "compare",
    "select": "select", "gep": "addr", "load": "load",
    "sext": "cast", "zext": "cast", "trunc": "cast",
    "sitofp": "cast", "fptosi": "cast",
    "bitcast": "cast", "ptrtoint": "cast", "inttoptr": "cast",
}
FLOAT_BINOPS = frozenset(["fadd", "fsub", "fmul", "fdiv"])
ICMP_PREDS = frozenset(["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"])
FCMP_PREDS = frozenset(["oeq", "one", "olt", "ole", "ogt", "oge"])
CAST_OPS = frozenset(
    ["sext", "zext", "trunc", "sitofp", "fptosi", "bitcast", "ptrtoint", "inttoptr"]
)


class Instruction(Value):
    """Base class.  Instructions that produce no result have void type."""

    __slots__ = ("opcode", "operands", "iid", "attrs", "parent")

    #: does this opcode produce a value that lives in a (virtual) register?
    has_result = True
    #: is this a synchronisation point for instruction duplication?
    is_sync_point = False
    #: terminator instructions end a basic block
    is_terminator = False

    def __init__(self, opcode: str, type: T.Type, operands: Sequence[Value]):
        super().__init__(type, "")
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.iid: int = 0          # assigned on insertion into a function
        self.attrs: Dict = {}
        self.parent = None         # owning BasicBlock

    # -- identity & printing ------------------------------------------

    def short(self) -> str:
        return f"%t{self.iid}"

    def describe(self) -> str:
        """One-line description used in diagnostics and reports."""
        ops = ", ".join(o.short() for o in self.operands)
        head = f"%t{self.iid} = {self.opcode}" if self.has_result else self.opcode
        return f"{head} {ops}".rstrip()

    # -- metadata helpers ----------------------------------------------

    @property
    def is_shadow(self) -> bool:
        return "dup_of" in self.attrs

    @property
    def is_checker(self) -> bool:
        return bool(self.attrs.get("checker"))

    @property
    def is_protected(self) -> bool:
        return bool(self.attrs.get("protected"))

    #: Instructions with a result are fault-injection sites at IR level;
    #: this mirrors the paper's statement that stores/branches are not.
    @property
    def is_ir_injection_site(self) -> bool:
        return self.has_result and not self.type.is_void

    def successors(self) -> List:
        """Successor basic blocks (terminators only)."""
        return []


# -- memory -------------------------------------------------------------


class Alloca(Instruction):
    """Reserve one stack object of ``allocated_type``; yields a pointer.

    Allocas are not fault-injection sites in our model: their "result"
    is a compile-time frame address, not a runtime datapath value (LLFI
    likewise excludes them).
    """

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: T.Type, name: str = ""):
        super().__init__("alloca", T.ptr(allocated_type), [])
        self.allocated_type = allocated_type
        self.name = name

    @property
    def is_ir_injection_site(self) -> bool:
        return False

    def describe(self) -> str:
        return f"%t{self.iid} = alloca {self.allocated_type}"


class Load(Instruction):
    """Load a scalar through a pointer."""

    __slots__ = ("volatile",)

    def __init__(self, ptr: Value, volatile: bool = False):
        if not ptr.type.is_pointer:
            raise IRTypeError(f"load from non-pointer {ptr.type}")
        pointee = ptr.type.pointee
        if not pointee.is_scalar:
            raise IRTypeError(f"load of non-scalar {pointee}")
        super().__init__("load", pointee, [ptr])
        self.volatile = volatile

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Store a scalar through a pointer.  No result; a sync point."""

    has_result = False
    is_sync_point = True
    __slots__ = ("volatile",)

    def __init__(self, value: Value, ptr: Value, volatile: bool = False):
        if not ptr.type.is_pointer:
            raise IRTypeError(f"store to non-pointer {ptr.type}")
        if ptr.type.pointee is not value.type:
            raise IRTypeError(
                f"store type mismatch: {value.type} into {ptr.type}"
            )
        super().__init__("store", T.VOID, [value, ptr])
        self.volatile = volatile

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


# -- arithmetic ----------------------------------------------------------


class BinOp(Instruction):
    """Binary arithmetic/logic.  Operand types must match the op class."""

    __slots__ = ()

    def __init__(self, op: str, a: Value, b: Value):
        if op in INT_BINOPS:
            if not (a.type.is_integer and a.type is b.type):
                raise IRTypeError(f"{op} needs matching integer operands, "
                                  f"got {a.type} and {b.type}")
        elif op in FLOAT_BINOPS:
            if not (a.type.is_float and b.type.is_float):
                raise IRTypeError(f"{op} needs f64 operands, got {a.type}, {b.type}")
        else:
            raise IRTypeError(f"unknown binary op {op!r}")
        super().__init__(op, a.type, [a, b])


class ICmp(Instruction):
    """Integer/pointer comparison yielding ``i1``."""

    __slots__ = ("pred",)

    def __init__(self, pred: str, a: Value, b: Value):
        if pred not in ICMP_PREDS:
            raise IRTypeError(f"unknown icmp predicate {pred!r}")
        if a.type is not b.type or not (a.type.is_integer or a.type.is_pointer):
            raise IRTypeError(
                f"icmp needs matching int/ptr operands, got {a.type}, {b.type}"
            )
        super().__init__("icmp", T.I1, [a, b])
        self.pred = pred

    def describe(self) -> str:
        return (f"%t{self.iid} = icmp {self.pred} "
                + ", ".join(o.short() for o in self.operands))


class FCmp(Instruction):
    """Float comparison yielding ``i1`` (ordered predicates only)."""

    __slots__ = ("pred",)

    def __init__(self, pred: str, a: Value, b: Value):
        if pred not in FCMP_PREDS:
            raise IRTypeError(f"unknown fcmp predicate {pred!r}")
        if not (a.type.is_float and b.type.is_float):
            raise IRTypeError(f"fcmp needs f64 operands, got {a.type}, {b.type}")
        super().__init__("fcmp", T.I1, [a, b])
        self.pred = pred

    def describe(self) -> str:
        return (f"%t{self.iid} = fcmp {self.pred} "
                + ", ".join(o.short() for o in self.operands))


class Gep(Instruction):
    """Single-index address arithmetic.

    For ``ptr : [N x E]*`` the result is ``E*`` at ``base + index *
    sizeof(E)`` (i.e. LLVM's ``gep 0, index``).  For ``ptr : S*`` with
    scalar ``S`` the result is ``S*`` at ``base + index * sizeof(S)``.
    """

    __slots__ = ()

    def __init__(self, ptr: Value, index: Value):
        if not ptr.type.is_pointer:
            raise IRTypeError(f"gep on non-pointer {ptr.type}")
        if not index.type.is_integer:
            raise IRTypeError(f"gep index must be integer, got {index.type}")
        pointee = ptr.type.pointee
        elem = pointee.element if pointee.is_array else pointee
        super().__init__("gep", T.ptr(elem), [ptr, index])

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def element_size(self) -> int:
        return self.type.pointee.size


class Cast(Instruction):
    """Type conversion."""

    __slots__ = ()

    def __init__(self, op: str, value: Value, to_type: T.Type):
        if op not in CAST_OPS:
            raise IRTypeError(f"unknown cast op {op!r}")
        _check_cast(op, value.type, to_type)
        super().__init__(op, to_type, [value])

    def describe(self) -> str:
        return f"%t{self.iid} = {self.opcode} {self.operands[0].short()} to {self.type}"


def _check_cast(op: str, from_ty: T.Type, to_ty: T.Type) -> None:
    ok = {
        "sext": from_ty.is_integer and to_ty.is_integer and to_ty.bits > from_ty.bits,
        "zext": from_ty.is_integer and to_ty.is_integer and to_ty.bits > from_ty.bits,
        "trunc": from_ty.is_integer and to_ty.is_integer and to_ty.bits < from_ty.bits,
        "sitofp": from_ty.is_integer and to_ty.is_float,
        "fptosi": from_ty.is_float and to_ty.is_integer,
        "bitcast": from_ty.is_pointer and to_ty.is_pointer,
        "ptrtoint": from_ty.is_pointer and to_ty is T.I64,
        "inttoptr": from_ty is T.I64 and to_ty.is_pointer,
    }[op]
    if not ok:
        raise IRTypeError(f"invalid {op}: {from_ty} -> {to_ty}")


class Select(Instruction):
    """``select cond, a, b`` — branchless conditional."""

    __slots__ = ()

    def __init__(self, cond: Value, a: Value, b: Value):
        if cond.type is not T.I1:
            raise IRTypeError(f"select condition must be i1, got {cond.type}")
        if a.type is not b.type or not a.type.is_scalar:
            raise IRTypeError(f"select arms must match scalars, got {a.type}, {b.type}")
        super().__init__("select", a.type, [cond, a, b])


class Call(Instruction):
    """Direct call.  ``callee`` is a Function or an intrinsic name string.

    Calls are sync points for duplication (argument values are checked
    before the call).  A call with a result is an IR injection site — a
    fault in its destination register models corruption of the returned
    value in the caller.
    """

    is_sync_point = True
    __slots__ = ("callee",)

    def __init__(self, callee, args: Sequence[Value], ret_type: Optional[T.Type] = None):
        from .module import Function  # local to avoid cycle

        if isinstance(callee, Function):
            fnty = callee.type
            if len(args) != len(fnty.params) and not fnty.variadic:
                raise IRTypeError(
                    f"call to @{callee.name}: expected {len(fnty.params)} args, "
                    f"got {len(args)}"
                )
            for i, (a, p) in enumerate(zip(args, fnty.params)):
                if a.type is not p:
                    raise IRTypeError(
                        f"call to @{callee.name}: arg {i} is {a.type}, expected {p}"
                    )
            rty = fnty.ret
        else:
            if ret_type is None:
                raise IRTypeError("intrinsic call needs explicit ret_type")
            rty = ret_type
        super().__init__("call", rty, list(args))
        self.callee = callee

    @property
    def has_result(self) -> bool:  # type: ignore[override]
        return not self.type.is_void

    @property
    def callee_name(self) -> str:
        from .module import Function

        return self.callee.name if isinstance(self.callee, Function) else self.callee

    def describe(self) -> str:
        ops = ", ".join(o.short() for o in self.operands)
        head = f"%t{self.iid} = call" if self.has_result else "call"
        return f"{head} @{self.callee_name}({ops})"


# -- terminators ---------------------------------------------------------


class Br(Instruction):
    """Unconditional branch."""

    has_result = False
    is_terminator = True
    __slots__ = ("target",)

    def __init__(self, target):
        super().__init__("br", T.VOID, [])
        self.target = target

    def successors(self) -> List:
        return [self.target]

    def describe(self) -> str:
        return f"br label %{self.target.label}"


class CondBr(Instruction):
    """Conditional branch; a sync point for duplication."""

    has_result = False
    is_terminator = True
    is_sync_point = True
    __slots__ = ("then_block", "else_block")

    def __init__(self, cond: Value, then_block, else_block):
        if cond.type is not T.I1:
            raise IRTypeError(f"condbr condition must be i1, got {cond.type}")
        super().__init__("condbr", T.VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def successors(self) -> List:
        return [self.then_block, self.else_block]

    def describe(self) -> str:
        return (f"condbr {self.condition.short()}, "
                f"label %{self.then_block.label}, label %{self.else_block.label}")


class Ret(Instruction):
    """Return (a sync point when it carries a value)."""

    has_result = False
    is_terminator = True
    is_sync_point = True
    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", T.VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def describe(self) -> str:
        return f"ret {self.value.short()}" if self.operands else "ret void"


class Unreachable(Instruction):
    """Marks control flow that must never execute (after detect calls)."""

    has_result = False
    is_terminator = True
    __slots__ = ()

    def __init__(self):
        super().__init__("unreachable", T.VOID, [])

    def describe(self) -> str:
        return "unreachable"
