"""Textual IR printer (LLVM-flavoured).

Purely for diagnostics, tests and examples — the toolchain operates on
the object graph.  The format is stable so tests can assert on it.
"""

from __future__ import annotations

from typing import List

from . import types as T
from .instructions import (
    Alloca,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
)
from .module import Function, Module
from .values import Argument, Constant, GlobalVariable, Value

__all__ = ["print_module", "print_function", "format_instruction"]


def _val(v: Value) -> str:
    if isinstance(v, Constant):
        return f"{v.type} {v.short()}"
    if isinstance(v, GlobalVariable):
        return f"{v.type} @{v.name}"
    if isinstance(v, Argument):
        return f"{v.type} %{v.name}"
    if isinstance(v, Instruction):
        return f"{v.type} %t{v.iid}"
    return f"{v.type} {v.short()}"


def _attrs_suffix(inst: Instruction) -> str:
    tags: List[str] = []
    if inst.is_shadow:
        tags.append(f"dup_of=%t{inst.attrs['dup_of']}")
    if inst.is_checker:
        tags.append("checker")
    if inst.is_protected:
        tags.append("protected")
    if "flowery" in inst.attrs:
        tags.append(f"flowery={inst.attrs['flowery']}")
    return f"  ; {', '.join(tags)}" if tags else ""


def format_instruction(inst: Instruction) -> str:
    if isinstance(inst, Alloca):
        body = f"%t{inst.iid} = alloca {inst.allocated_type}"
    elif isinstance(inst, Load):
        vol = "volatile " if inst.volatile else ""
        body = f"%t{inst.iid} = load {vol}{inst.type}, {_val(inst.pointer)}"
    elif isinstance(inst, Store):
        vol = "volatile " if inst.volatile else ""
        body = f"store {vol}{_val(inst.value)}, {_val(inst.pointer)}"
    elif isinstance(inst, ICmp):
        a, b = inst.operands
        body = f"%t{inst.iid} = icmp {inst.pred} {_val(a)}, {b.short()}"
    elif isinstance(inst, FCmp):
        a, b = inst.operands
        body = f"%t{inst.iid} = fcmp {inst.pred} {_val(a)}, {b.short()}"
    elif isinstance(inst, Gep):
        body = (f"%t{inst.iid} = gep {_val(inst.base)}, {_val(inst.index)}")
    elif isinstance(inst, Cast):
        body = (f"%t{inst.iid} = {inst.opcode} {_val(inst.operands[0])} "
                f"to {inst.type}")
    elif isinstance(inst, Select):
        c, a, b = inst.operands
        body = (f"%t{inst.iid} = select {_val(c)}, {_val(a)}, {b.short()}")
    elif isinstance(inst, Call):
        args = ", ".join(_val(a) for a in inst.operands)
        if inst.has_result:
            body = f"%t{inst.iid} = call {inst.type} @{inst.callee_name}({args})"
        else:
            body = f"call void @{inst.callee_name}({args})"
    elif isinstance(inst, Br):
        body = f"br label %{inst.target.label}"
    elif isinstance(inst, CondBr):
        body = (f"condbr {_val(inst.condition)}, label %{inst.then_block.label}, "
                f"label %{inst.else_block.label}")
    elif isinstance(inst, Ret):
        body = f"ret {_val(inst.value)}" if inst.value is not None else "ret void"
    else:
        ops = ", ".join(_val(o) for o in inst.operands)
        if inst.has_result:
            body = f"%t{inst.iid} = {inst.opcode} {ops}".rstrip()
        else:
            body = f"{inst.opcode} {ops}".rstrip()
    return body + _attrs_suffix(inst)


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    head = f"define {fn.return_type} @{fn.name}({params})"
    if fn.is_declaration:
        return f"declare {fn.return_type} @{fn.name}({params})"
    lines = [head + " {"]
    for block in fn.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def _fmt_init(gv: GlobalVariable) -> str:
    if gv.initializer is None:
        return "zeroinitializer"
    if isinstance(gv.initializer, (list, tuple)):
        inner = ", ".join(str(x) for x in gv.flat_initializer())
        return f"[{inner}]"
    return str(gv.initializer)


def print_module(module: Module) -> str:
    lines = [f"; module {module.name}"]
    for gv in module.globals.values():
        qual = "constant" if gv.is_const else "global"
        vol = " volatile" if gv.volatile else ""
        lines.append(f"@{gv.name} ={vol} {qual} {gv.value_type} {_fmt_init(gv)}")
    for fn in module.functions.values():
        lines.append("")
        lines.append(print_function(fn))
    return "\n".join(lines) + "\n"
