"""Runtime intrinsics.

Intrinsics are calls by *name* (string callee) handled directly by the
IR interpreter and lowered to runtime stubs by the backend.  They model
the C runtime the paper's benchmarks link against:

* ``print_i64`` / ``print_f64`` / ``print_char`` — program output, which
  is what SDC detection diffs against the golden run.  ``print_f64``
  formats with 6 significant digits (like ``printf("%g")``), so tiny
  float perturbations below the printed precision are benign — the same
  effect appears in the paper's benchmarks.
* ``__detect`` — the checker's error handler.  Terminates the run with
  the *Detected* outcome.  Inserted by the duplication pass and Flowery.
* ``sqrt_f64`` / ``log_f64`` / ``exp_f64`` / ``sin_f64`` / ``cos_f64``
  / ``fabs_f64`` / ``pow_f64`` — libm subset used by the numerical
  benchmarks (EP, CG, FFT2, Basicmath...).

Intrinsic calls never count as protected computation: like libc calls
in the paper's setup, faults inside them are out of scope; their
*arguments* are checked at the call sync point like any other call.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from . import types as T

__all__ = [
    "INTRINSICS",
    "is_intrinsic",
    "intrinsic_signature",
    "DETECT",
    "PRINT_I64",
    "PRINT_F64",
    "PRINT_CHAR",
]

DETECT = "__detect"
PRINT_I64 = "print_i64"
PRINT_F64 = "print_f64"
PRINT_CHAR = "print_char"

#: name -> (param types, return type)
INTRINSICS: Dict[str, Tuple[Tuple[T.Type, ...], T.Type]] = {
    PRINT_I64: ((T.I64,), T.VOID),
    PRINT_F64: ((T.F64,), T.VOID),
    PRINT_CHAR: ((T.I64,), T.VOID),
    DETECT: ((), T.VOID),
    "sqrt_f64": ((T.F64,), T.F64),
    "log_f64": ((T.F64,), T.F64),
    "exp_f64": ((T.F64,), T.F64),
    "sin_f64": ((T.F64,), T.F64),
    "cos_f64": ((T.F64,), T.F64),
    "fabs_f64": ((T.F64,), T.F64),
    "pow_f64": ((T.F64, T.F64), T.F64),
    "floor_f64": ((T.F64,), T.F64),
}


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def intrinsic_signature(name: str) -> Tuple[Tuple[T.Type, ...], T.Type]:
    return INTRINSICS[name]


def _clamp(x: float) -> float:
    """Keep libm results finite-ish under faulty inputs instead of raising."""
    return x


def math_impl(name: str) -> Callable[..., float]:
    """Host implementation of a math intrinsic.

    Domain errors under faulty inputs return NaN rather than raising a
    Python exception — mirroring IEEE behaviour of the real libm (which
    sets errno but returns NaN/inf).
    """

    def safe(fn: Callable[..., float]) -> Callable[..., float]:
        def wrapped(*args: float) -> float:
            try:
                return _clamp(fn(*args))
            except (ValueError, OverflowError):
                return float("nan")

        return wrapped

    table: Dict[str, Callable[..., float]] = {
        "sqrt_f64": safe(math.sqrt),
        "log_f64": safe(math.log),
        "exp_f64": safe(math.exp),
        "sin_f64": safe(math.sin),
        "cos_f64": safe(math.cos),
        "fabs_f64": safe(math.fabs),
        "pow_f64": safe(math.pow),
        "floor_f64": safe(math.floor),
    }
    return table[name]
