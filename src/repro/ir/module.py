"""Module, function and basic-block containers.

A :class:`Module` owns globals and functions and allocates instruction
ids.  A :class:`Function` is an ordered list of :class:`BasicBlock`;
the first block is the entry.  Blocks hold plain Python lists of
instructions — passes mutate them directly and call
:meth:`Function.renumber` afterwards if they created instructions
outside the builder.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from ..errors import IRError
from ..utils.ids import IdAllocator
from . import types as T
from .instructions import Instruction
from .values import Argument, GlobalVariable, Value

__all__ = ["Module", "Function", "BasicBlock"]


class BasicBlock:
    """A labelled straight-line instruction sequence ending in a terminator."""

    __slots__ = ("label", "instructions", "parent")

    def __init__(self, label: str, parent: Optional["Function"] = None):
        self.label = label
        self.instructions: List[Instruction] = []
        self.parent = parent

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"block {self.label} already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def index_of(self, inst: Instruction) -> int:
        for i, x in enumerate(self.instructions):
            if x is inst:
                return i
        raise IRError(f"instruction not in block {self.label}")

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term else []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.label} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function definition (or declaration, when it has no blocks)."""

    __slots__ = ("module", "blocks", "args", "_label_counter")

    def __init__(self, name: str, fnty: T.FunctionType, module: "Module"):
        super().__init__(fnty, name)
        self.module = module
        self.blocks: List[BasicBlock] = []
        self.args: List[Argument] = []
        for i, pty in enumerate(fnty.params):
            arg = Argument(pty, i)
            arg.function = self
            self.args.append(arg)
        self._label_counter = 0

    # -- structure ------------------------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> T.Type:
        return self.type.ret

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, label: str = "") -> BasicBlock:
        if not label:
            label = f"bb{self._label_counter}"
        else:
            label = self._unique_label(label)
        self._label_counter += 1
        block = BasicBlock(label, self)
        self.blocks.append(block)
        return block

    def _unique_label(self, label: str) -> str:
        existing = {b.label for b in self.blocks}
        if label not in existing:
            return label
        n = 1
        while f"{label}.{n}" in existing:
            n += 1
        return f"{label}.{n}"

    def block_by_label(self, label: str) -> BasicBlock:
        for b in self.blocks:
            if b.label == label:
                return b
        raise IRError(f"no block {label!r} in @{self.name}")

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map each block to its predecessor list."""
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                # tolerate foreign targets here; the verifier reports them
                preds.setdefault(succ, []).append(block)
        return preds

    def compute_uses(self) -> Dict[int, List[Instruction]]:
        """Map instruction iid -> instructions using it as an operand."""
        uses: Dict[int, List[Instruction]] = {}
        for inst in self.instructions():
            for op in inst.operands:
                if isinstance(op, Instruction):
                    uses.setdefault(op.iid, []).append(inst)
        return uses

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        kind = "declaration" if self.is_declaration else f"{len(self.blocks)} blocks"
        return f"<Function @{self.name} ({kind})>"


class Module:
    """Top-level IR container."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        self._ids = IdAllocator()

    # -- construction ---------------------------------------------------

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise IRError(f"duplicate global @{gv.name}")
        self.globals[gv.name] = gv
        return gv

    def global_var(
        self,
        name: str,
        value_type: T.Type,
        initializer=None,
        is_const: bool = False,
        volatile: bool = False,
    ) -> GlobalVariable:
        return self.add_global(
            GlobalVariable(name, value_type, initializer, is_const, volatile)
        )

    def add_function(self, name: str, fnty: T.FunctionType) -> Function:
        if name in self.functions:
            raise IRError(f"duplicate function @{name}")
        fn = Function(name, fnty, self)
        self.functions[name] = fn
        return fn

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module {self.name}") from None

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"no global @{name} in module {self.name}") from None

    def next_iid(self) -> int:
        return self._ids.next()

    def assign_iid(self, inst: Instruction) -> Instruction:
        """Give ``inst`` a fresh id if it does not have one."""
        if inst.iid == 0:
            inst.iid = self.next_iid()
        return inst

    def assign_all_iids(self) -> None:
        """Assign ids to every instruction lacking one (post-pass fixup)."""
        for fn in self.functions.values():
            for inst in fn.instructions():
                self.assign_iid(inst)

    # -- queries ----------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for fn in self.functions.values():
            yield from fn.instructions()

    def instruction_by_iid(self, iid: int) -> Instruction:
        for inst in self.instructions():
            if inst.iid == iid:
                return inst
        raise IRError(f"no instruction with iid {iid}")

    def static_instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
