"""Template-driven code generation for the assembly machine.

Third dispatch tier (``dispatch="codegen"``): the micro-op stream of a
:class:`~repro.machine.machine.CompiledProgram` is translated once into
specialized straight-line Python source — register indices, immediates,
memory bounds and branch targets inlined as literals — compiled with
:func:`repro.simgen.cache.compile_generated` and cached per memory
geometry, exactly like the decode cache.

Unlike the IR backend (one generated function per IR function, frames
driven from the interpreter), the whole uop stream is one flat address
space, so the asm backend emits a *single* function.  Basic blocks are
discovered from branch/call targets ("leaders"); each chunk is the run
of uops from a leader up to and including the next control uop.  Calls
and returns stay inside the generated function: their targets are
leaders, so control transfer is just ``bb = <chunk>; continue`` on a
binary dispatch tree.  Only a *corrupted* return address (one that is
not a leader — possible only after an injected fault) exits to
:func:`careful_until_leader`, which single-steps decoded closures until
execution re-joins a leader.

Counter exactness under coalescing uses the same trick as the IR
backend: each chunk has a *slow* body (taken only when the flip target
falls inside it) with per-uop ``s``/``inj`` updates and flip hooks, and
a *fast* body whose counters are coalesced into one addition at the
chunk exit.  Fast-body lines are recorded in a fixup table ``_FIX``
mapping generated line number -> (steps, injectable, pc) offsets; the
wrapper's ``except`` arms repair the counters from
``e.__traceback__.tb_lineno`` and convert ``OverflowError`` into the
same ``SimTrap("overflow", "pc=...")`` the other tiers raise.

The generated function returns action tuples to the driver loop in
:meth:`AsmMachine._loop_codegen`:

``(0, pc)``  step budget could be hit inside the next chunk — the
             driver finishes the run on the decoded core, which owns
             the exact raise point;
``(1,)``     ``main`` returned through the sentinel (halt);
``(2, pc)``  return address is not a leader — careful-step from ``pc``.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import FaultDetected, ReproError, SimTrap
from ..memorymodel import Memory
from ..utils.fmt import format_char, format_f64, format_i64
from ..simgen import SourceBuilder, compile_generated
from . import machine as _machine
from .decode import DecodedProgram, decode_program
from .machine import (
    ADD_RI, ADD_RR, ADDSD, AND_RI, AND_RR, CALL, CALLRT, CMOV, CMP_RI,
    CMP_RR, CVTSI2SD, CVTTSD2SI, DIVSD, IDIV, IMUL_RI, IMUL_RR, JCC, JMP,
    LEA, MOV_MI, MOV_MR, MOV_RI, MOV_RM, MOV_RR, MOVSD_MX, MOVSD_XI,
    MOVSD_XM, MOVSD_XX, MULSD, OR_RI, OR_RR, POP, PUSH, RET, SAR_RC,
    SAR_RI, SETCC, SHL_RC, SHL_RI, SHR_RC, SHR_RI, SUB_RI, SUB_RR, SUBSD,
    TEST_RR, UCOMISD, UD2, XOR_RI, XOR_RR,
    _MASK64, _RAX, _RCX, _RDI, _RDX, _RSP, _SENTINEL_RET,
    _RT_DETECT, _RT_MATH1, _RT_PRINT_CHAR, _RT_PRINT_F64, _RT_PRINT_I64,
    CompiledProgram, _sx,
)

__all__ = ["CodegenProgram", "codegen_program", "careful_until_leader"]

_M64 = _MASK64
_CONTROL = frozenset((JMP, JCC, CALL, RET, UD2))

# condition-code expressions over the packed flag local `fl`
# (zf | sf<<1 | of<<2 | cf<<3 | uf<<4) — literal translations of
# decode._cc_fn, index == cc id
_CC_EXPR = [
    "(fl & 1)",                                                 # e
    "(0 if fl & 1 else 1)",                                     # ne
    "(((fl >> 1) ^ (fl >> 2)) & 1)",                            # l
    "(1 if (fl & 1) or (((fl >> 1) ^ (fl >> 2)) & 1) else 0)",  # le
    "(0 if (fl & 1) or (((fl >> 1) ^ (fl >> 2)) & 1) else 1)",  # g
    "(0 if ((fl >> 1) ^ (fl >> 2)) & 1 else 1)",                # ge
    "((fl >> 3) & 1)",                                          # b
    "(1 if fl & 9 else 0)",                                     # be
    "(0 if fl & 9 else 1)",                                     # a
    "(0 if fl & 8 else 1)",                                     # ae
    "(0 if fl & 16 else fl & 1)",                               # fe
    "(0 if fl & 16 else (0 if fl & 1 else 1))",                 # fne
    "(0 if fl & 16 else (fl >> 3) & 1)",                        # fb
    "(0 if fl & 16 else (1 if fl & 9 else 0))",                 # fbe
    "(0 if fl & 16 else (0 if fl & 9 else 1))",                 # fa
    "(0 if fl & 16 else (0 if fl & 8 else 1))",                 # fae
]

_SX_MAX = 1 << 63
_SX_WRAP = 1 << 64

# struct codes per access size; signedness matches the decoded tier
# (asm GPR loads are raw little-endian unsigned)
_U_FMT = {1: "B", 2: "H", 4: "I", 8: "Q"}


class CodegenProgram:
    """Generated executor for one (program, memory-geometry) pair."""

    __slots__ = ("program", "run", "leaders", "source", "env")

    def __init__(self, program: CompiledProgram, run: Callable,
                 leaders: Dict[int, int], source: str, env: dict):
        self.program = program
        self.run = run
        #: uop index -> chunk id for every leader (branch/call target,
        #: call return site, entry) — also bound as ``_L`` in the
        #: generated module for RET dispatch
        self.leaders = leaders
        self.source = source
        self.env = env


def _fingerprint(program: CompiledProgram) -> tuple:
    """Content identity for in-place mutation detection (process-local:
    CALLRT payload identity hashes by object id)."""
    return (len(program.uops), program.entry_index,
            hash(tuple(program.uops)))


def codegen_program(program: CompiledProgram, mem: Memory,
                    fault_model: str = "seu") -> CodegenProgram:
    """Generate (cached) specialized code for ``program`` under ``mem``'s
    geometry and ``fault_model`` (the corruption hooks are baked into
    the source); regenerates if the uop stream was mutated in place."""
    key = (mem.global_base, mem.size, mem.stack_limit, fault_model)
    fp = _fingerprint(program)
    cache = getattr(program, "_codegen", None)
    if cache is None:
        cache = {}
        program._codegen = cache
    hit = cache.get(key)
    if hit is not None and hit[0] == fp:
        return hit[1]
    cp = _generate(program, mem, fault_model)
    cache[key] = (fp, cp)
    return cp


def _find_chunks(uops: List[tuple], entry: int):
    """Leaders + chunk spans.

    A chunk runs from its leader up to and including the first control
    uop, or up to (excluding) the next leader (fall-through), or to the
    end of the program (falling off is a bad-jump).  Dead uops hiding
    between a mid-run control uop and the next leader are reachable only
    through corrupted return addresses and are covered by the careful
    stepper, never by generated code.
    """
    n = len(uops)
    leader_set = {entry}
    for i, u in enumerate(uops):
        code = u[0]
        if code == JMP:
            leader_set.add(u[1])
        elif code in (JCC, CALL):
            leader_set.add(u[1])
            if i + 1 < n:
                leader_set.add(i + 1)
    ordered = sorted(x for x in leader_set if 0 <= x < n)
    chunks = []  # (leader, end_exclusive, kind) kind: "ctl"|"fall"|"off"
    for L in ordered:
        j = L
        while True:
            if uops[j][0] in _CONTROL:
                chunks.append((L, j + 1, "ctl"))
                break
            j += 1
            if j == n:
                chunks.append((L, j, "off"))
                break
            if j in leader_set:
                chunks.append((L, j, "fall"))
                break
    leaders = {L: k for k, (L, _end, _kind) in enumerate(chunks)}
    return chunks, leaders


class _Emitter:
    """Emits the single specialized executor for one program/geometry."""

    def __init__(self, program: CompiledProgram, dp: DecodedProgram,
                 lo: int, hi: int, stack_limit: int,
                 fault_model: str = "seu"):
        self.program = program
        self.uops = program.uops
        self.fault_model = fault_model
        self.cf = fault_model == "cf"
        self.set = fault_model == "set"
        #: under cf the register-destination sites vanish (no slow
        #: bodies, no coalesced inj) — control-uop chunk tails become
        #: the injection sites instead
        self.inj_kind = ([0] * len(program.uops) if self.cf
                         else program.inj_kind)
        self.gpr_dest = dp.gpr_dest
        self.xmm_dest = dp.xmm_dest
        self.lo = lo
        self.hi = hi
        self.stack_limit = stack_limit
        self.fix: Dict[int, Tuple[int, int, int]] = {}
        self.env: dict = {
            "_SimTrap": SimTrap,
            "_FaultDetected": FaultDetected,
            "_mach": _machine,
            "_FIX": self.fix,
            "M": _MASK64,
            "_FM": (1, 2, 4, 8, 16),
            "_ifb": int.from_bytes,
            "_fi64": format_i64,
            "_ff64": format_f64,
            "_fch": format_char,
            "_nan": float("nan"),
            "_inf": float("inf"),
            "_ninf": float("-inf"),
        }
        self._interned: Dict[tuple, str] = {}
        self._nconst = 0

    # -- env interning ---------------------------------------------------

    def struct_fn(self, prefix: str, fmt: str, method: str) -> str:
        name = f"_{prefix}{fmt}"
        if name not in self.env:
            self.env[name] = getattr(struct.Struct("<" + fmt), method)
        return name

    def const(self, tag: str, key, value) -> str:
        name = self._interned.get((tag, key))
        if name is None:
            name = f"_{tag}{self._nconst}"
            self._nconst += 1
            self._interned[(tag, key)] = name
            self.env[name] = value
        return name

    # -- per-uop bodies --------------------------------------------------

    def sx_line(self, var: str) -> str:
        return (f"{var} = {var} - {_SX_WRAP} "
                f"if {var} >= {_SX_MAX} else {var}")

    def emit_bounds(self, sb: SourceBuilder, size: int, what: str) -> None:
        """Dynamic-address bounds check over the `_a` local."""
        with sb.block(f"if _a < {self.lo} or _a + {size} > {self.hi}:"):
            sb.line(f'raise _SimTrap("segfault", '
                    f'f"{what} {{_a:#x}}")')

    def emit_gpr_read(self, sb: SourceBuilder, dest: str, size: int) -> None:
        """`dest = <size>-byte unsigned load at _a` (bounds already
        checked)."""
        fmt = _U_FMT.get(size)
        if fmt is not None:
            up = self.struct_fn("up", fmt, "unpack_from")
            sb.line(f"{dest} = {up}(md, _a)[0]")
        else:
            sb.line(f"{dest} = _ifb(md[_a:_a + {size}], 'little')")

    def emit_gpr_write(self, sb: SourceBuilder, src: str, size: int) -> None:
        mask = (1 << (8 * size)) - 1
        fmt = _U_FMT.get(size)
        if fmt is not None:
            sp = self.struct_fn("sp", fmt, "pack_into")
            sb.line(f"{sp}(md, _a, {src} & {mask})")
        else:
            sb.line(f"md[_a:_a + {size}] = "
                    f"(({src}) & {mask}).to_bytes({size}, 'little')")

    def emit_flags_zs(self, sb: SourceBuilder) -> None:
        sb.line("fl = (1 if _r == 0 else 0) | ((_r >> 63) << 1)")

    def emit_sub_flags(self, sb: SourceBuilder) -> None:
        sb.line("fl = ((1 if _r == 0 else 0) | ((_r >> 63) << 1)"
                " | (((_x ^ _y) & (_x ^ _r)) >> 63 & 1) << 2"
                " | (8 if _x < _y else 0))")

    def emit_uop(self, sb: SourceBuilder, i: int) -> None:
        """Straight-line source for uop ``i`` (counters/flips excluded;
        control uops are chunk tails and never come through here)."""
        u = self.uops[i]
        code = u[0]
        if code == MOV_RR:
            sb.line(f"rg[{u[1]}] = rg[{u[2]}]")
        elif code == MOV_RI:
            sb.line(f"rg[{u[1]}] = {u[2]}")
        elif code == MOV_RM:
            d, base, disp, size = u[1], u[2], u[3], u[4]
            if base < 0:
                addr = disp & _M64
                if addr < self.lo or addr + size > self.hi:
                    sb.line(f'raise _SimTrap("segfault", '
                            f'"read {size} at {addr:#x}")')
                else:
                    sb.line(f"_a = {addr}")
                    self.emit_gpr_read(sb, f"rg[{d}]", size)
            else:
                sb.line(f"_a = ({disp} + rg[{base}]) & M")
                self.emit_bounds(sb, size, f"read {size} at")
                self.emit_gpr_read(sb, f"rg[{d}]", size)
        elif code == MOV_MR:
            base, disp, s, size = u[1], u[2], u[3], u[4]
            if base < 0:
                addr = disp & _M64
                if addr < self.lo or addr + size > self.hi:
                    sb.line(f'raise _SimTrap("segfault", '
                            f'"write {size} at {addr:#x}")')
                else:
                    sb.line(f"_a = {addr}")
                    self.emit_gpr_write(sb, f"rg[{s}]", size)
            else:
                sb.line(f"_a = ({disp} + rg[{base}]) & M")
                self.emit_bounds(sb, size, f"write {size} at")
                self.emit_gpr_write(sb, f"rg[{s}]", size)
        elif code == MOV_MI:
            base, disp, v, size = u[1], u[2], u[3], u[4]
            payload = (v & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            pl = self.const("pl", payload, payload)
            if base < 0:
                addr = disp & _M64
                if addr < self.lo or addr + size > self.hi:
                    sb.line(f'raise _SimTrap("segfault", '
                            f'"write {size} at {addr:#x}")')
                else:
                    sb.line(f"md[{addr}:{addr + size}] = {pl}")
            else:
                sb.line(f"_a = ({disp} + rg[{base}]) & M")
                self.emit_bounds(sb, size, f"write {size} at")
                sb.line(f"md[_a:_a + {size}] = {pl}")
        elif code == MOVSD_XX:
            sb.line(f"xm[{u[1]}] = xm[{u[2]}]")
        elif code == MOVSD_XI:
            v = u[2]
            if v == v and v not in (self.env["_inf"], self.env["_ninf"]) \
                    and float(repr(v)) == v:
                sb.line(f"xm[{u[1]}] = {v!r}")
            else:
                name = self.const("xc", struct.pack("<d", v), v)
                sb.line(f"xm[{u[1]}] = {name}")
        elif code == MOVSD_XM:
            d, base, disp = u[1], u[2], u[3]
            up = self.struct_fn("up", "d", "unpack_from")
            if base < 0:
                addr = disp & _M64
                if addr < self.lo or addr + 8 > self.hi:
                    sb.line(f'raise _SimTrap("segfault", '
                            f'"fp read at {addr:#x}")')
                else:
                    sb.line(f"xm[{d}] = {up}(md, {addr})[0]")
            else:
                sb.line(f"_a = ({disp} + rg[{base}]) & M")
                self.emit_bounds(sb, 8, "fp read at")
                sb.line(f"xm[{d}] = {up}(md, _a)[0]")
        elif code == MOVSD_MX:
            base, disp, s = u[1], u[2], u[3]
            sp = self.struct_fn("sp", "d", "pack_into")
            if base < 0:
                addr = disp & _M64
                if addr < self.lo or addr + 8 > self.hi:
                    sb.line(f'raise _SimTrap("segfault", '
                            f'"fp write at {addr:#x}")')
                else:
                    sb.line(f"{sp}(md, {addr}, xm[{s}])")
            else:
                sb.line(f"_a = ({disp} + rg[{base}]) & M")
                self.emit_bounds(sb, 8, "fp write at")
                sb.line(f"{sp}(md, _a, xm[{s}])")
        elif code == LEA:
            d, base, disp = u[1], u[2], u[3]
            if base < 0:
                sb.line(f"rg[{d}] = {disp & _M64}")
            else:
                sb.line(f"rg[{d}] = ({disp} + rg[{base}]) & M")
        elif code in (ADD_RR, ADD_RI):
            d = u[1]
            sb.line(f"_x = rg[{d}]")
            sb.line(f"_y = rg[{u[2]}]" if code == ADD_RR
                    else f"_y = {u[2]}")
            sb.line("_t = _x + _y")
            sb.line("_r = _t & M")
            sb.line(f"rg[{d}] = _r")
            sb.line("fl = ((1 if _r == 0 else 0) | ((_r >> 63) << 1)"
                    " | (((~(_x ^ _y)) & (_x ^ _r)) >> 63 & 1) << 2"
                    " | (_t >> 64) << 3)")
        elif code in (SUB_RR, SUB_RI):
            d = u[1]
            sb.line(f"_x = rg[{d}]")
            sb.line(f"_y = rg[{u[2]}]" if code == SUB_RR
                    else f"_y = {u[2]}")
            sb.line("_r = (_x - _y) & M")
            sb.line(f"rg[{d}] = _r")
            self.emit_sub_flags(sb)
        elif code in (IMUL_RR, IMUL_RI):
            d = u[1]
            sb.line(f"_x = rg[{d}]")
            sb.line(self.sx_line("_x"))
            if code == IMUL_RR:
                sb.line(f"_y = rg[{u[2]}]")
                sb.line(self.sx_line("_y"))
            else:
                sb.line(f"_y = {_sx(u[2])}")
            sb.line("_r = (_x * _y) & M")
            sb.line(f"rg[{d}] = _r")
            self.emit_flags_zs(sb)
        elif code in (AND_RR, AND_RI, OR_RR, OR_RI, XOR_RR, XOR_RI):
            d = u[1]
            op = ("&" if code in (AND_RR, AND_RI)
                  else "|" if code in (OR_RR, OR_RI) else "^")
            rhs = f"rg[{u[2]}]" if code in (AND_RR, OR_RR, XOR_RR) \
                else f"{u[2]}"
            sb.line(f"_r = rg[{d}] {op} {rhs}")
            sb.line(f"rg[{d}] = _r")
            self.emit_flags_zs(sb)
        elif code in (SHL_RC, SHL_RI, SAR_RC, SAR_RI, SHR_RC, SHR_RI):
            d = u[1]
            n_expr = (f"rg[{_RCX}] & 63"
                      if code in (SHL_RC, SAR_RC, SHR_RC)
                      else f"{u[2] & 63}")
            if code in (SHL_RC, SHL_RI):
                sb.line(f"_r = (rg[{d}] << ({n_expr})) & M")
            elif code in (SAR_RC, SAR_RI):
                sb.line(f"_x = rg[{d}]")
                sb.line(self.sx_line("_x"))
                sb.line(f"_r = (_x >> ({n_expr})) & M")
            else:
                sb.line(f"_r = rg[{d}] >> ({n_expr})")
            sb.line(f"rg[{d}] = _r")
            self.emit_flags_zs(sb)
        elif code == IDIV:
            sb.line(f"_y = rg[{u[1]}]")
            sb.line(self.sx_line("_y"))
            with sb.block("if _y == 0:"):
                sb.line('raise _SimTrap("div-by-zero")')
            sb.line(f"_x = rg[{_RAX}]")
            sb.line(self.sx_line("_x"))
            sb.line("_q = abs(_x) // abs(_y)")
            with sb.block("if (_x < 0) != (_y < 0):"):
                sb.line("_q = -_q")
            sb.line(f"rg[{_RAX}] = _q & M")
            sb.line(f"rg[{_RDX}] = (_x - _q * _y) & M")
            sb.line("fl = 0")
        elif code in (CMP_RR, CMP_RI):
            sb.line(f"_x = rg[{u[1]}]")
            sb.line(f"_y = rg[{u[2]}]" if code == CMP_RR
                    else f"_y = {u[2]}")
            sb.line("_r = (_x - _y) & M")
            self.emit_sub_flags(sb)
        elif code == TEST_RR:
            sb.line(f"_r = rg[{u[1]}] & rg[{u[2]}]")
            self.emit_flags_zs(sb)
        elif code == SETCC:
            sb.line(f"rg[{u[1]}] = {_CC_EXPR[u[2]]}")
        elif code == CMOV:
            with sb.block(f"if {_CC_EXPR[u[3]]}:"):
                sb.line(f"rg[{u[1]}] = rg[{u[2]}]")
        elif code == CALLRT:
            kind, payload = u[1], u[2]
            if kind == _RT_PRINT_I64:
                sb.line(f"_v = rg[{_RDI}]")
                sb.line(self.sx_line("_v"))
                sb.line('out.append(_fi64(_v) + "\\n")')
            elif kind == _RT_PRINT_F64:
                sb.line('out.append(_ff64(xm[0]) + "\\n")')
            elif kind == _RT_PRINT_CHAR:
                sb.line(f"out.append(_fch(rg[{_RDI}]))")
            elif kind == _RT_DETECT:
                sb.line('raise _FaultDetected("checker")')
            elif kind == _RT_MATH1:
                name = self.const("mt", id(payload), payload)
                sb.line(f"xm[0] = {name}(xm[0])")
            else:
                name = self.const("mt", id(payload), payload)
                sb.line(f"xm[0] = {name}(xm[0], xm[1])")
        elif code == PUSH:
            sb.line(f"_sp = (rg[{_RSP}] - 8) & M")
            with sb.block(f"if _sp < {self.stack_limit} "
                          f"or _sp + 8 > {self.hi}:"):
                sb.line(f'raise _SimTrap("stack-overflow", '
                        f'"push at pc={i}")')
            spq = self.struct_fn("sp", "Q", "pack_into")
            sb.line(f"{spq}(md, _sp, rg[{u[1]}])")
            sb.line(f"rg[{_RSP}] = _sp")
        elif code == POP:
            sb.line(f"_sp = rg[{_RSP}]")
            with sb.block(f"if _sp < {self.lo} or _sp + 8 > {self.hi}:"):
                sb.line('raise _SimTrap("segfault", '
                        'f"pop with rsp={_sp:#x}")')
            upq = self.struct_fn("up", "Q", "unpack_from")
            sb.line(f"rg[{u[1]}] = {upq}(md, _sp)[0]")
            sb.line(f"rg[{_RSP}] = (_sp + 8) & M")
        elif code in (ADDSD, SUBSD, MULSD):
            op = "+" if code == ADDSD else "-" if code == SUBSD else "*"
            sb.line(f"xm[{u[1]}] = xm[{u[1]}] {op} xm[{u[2]}]")
        elif code == DIVSD:
            d, s = u[1], u[2]
            sb.line(f"_x = xm[{d}]")
            sb.line(f"_y = xm[{s}]")
            with sb.block("if _y == 0.0:"):
                sb.line(f"xm[{d}] = _nan if _x == 0.0 or _x != _x "
                        "else (_inf if _x > 0 else _ninf)")
            with sb.block("else:"):
                sb.line(f"xm[{d}] = _x / _y")
        elif code == UCOMISD:
            sb.line(f"_x = xm[{u[1]}]")
            sb.line(f"_y = xm[{u[2]}]")
            with sb.block("if _x != _x or _y != _y:"):
                sb.line("fl = 25")
            with sb.block("else:"):
                sb.line("fl = (1 if _x == _y else 0)"
                        " | (8 if _x < _y else 0)")
        elif code == CVTSI2SD:
            sb.line(f"_v = rg[{u[2]}]")
            sb.line(self.sx_line("_v"))
            sb.line(f"xm[{u[1]}] = float(_v)")
        elif code == CVTTSD2SI:
            d, s = u[1], u[2]
            sb.line(f"_v = xm[{s}]")
            with sb.block("if _v != _v or _v == _inf or _v == _ninf:"):
                sb.line(f"rg[{d}] = 0")
            with sb.block("else:"):
                sb.line(f"rg[{d}] = int(_v) & M")
        else:  # pragma: no cover - control uops handled by chunk tails
            raise ReproError(f"cannot generate code for uop {code}")

    def emit_flip(self, sb: SourceBuilder, i: int) -> None:
        """Slow-body armed-injection hook after uop ``i`` (mirrors the
        decoded loop; the XMM route goes through module attributes so
        monkeypatched flip helpers — the chaos bombs — stay visible)."""
        kind = self.inj_kind[i]
        burst = ("((1 << (bit & 63)) | (1 << ((bit + 1) & 63)))"
                 if self.set else "(1 << (bit & 63))")
        with sb.block("if inj == tgt:"):
            sb.line("mc.injected = True")
            sb.line(f"mc.injected_index = {i}")
            if kind == 1:
                sb.line(f"rg[{self.gpr_dest[i]}] ^= {burst}")
                if self.set:
                    sb.line("fl ^= _FM[bit % 5]")
            elif kind == 2:
                d = self.xmm_dest[i]
                sb.line(f"xm[{d}] = _mach._b2f(_mach._f2b(xm[{d}])"
                        f" ^ {burst})")
            else:
                sb.line("fl ^= _FM[bit % 5]")
                if self.set:
                    sb.line("fl ^= _FM[(bit + 1) % 5]")
        sb.line("inj += 1")

    def emit_cf_site(self, sb: SourceBuilder, i: int, to_expr: str) -> None:
        """Control-flow injection site at a jmp/jcc/call chunk tail:
        counters are exact here (the chunk coalesce already ran and
        value sites carry no ``inj`` under cf), so a hit records the
        corrupted edge and exits to the driver, which re-enters at the
        redirect pc — through :func:`careful_until_leader` when the
        landing point is not a leader."""
        n = len(self.uops)
        with sb.block("if inj == tgt:"):
            sb.line("mc.injected = True")
            sb.line(f"_rd = bit % {n}")
            sb.line(f"mc._record_cf_edge({i}, {to_expr}, _rd)")
            sb.line("inj += 1")
            sb.line("return (2, _rd)")
        sb.line("inj += 1")

    def emit_tail(self, sb: SourceBuilder, chunks, leaders,
                  L: int, end: int, kind: str) -> None:
        """Chunk exit: counters are already exact when these lines run,
        so raises here need no fixup entries."""
        n = len(self.uops)
        if kind == "off":
            sb.line(f'raise _SimTrap("bad-jump", "pc={n}")')
            return
        if kind == "fall":
            sb.line(f"bb = {leaders[end]}")
            sb.line("continue")
            return
        i = end - 1
        u = self.uops[i]
        code = u[0]
        if code == JMP:
            if self.cf:
                self.emit_cf_site(sb, i, str(u[1]))
            sb.line(f"bb = {leaders[u[1]]}")
            sb.line("continue")
        elif code == JCC:
            t = leaders[u[1]]
            f = leaders[i + 1] if i + 1 < n else None
            if self.cf:
                # condition evaluated once, before the site check —
                # the fault corrupts the transfer, not the decision
                sb.line(f"_cv = {_CC_EXPR[u[2]]}")
                self.emit_cf_site(sb, i,
                                  f"({u[1]} if _cv else {i + 1})")
                cc = "_cv"
            else:
                cc = _CC_EXPR[u[2]]
            if f is None:
                # fall-through past program end: mirror the decoded
                # fetch failure
                with sb.block(f"if {cc}:"):
                    sb.line(f"bb = {t}")
                    sb.line("continue")
                sb.line(f'raise _SimTrap("bad-jump", "pc={n}")')
            else:
                sb.line(f"bb = {t} if {cc} else {f}")
                sb.line("continue")
        elif code == CALL:
            nxt = i + 1
            sb.line(f"_sp = (rg[{_RSP}] - 8) & M")
            with sb.block(f"if _sp < {self.stack_limit} "
                          f"or _sp + 8 > {self.hi}:"):
                sb.line(f'raise _SimTrap("stack-overflow", '
                        f'"call at pc={i}")')
            sb.line("dp += 1")
            with sb.block("if dp > mxd:"):
                sb.line('raise _SimTrap("stack-overflow", '
                        f'f"call depth {{mxd}} exceeded at pc={i}")')
            spq = self.struct_fn("sp", "Q", "pack_into")
            sb.line(f"{spq}(md, _sp, {nxt})")
            sb.line(f"rg[{_RSP}] = _sp")
            if self.cf:
                self.emit_cf_site(sb, i, str(u[1]))
            sb.line(f"bb = {leaders[u[1]]}")
            sb.line("continue")
        elif code == RET:
            upq = self.struct_fn("up", "Q", "unpack_from")
            sb.line(f"_sp = rg[{_RSP}]")
            with sb.block(f"if _sp < {self.lo} or _sp + 8 > {self.hi}:"):
                sb.line('raise _SimTrap("segfault", '
                        'f"ret with rsp={_sp:#x}")')
            sb.line(f"_ra = {upq}(md, _sp)[0]")
            sb.line(f"rg[{_RSP}] = (_sp + 8) & M")
            with sb.block(f"if _ra == {_SENTINEL_RET}:"):
                sb.line("return (1,)")
            with sb.block(f"if _ra >= {n}:"):
                sb.line('raise _SimTrap("bad-jump", f"ret to {_ra:#x}")')
            sb.line("dp -= 1")
            sb.line("_k = _L.get(_ra)")
            with sb.block("if _k is None:"):
                sb.line("return (2, _ra)")
            sb.line("bb = _k")
            sb.line("continue")
        elif code == UD2:
            # the raising line below is the UD2 "execution" itself —
            # counters already include it
            sb.line(f'raise _SimTrap("unreachable", "ud2 at pc={i}")')
        else:  # pragma: no cover
            raise ReproError(f"bad chunk terminator uop {code}")

    def _register(self, first: int, stop: int,
                  s_off: int, inj_off: int, pc: int) -> None:
        for ln in range(first, stop):
            self.fix[ln] = (s_off, inj_off, pc)

    def emit_chunk(self, sb: SourceBuilder, chunks, leaders, k: int) -> None:
        L, end, kind = chunks[k]
        inj_kind = self.inj_kind
        span_len = end - L
        body_end = end - 1 if kind == "ctl" else end
        ninj = sum(1 for i in range(L, end) if inj_kind[i])
        if kind == "ctl" and inj_kind[end - 1]:  # pragma: no cover
            raise ReproError("control uop with injectable destination")
        with sb.block(f"if s + {span_len} > ms:"):
            sb.line(f"return (0, {L})")
        if ninj:
            with sb.block(f"if inj <= tgt < inj + {ninj}:"):
                for i in range(L, body_end):
                    sb.line("s += 1")
                    first = sb.next_lineno
                    self.emit_uop(sb, i)
                    # registered so a stray OverflowError converts to
                    # the same SimTrap the decoded tier raises; the
                    # counters are already exact (offsets 0)
                    self._register(first, sb.next_lineno, 0, 0, i)
                    if inj_kind[i]:
                        self.emit_flip(sb, i)
                if kind == "ctl":
                    sb.line("s += 1")
                self.emit_tail(sb, chunks, leaders, L, end, kind)
        npre = 0
        for pos, i in enumerate(range(L, body_end)):
            first = sb.next_lineno
            self.emit_uop(sb, i)
            self._register(first, sb.next_lineno, pos + 1, npre, i)
            if inj_kind[i]:
                npre += 1
        sb.line(f"s += {span_len}")
        if ninj:
            sb.line(f"inj += {ninj}")
        self.emit_tail(sb, chunks, leaders, L, end, kind)

    def emit(self, sb: SourceBuilder, chunks, leaders) -> None:
        sb.line("def _asm(mc, st, c, bb):")
        sb.indent()
        for pre in ("rg = st.regs", "xm = st.xmm", "md = st.data",
                    "out = st.outputs", "fl = st.fl", "dp = st.depth",
                    "mxd = st.max_depth", "ms = mc.max_steps",
                    "s = c[0]", "inj = c[1]", "tgt = c[2]", "bit = c[3]"):
            sb.line(pre)
        sb.line("try:")
        sb.indent()
        sb.line("while 1:")
        sb.indent()

        def emit_tree(lo: int, hi: int) -> None:
            if hi - lo == 1:
                self.emit_chunk(sb, chunks, leaders, lo)
            elif hi - lo == 2:
                with sb.block(f"if bb == {lo}:"):
                    self.emit_chunk(sb, chunks, leaders, lo)
                with sb.block("else:"):
                    self.emit_chunk(sb, chunks, leaders, lo + 1)
            else:
                mid = (lo + hi) // 2
                with sb.block(f"if bb < {mid}:"):
                    emit_tree(lo, mid)
                with sb.block("else:"):
                    emit_tree(mid, hi)

        emit_tree(0, len(chunks))
        sb.dedent()  # while
        sb.dedent()  # try
        sb.line("except OverflowError as e:")
        sb.indent()
        sb.line("_o = _FIX.get(e.__traceback__.tb_lineno)")
        with sb.block("if _o is not None:"):
            sb.line("s += _o[0]; inj += _o[1]")
            sb.line("raise _SimTrap('overflow', 'pc=%d' % _o[2]) from None")
        sb.line("raise")
        sb.dedent()
        sb.line("except BaseException as e:")
        sb.indent()
        sb.line("_o = _FIX.get(e.__traceback__.tb_lineno)")
        with sb.block("if _o is not None:"):
            sb.line("s += _o[0]; inj += _o[1]")
        sb.line("raise")
        sb.dedent()
        sb.line("finally:")
        sb.indent()
        sb.line("c[0] = s; c[1] = inj")
        sb.line("st.fl = fl")
        sb.line("st.depth = dp")
        sb.dedent()
        sb.dedent()  # def


def _generate(program: CompiledProgram, mem: Memory,
              fault_model: str = "seu") -> CodegenProgram:
    dp = decode_program(program, mem)
    chunks, leaders = _find_chunks(program.uops, program.entry_index)
    em = _Emitter(program, dp, mem.global_base, mem.size, mem.stack_limit,
                  fault_model)
    em.env["_L"] = leaders
    sb = SourceBuilder()
    em.emit(sb, chunks, leaders)
    source = sb.source()
    code = compile_generated(
        source, f"<asm-codegen:{len(program.uops)}u"
                f"@{program.entry_index}>")
    exec(code, em.env)
    return CodegenProgram(program, em.env["_asm"], leaders, source, em.env)


def careful_until_leader(mc, st, dp: DecodedProgram,
                         leaders: Dict[int, int], c: List[int],
                         pc: int) -> int:
    """Single-step decoded closures from a non-leader ``pc`` (reachable
    only via a corrupted return address) until execution re-joins a
    leader; mirrors the decoded driver loop exactly, including the
    flip hooks and counter placement at every raise point."""
    fns = dp.fns
    fm = mc.fault_model
    cf_fault = fm == "cf"
    set_fault = fm == "set"
    inj_kind = dp.program.cf_kind if cf_fault else dp.program.inj_kind
    n_insts = len(dp.program.uops)
    gpr_dest = dp.gpr_dest
    xmm_dest = dp.xmm_dest
    regs = st.regs
    xmm = st.xmm
    max_steps = mc.max_steps
    steps = c[0]
    injectable = c[1]
    target = c[2]
    inject_bit = c[3]
    try:
        while True:
            if pc in leaders:
                return pc
            try:
                f = fns[pc]
            except IndexError:
                raise SimTrap("bad-jump", f"pc={pc}") from None
            kind = inj_kind[pc]
            steps += 1
            if steps > max_steps:
                raise SimTrap("step-budget",
                              f"exceeded {max_steps} steps")
            cur = pc
            try:
                pc = f(st)
            except OverflowError:
                raise SimTrap("overflow", f"pc={cur}") from None
            if kind:
                if injectable == target:
                    mc.injected = True
                    mc.injected_index = cur
                    if cf_fault:
                        red = inject_bit % n_insts
                        mc._record_cf_edge(cur, pc, red)
                        pc = red
                    elif kind == 1:
                        if set_fault:
                            regs[gpr_dest[cur]] ^= (
                                (1 << (inject_bit & 63))
                                | (1 << ((inject_bit + 1) & 63)))
                            st.fl ^= (1, 2, 4, 8, 16)[inject_bit % 5]
                        else:
                            regs[gpr_dest[cur]] ^= 1 << (inject_bit & 63)
                    elif kind == 2:
                        d = xmm_dest[cur]
                        mask = 1 << (inject_bit & 63)
                        if set_fault:
                            mask |= 1 << ((inject_bit + 1) & 63)
                        xmm[d] = _machine._b2f(_machine._f2b(xmm[d]) ^ mask)
                    else:
                        st.fl ^= (1, 2, 4, 8, 16)[inject_bit % 5]
                        if set_fault:
                            st.fl ^= (1, 2, 4, 8, 16)[(inject_bit + 1) % 5]
                injectable += 1
    finally:
        c[0] = steps
        c[1] = injectable
