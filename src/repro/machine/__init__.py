"""Assembly machine — the "PIN level" execution and injection layer."""

from .machine import (  # noqa: F401
    AsmMachine,
    CompiledProgram,
    DEFAULT_MAX_STEPS,
    compile_program,
    run_asm,
)

__all__ = ["AsmMachine", "CompiledProgram", "compile_program", "run_asm",
           "DEFAULT_MAX_STEPS"]
