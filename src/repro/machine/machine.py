"""The assembly machine — the "PIN level" execution and injection layer.

Executes a lowered :class:`~repro.backend.program.FlatProgram` on a
simulated x86-like CPU: 16 GPRs, 16 XMM registers, ZF/SF/OF/CF/UF
flags, and the same byte-addressable memory image as the IR interpreter
(so program output is bit-identical across layers).

For speed on a single host core, the instruction stream is *pre-compiled*
once into compact integer-coded micro-ops (a profile-guided optimisation
following the scientific-Python guidance: the campaign loop executes
millions of these, so attribute lookups and string compares are hoisted
out of the hot loop).

Fault models (PIN-style, matching §4.3; see :mod:`repro.faultmodel`):

``seu``  a campaign selects one dynamic instruction *with a register
         destination* and flips one bit of that destination after the
         instruction writes it — GPR/XMM bits 0..63, or one of the five
         FLAGS bits for ``cmp``/``test``/``ucomisd``;
``set``  same sites, but the transient corrupts the whole datapath:
         two adjacent destination bits flip, and a GPR-writing ALU
         result additionally flips one FLAGS bit (a FLAGS site flips
         two flags);
``cf``   sites are the dynamic control transfers (``jmp``/``jcc``/
         ``call``; ``ret`` and runtime calls excluded) and the fault
         redirects the transfer to ``bit % len(uops)`` — a uniformly
         drawn legal instruction boundary.  The corrupted edge is
         reported in ``ExecResult.extra["cf_edge"]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..contain import (
    DEFAULT_MAX_CALL_DEPTH,
    DEFAULT_MEM_BUDGET,
    DEFAULT_OUTPUT_BUDGET,
    HOST_ESCAPE,
    OutputBuffer,
    containment_enabled,
)
from ..errors import (
    CheckpointsDone, FaultDetected, LoweringError, ReproError, SimTrap,
)
from ..execresult import ExecResult, RunStatus
from ..faultmodel import validate_fault_model
from ..interp.layout import GlobalLayout
from ..ir.intrinsics import INTRINSICS, math_impl
from ..memorymodel import Memory
from ..utils.fmt import format_char, format_f64, format_i64
from ..backend.isa import AsmInst, GPRS, Imm, Label, Mem, Reg
from ..backend.program import FlatProgram

__all__ = ["AsmMachine", "AsmSnapshot", "CompiledProgram",
           "compile_program", "run_asm", "DEFAULT_MAX_STEPS"]

DEFAULT_MAX_STEPS = 100_000_000
_MASK64 = (1 << 64) - 1
_SENTINEL_RET = 0x7FFF_FFFF_FFFF_FFF0

_GPR_INDEX = {name: i for i, name in enumerate(GPRS)}
_XMM_INDEX = {f"xmm{i}": i for i in range(16)}
_RSP = _GPR_INDEX["rsp"]
_RBP = _GPR_INDEX["rbp"]
_RAX = _GPR_INDEX["rax"]
_RDX = _GPR_INDEX["rdx"]
_RCX = _GPR_INDEX["rcx"]
_RDI = _GPR_INDEX["rdi"]

_CC_IDS = {
    "e": 0, "ne": 1, "l": 2, "le": 3, "g": 4, "ge": 5,
    "b": 6, "be": 7, "a": 8, "ae": 9,
    "fe": 10, "fne": 11, "fb": 12, "fbe": 13, "fa": 14, "fae": 15,
}

#: flag-word bit assignment shared by the injection paths below (the
#: ``(1, 2, 4, 8, 16)[bit % 5]`` tuples) and the bit-level liveness
#: analysis (:mod:`repro.analysis.bitlive`): a drawn fault coordinate
#: ``b`` at a FLAGS site flips the flag at position ``b % 5`` in this
#: order
FLAG_BITS = {"zf": 1, "sf": 2, "of": 4, "cf": 8, "uf": 16}

# micro-op opcodes
(
    MOV_RR, MOV_RI, MOV_RM, MOV_MR, MOV_MI,
    MOVSD_XX, MOVSD_XI, MOVSD_XM, MOVSD_MX,
    LEA,
    ADD_RR, ADD_RI, SUB_RR, SUB_RI, IMUL_RR, IMUL_RI,
    AND_RR, AND_RI, OR_RR, OR_RI, XOR_RR, XOR_RI,
    SHL_RC, SHL_RI, SAR_RC, SAR_RI, SHR_RC, SHR_RI,
    IDIV,
    CMP_RR, CMP_RI, TEST_RR,
    SETCC, CMOV,
    JMP, JCC, CALL, CALLRT, RET, PUSH, POP,
    ADDSD, SUBSD, MULSD, DIVSD, UCOMISD,
    CVTSI2SD, CVTTSD2SI,
    UD2,
) = range(49)

# runtime (intrinsic) ids
_RT_PRINT_I64 = 0
_RT_PRINT_F64 = 1
_RT_PRINT_CHAR = 2
_RT_DETECT = 3
_RT_MATH1 = 4  # (id, fn)
_RT_MATH2 = 5


class CompiledProgram:
    """Micro-op form of a FlatProgram, ready for repeated execution."""

    def __init__(
        self,
        flat: FlatProgram,
        uops: List[tuple],
        inj_kind: List[int],
        entry_index: int,
        injectable_indices: List[int],
        cf_kind: Optional[List[int]] = None,
    ):
        self.flat = flat
        self.uops = uops
        #: 0 = not a site, 1 = GPR dest, 2 = XMM dest, 3 = FLAGS dest
        self.inj_kind = inj_kind
        #: control-flow-fault sites: 1 for jmp/jcc/call uops, else 0
        self.cf_kind = (cf_kind if cf_kind is not None else
                        [1 if u[0] in (JMP, JCC, CALL) else 0
                         for u in uops])
        self.entry_index = entry_index
        self.injectable_static = injectable_indices

    def inst_at(self, index: int) -> AsmInst:
        return self.flat.insts[index]


def _mem_key(mem: Mem) -> Tuple[int, int]:
    base = _GPR_INDEX[mem.base.name] if mem.base is not None else -1
    return base, mem.disp


def _resolve_label(flat: FlatProgram, fn: str, label: Label) -> int:
    qualified = f"{fn}.{label.name}"
    idx = flat.label_index.get(qualified)
    if idx is None:
        idx = flat.label_index.get(label.name)
    if idx is None:
        raise LoweringError(f"unresolved label {label.name!r} in {fn}")
    return idx


_MATH_RT: Dict[str, tuple] = {}


def _runtime_id(name: str) -> tuple:
    """(kind, payload) runtime descriptor for an intrinsic call."""
    if name == "print_i64":
        return (_RT_PRINT_I64, None)
    if name == "print_f64":
        return (_RT_PRINT_F64, None)
    if name == "print_char":
        return (_RT_PRINT_CHAR, None)
    if name == "__detect":
        return (_RT_DETECT, None)
    if name in INTRINSICS:
        params, _ = INTRINSICS[name]
        fn = _MATH_RT.get(name)
        if fn is None:
            fn = math_impl(name)
            _MATH_RT[name] = fn
        return ((_RT_MATH2 if len(params) == 2 else _RT_MATH1), fn)
    raise LoweringError(f"call to unknown symbol {name!r}")


def compile_program(flat: FlatProgram) -> CompiledProgram:
    """Translate AsmInsts into integer-coded micro-ops."""
    uops: List[tuple] = []
    inj_kind: List[int] = []
    injectable: List[int] = []

    int_2op = {"add": (ADD_RR, ADD_RI), "sub": (SUB_RR, SUB_RI),
               "imul": (IMUL_RR, IMUL_RI), "and": (AND_RR, AND_RI),
               "or": (OR_RR, OR_RI), "xor": (XOR_RR, XOR_RI)}
    shifts = {"shl": (SHL_RC, SHL_RI), "sar": (SAR_RC, SAR_RI),
              "shr": (SHR_RC, SHR_RI)}
    fp_2op = {"addsd": ADDSD, "subsd": SUBSD, "mulsd": MULSD, "divsd": DIVSD}

    for i, inst in enumerate(flat.insts):
        fn = flat.inst_fn[i]
        op = inst.opcode
        ops = inst.operands
        if op == "mov":
            dst, src = ops
            if isinstance(dst, Reg):
                d = _GPR_INDEX[dst.name]
                if isinstance(src, Reg):
                    uops.append((MOV_RR, d, _GPR_INDEX[src.name]))
                elif isinstance(src, Imm):
                    uops.append((MOV_RI, d, int(src.value) & _MASK64))
                else:
                    base, disp = _mem_key(src)
                    uops.append((MOV_RM, d, base, disp, inst.size))
            else:
                base, disp = _mem_key(dst)
                if isinstance(src, Reg):
                    uops.append((MOV_MR, base, disp,
                                 _GPR_INDEX[src.name], inst.size))
                else:
                    uops.append((MOV_MI, base, disp,
                                 int(src.value) & _MASK64, inst.size))
        elif op == "movsd":
            dst, src = ops
            if isinstance(dst, Reg):
                d = _XMM_INDEX[dst.name]
                if isinstance(src, Reg):
                    uops.append((MOVSD_XX, d, _XMM_INDEX[src.name]))
                elif isinstance(src, Imm):
                    uops.append((MOVSD_XI, d, float(src.value)))
                else:
                    base, disp = _mem_key(src)
                    uops.append((MOVSD_XM, d, base, disp))
            else:
                base, disp = _mem_key(dst)
                uops.append((MOVSD_MX, base, disp, _XMM_INDEX[src.name]))
        elif op == "lea":
            dst, src = ops
            base, disp = _mem_key(src)
            uops.append((LEA, _GPR_INDEX[dst.name], base, disp))
        elif op in int_2op:
            dst, src = ops
            rr, ri = int_2op[op]
            d = _GPR_INDEX[dst.name]
            if isinstance(src, Imm):
                uops.append((ri, d, int(src.value) & _MASK64))
            else:
                uops.append((rr, d, _GPR_INDEX[src.name]))
        elif op in shifts:
            dst, src = ops
            rc, ri = shifts[op]
            d = _GPR_INDEX[dst.name]
            if isinstance(src, Imm):
                uops.append((ri, d, int(src.value) & 63))
            else:
                uops.append((rc, d))  # count always in rcx
        elif op == "idiv":
            uops.append((IDIV, _GPR_INDEX[ops[0].name]))
        elif op == "cmp":
            a, b = ops
            ai = _GPR_INDEX[a.name]
            if isinstance(b, Imm):
                uops.append((CMP_RI, ai, int(b.value) & _MASK64))
            else:
                uops.append((CMP_RR, ai, _GPR_INDEX[b.name]))
        elif op == "test":
            a, b = ops
            uops.append((TEST_RR, _GPR_INDEX[a.name], _GPR_INDEX[b.name]))
        elif op == "setcc":
            uops.append((SETCC, _GPR_INDEX[ops[0].name], _CC_IDS[inst.cc]))
        elif op == "cmov":
            dst, src = ops
            uops.append((CMOV, _GPR_INDEX[dst.name],
                         _GPR_INDEX[src.name], _CC_IDS[inst.cc]))
        elif op == "jmp":
            uops.append((JMP, _resolve_label(flat, fn, ops[0])))
        elif op == "jcc":
            uops.append((JCC, _resolve_label(flat, fn, ops[0]),
                         _CC_IDS[inst.cc]))
        elif op == "call":
            target = ops[0]
            assert isinstance(target, Label)
            if target.name in flat.label_index:
                uops.append((CALL, flat.label_index[target.name]))
            else:
                kind, payload = _runtime_id(target.name)
                uops.append((CALLRT, kind, payload))
        elif op == "ret":
            uops.append((RET,))
        elif op == "push":
            uops.append((PUSH, _GPR_INDEX[ops[0].name]))
        elif op == "pop":
            uops.append((POP, _GPR_INDEX[ops[0].name]))
        elif op in fp_2op:
            dst, src = ops
            uops.append((fp_2op[op], _XMM_INDEX[dst.name],
                         _XMM_INDEX[src.name]))
        elif op == "ucomisd":
            a, b = ops
            uops.append((UCOMISD, _XMM_INDEX[a.name], _XMM_INDEX[b.name]))
        elif op == "cvtsi2sd":
            dst, src = ops
            uops.append((CVTSI2SD, _XMM_INDEX[dst.name], _GPR_INDEX[src.name]))
        elif op == "cvttsd2si":
            dst, src = ops
            uops.append((CVTTSD2SI, _GPR_INDEX[dst.name], _XMM_INDEX[src.name]))
        elif op == "ud2":
            uops.append((UD2,))
        else:  # pragma: no cover
            raise LoweringError(f"cannot compile opcode {op!r}")

        kind = inst.dest_kind()
        if kind == "gpr":
            inj_kind.append(1)
            injectable.append(i)
        elif kind == "xmm":
            inj_kind.append(2)
            injectable.append(i)
        elif kind == "flags":
            inj_kind.append(3)
            injectable.append(i)
        else:
            inj_kind.append(0)

    entry = flat.label_index[flat.entry_label]
    return CompiledProgram(flat, uops, inj_kind, entry, injectable)


def _sx(v: int) -> int:
    """Unsigned 64 -> signed."""
    return v - (1 << 64) if v >= (1 << 63) else v


def _f2b(value: float) -> int:
    import struct

    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _b2f(bits: int) -> float:
    import struct

    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


class AsmSnapshot:
    """Frozen machine state captured at an injection-site boundary.

    Snapshots are taken *before* the watched instruction executes (the
    fault model flips the destination *after* execution, so a replay
    resumed from the snapshot re-executes the instruction and then
    applies the flip).  All fields are immutable so one snapshot can
    seed any number of replays.
    """

    __slots__ = ("mem", "heap_break", "regs", "xmm", "fl", "pc",
                 "steps", "injectable", "outputs", "depth")

    def __init__(self, mem: bytes, heap_break: int, regs: tuple,
                 xmm: tuple, fl: int, pc: int, steps: int,
                 injectable: int, outputs: tuple, depth: int = 0):
        self.mem = mem
        self.heap_break = heap_break
        self.regs = regs
        self.xmm = xmm
        self.fl = fl
        self.pc = pc
        self.steps = steps
        self.injectable = injectable
        self.outputs = outputs
        self.depth = depth


class AsmMachine:
    """One machine instance per execution (mutable run state)."""

    def __init__(
        self,
        program: CompiledProgram,
        layout: GlobalLayout,
        max_steps: int = DEFAULT_MAX_STEPS,
        heap_size: int = 1 << 20,
        stack_size: int = 1 << 19,
        trace=None,
        dispatch: str = "decoded",
        contain: Optional[bool] = None,
        max_call_depth: Optional[int] = None,
        output_budget: Optional[int] = None,
        mem_budget: Optional[int] = None,
        fault_model: Optional[str] = None,
    ):
        if dispatch not in ("decoded", "naive", "codegen"):
            raise ReproError(f"unknown dispatch mode {dispatch!r}")
        self.dispatch = dispatch
        self.fault_model = validate_fault_model(fault_model)
        self.program = program
        self.layout = layout
        self.max_steps = max_steps
        # fault containment (DESIGN §11): resource budgets + host-escape
        # boundary, identical in both dispatch modes
        self.contain = containment_enabled(contain)
        if self.contain:
            self.max_call_depth = (max_call_depth if max_call_depth
                                   is not None else DEFAULT_MAX_CALL_DEPTH)
            if mem_budget is None:
                mem_budget = DEFAULT_MEM_BUDGET
            outputs: List[str] = OutputBuffer(
                output_budget if output_budget is not None
                else DEFAULT_OUTPUT_BUDGET)
        else:
            self.max_call_depth = 1 << 62
            mem_budget = None
            outputs = []
        self._armed = False
        self.memory: Memory = layout.make_memory(
            heap_size, stack_size, mem_budget=mem_budget)
        self.outputs = outputs
        self.dyn_total = 0
        self.dyn_injectable = 0
        self.injected = False
        self.injected_index: Optional[int] = None  # static asm index
        self._cf_edge: Optional[Dict[str, object]] = None
        self.per_inst_counts: Optional[Dict[int, int]] = None
        self._counts: Optional[List[int]] = None
        # trace tap (off by default; see repro.trace) — accepts a
        # TraceConfig or a ready MachineTracer
        self.tracer = None
        if trace is not None:
            from ..trace.tap import MachineTracer

            tracer = (
                trace if isinstance(trace, MachineTracer)
                else MachineTracer(trace)
            )
            tracer.attach(self)
            self.tracer = tracer

    def run(
        self,
        inject_index: Optional[int] = None,
        inject_bit: int = 0,
        profile: bool = False,
        resume_from: Optional[AsmSnapshot] = None,
        checkpoints: Optional[Sequence[int]] = None,
        checkpoint_cb=None,
    ) -> ExecResult:
        if profile:
            self._counts = [0] * len(self.program.uops)
        early = False
        escape = None
        self._armed = False
        self._cf_edge = None
        try:
            if self.dispatch == "decoded":
                self._loop_decoded(inject_index, inject_bit,
                                   resume_from, checkpoints, checkpoint_cb)
            elif self.dispatch == "codegen":
                # the generated fast path has no per-step tap points;
                # snapshot streaming, profiling and tracing fall back to
                # the (bit-identical) decoded core
                if (checkpoints is not None or self._counts is not None
                        or self.tracer is not None):
                    self._loop_decoded(inject_index, inject_bit,
                                       resume_from, checkpoints,
                                       checkpoint_cb)
                else:
                    self._loop_codegen(inject_index, inject_bit,
                                       resume_from)
            else:
                if resume_from is not None or checkpoints is not None:
                    raise ReproError(
                        "checkpoint-replay requires dispatch='decoded'")
                self._loop(inject_index, inject_bit)
            status, trap = RunStatus.OK, None
        except CheckpointsDone:
            status, trap = RunStatus.OK, None
            early = True
        except FaultDetected:
            status, trap = RunStatus.DETECTED, None
        except SimTrap as t:
            status, trap = RunStatus.TRAP, t.kind
        except Exception as exc:
            # the containment boundary (DESIGN §11): under an injection,
            # any host exception escaping a faulty step is a DUE, not a
            # harness crash.  Golden/uninjected runs re-raise — a host
            # exception there is a real toolchain bug and must surface.
            if not (self.contain and self._armed
                    and inject_index is not None):
                raise
            status, trap = RunStatus.TRAP, HOST_ESCAPE
            escape = {"exc_type": type(exc).__name__, "detail": str(exc),
                      "layer": "asm", "step": self.dyn_total,
                      "index": self.dyn_injectable}
        if self._counts is not None:
            self.per_inst_counts = {
                i: c for i, c in enumerate(self._counts) if c
            }
        inst = (
            self.program.inst_at(self.injected_index)
            if self.injected_index is not None
            else None
        )
        extra: Dict[str, object] = {}
        if inst is not None:
            extra.update(
                asm_index=self.injected_index,
                asm_role=inst.role,
                asm_opcode=inst.opcode,
            )
        if self.tracer is not None:
            extra["trace"] = self.tracer.trace
        if self._cf_edge is not None:
            extra["cf_edge"] = self._cf_edge
        if early:
            extra["early_stop"] = True
        if escape is not None:
            extra["host_escape"] = escape
        return ExecResult(
            status=status,
            output="".join(self.outputs),
            dyn_total=self.dyn_total,
            dyn_injectable=self.dyn_injectable,
            trap_kind=trap,
            injected=self.injected,
            injected_iid=inst.prov_iid if inst is not None else None,
            per_inst_counts=self.per_inst_counts,
            extra=extra,
        )

    # -- the hot loop -------------------------------------------------------

    def _loop(self, inject_index: Optional[int], inject_bit: int) -> None:
        prog = self.program
        uops = prog.uops
        fm = self.fault_model
        cf_fault = fm == "cf"
        set_fault = fm == "set"
        # the injectable-site universe follows the fault model: register
        # destinations for seu/set, dynamic control transfers for cf
        inj_kind = prog.cf_kind if cf_fault else prog.inj_kind
        n_insts = len(uops)
        mem = self.memory
        data = mem.data
        lo = mem.global_base
        hi = mem.size
        stack_limit = mem.stack_limit
        outputs = self.outputs

        regs = [0] * 16
        xmm = [0.0] * 16
        zf = sf = of = cf = uf = 0

        # set up the stack with a sentinel return address
        sp = mem.stack_base - 8
        data[sp : sp + 8] = _SENTINEL_RET.to_bytes(8, "little")
        regs[_RSP] = sp
        regs[_RBP] = sp

        pc = prog.entry_index
        steps = 0
        injectable = 0
        depth = 0
        max_call_depth = self.max_call_depth
        max_steps = self.max_steps
        counts = self._counts
        tracer = self.tracer
        hook = tracer.hook if tracer is not None else None
        # single per-step test whether profiling or tracing: keeps the
        # disabled path as cheap as the profiling-only loop always was
        track = counts is not None or hook is not None

        target = inject_index if inject_index is not None else -1
        injected = False
        self._armed = True

        try:
            while True:
                if pc < 0 or pc >= n_insts:
                    raise SimTrap("bad-jump", f"pc={pc}")
                u = uops[pc]
                steps += 1
                if steps > max_steps:
                    self.dyn_total = steps
                    self.dyn_injectable = injectable
                    raise SimTrap("step-budget",
                                  f"exceeded {max_steps} steps")
                if track:
                    if counts is not None:
                        counts[pc] += 1
                    if hook is not None:
                        hook(pc, regs, xmm)

                code = u[0]
                cur = pc
                pc += 1

                try:
                    if code == MOV_RR:
                        regs[u[1]] = regs[u[2]]
                    elif code == MOV_RI:
                        regs[u[1]] = u[2]
                    elif code == MOV_RM:
                        base = u[2]
                        addr = (u[3] + (regs[base] if base >= 0 else 0)) & _MASK64
                        size = u[4]
                        if addr < lo or addr + size > hi:
                            raise SimTrap("segfault", f"read {size} at {addr:#x}")
                        regs[u[1]] = int.from_bytes(data[addr : addr + size], "little")
                    elif code == MOV_MR:
                        base = u[1]
                        addr = (u[2] + (regs[base] if base >= 0 else 0)) & _MASK64
                        size = u[4]
                        if addr < lo or addr + size > hi:
                            raise SimTrap("segfault", f"write {size} at {addr:#x}")
                        data[addr : addr + size] = (regs[u[3]] & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
                    elif code == MOV_MI:
                        base = u[1]
                        addr = (u[2] + (regs[base] if base >= 0 else 0)) & _MASK64
                        size = u[4]
                        if addr < lo or addr + size > hi:
                            raise SimTrap("segfault", f"write {size} at {addr:#x}")
                        data[addr : addr + size] = (u[3] & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
                    elif code == MOVSD_XX:
                        xmm[u[1]] = xmm[u[2]]
                    elif code == MOVSD_XI:
                        xmm[u[1]] = u[2]
                    elif code == MOVSD_XM:
                        base = u[2]
                        addr = (u[3] + (regs[base] if base >= 0 else 0)) & _MASK64
                        if addr < lo or addr + 8 > hi:
                            raise SimTrap("segfault", f"fp read at {addr:#x}")
                        xmm[u[1]] = _b2f(int.from_bytes(data[addr : addr + 8], "little"))
                    elif code == MOVSD_MX:
                        base = u[1]
                        addr = (u[2] + (regs[base] if base >= 0 else 0)) & _MASK64
                        if addr < lo or addr + 8 > hi:
                            raise SimTrap("segfault", f"fp write at {addr:#x}")
                        data[addr : addr + 8] = _f2b(xmm[u[3]]).to_bytes(8, "little")
                    elif code == LEA:
                        base = u[2]
                        regs[u[1]] = (u[3] + (regs[base] if base >= 0 else 0)) & _MASK64
                    elif code == ADD_RR or code == ADD_RI:
                        a = regs[u[1]]
                        b = regs[u[2]] if code == ADD_RR else u[2]
                        s = a + b
                        cf = 1 if s > _MASK64 else 0
                        r = s & _MASK64
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        of = ((~(a ^ b)) & (a ^ r)) >> 63 & 1
                        uf = 0
                        regs[u[1]] = r
                    elif code == SUB_RR or code == SUB_RI:
                        a = regs[u[1]]
                        b = regs[u[2]] if code == SUB_RR else u[2]
                        cf = 1 if a < b else 0
                        r = (a - b) & _MASK64
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        of = ((a ^ b) & (a ^ r)) >> 63 & 1
                        uf = 0
                        regs[u[1]] = r
                    elif code == IMUL_RR or code == IMUL_RI:
                        a = _sx(regs[u[1]])
                        b = _sx(regs[u[2]] if code == IMUL_RR else u[2])
                        r = (a * b) & _MASK64
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == AND_RR or code == AND_RI:
                        r = regs[u[1]] & (regs[u[2]] if code == AND_RR else u[2])
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == OR_RR or code == OR_RI:
                        r = regs[u[1]] | (regs[u[2]] if code == OR_RR else u[2])
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == XOR_RR or code == XOR_RI:
                        r = regs[u[1]] ^ (regs[u[2]] if code == XOR_RR else u[2])
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == SHL_RC or code == SHL_RI:
                        n = (regs[_RCX] if code == SHL_RC else u[2]) & 63
                        r = (regs[u[1]] << n) & _MASK64
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == SAR_RC or code == SAR_RI:
                        n = (regs[_RCX] if code == SAR_RC else u[2]) & 63
                        r = (_sx(regs[u[1]]) >> n) & _MASK64
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == SHR_RC or code == SHR_RI:
                        n = (regs[_RCX] if code == SHR_RC else u[2]) & 63
                        r = regs[u[1]] >> n
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                        regs[u[1]] = r
                    elif code == IDIV:
                        b = _sx(regs[u[1]])
                        if b == 0:
                            raise SimTrap("div-by-zero")
                        a = _sx(regs[_RAX])
                        q = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            q = -q
                        regs[_RAX] = q & _MASK64
                        regs[_RDX] = (a - q * b) & _MASK64
                        zf = sf = of = cf = uf = 0
                    elif code == CMP_RR or code == CMP_RI:
                        a = regs[u[1]]
                        b = regs[u[2]] if code == CMP_RR else u[2]
                        cf = 1 if a < b else 0
                        r = (a - b) & _MASK64
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        of = ((a ^ b) & (a ^ r)) >> 63 & 1
                        uf = 0
                    elif code == TEST_RR:
                        r = regs[u[1]] & regs[u[2]]
                        zf = 1 if r == 0 else 0
                        sf = r >> 63
                        cf = of = uf = 0
                    elif code == SETCC:
                        regs[u[1]] = _eval_cc(u[2], zf, sf, of, cf, uf)
                    elif code == CMOV:
                        if _eval_cc(u[3], zf, sf, of, cf, uf):
                            regs[u[1]] = regs[u[2]]
                    elif code == JMP:
                        pc = u[1]
                    elif code == JCC:
                        if _eval_cc(u[2], zf, sf, of, cf, uf):
                            pc = u[1]
                    elif code == CALL:
                        sp = (regs[_RSP] - 8) & _MASK64
                        if sp < stack_limit or sp + 8 > hi:
                            raise SimTrap("stack-overflow", f"call at pc={cur}")
                        depth += 1
                        if depth > max_call_depth:
                            raise SimTrap(
                                "stack-overflow",
                                f"call depth {max_call_depth} exceeded "
                                f"at pc={cur}")
                        data[sp : sp + 8] = pc.to_bytes(8, "little")
                        regs[_RSP] = sp
                        pc = u[1]
                    elif code == CALLRT:
                        self._runtime(u[1], u[2], regs, xmm, outputs)
                    elif code == RET:
                        sp = regs[_RSP]
                        if sp < lo or sp + 8 > hi:
                            raise SimTrap("segfault", f"ret with rsp={sp:#x}")
                        addr = int.from_bytes(data[sp : sp + 8], "little")
                        regs[_RSP] = (sp + 8) & _MASK64
                        if addr == _SENTINEL_RET:
                            break  # main returned
                        if addr >= n_insts:
                            raise SimTrap("bad-jump", f"ret to {addr:#x}")
                        depth -= 1
                        pc = addr
                    elif code == PUSH:
                        sp = (regs[_RSP] - 8) & _MASK64
                        if sp < stack_limit or sp + 8 > hi:
                            raise SimTrap("stack-overflow", f"push at pc={cur}")
                        data[sp : sp + 8] = regs[u[1]].to_bytes(8, "little")
                        regs[_RSP] = sp
                    elif code == POP:
                        sp = regs[_RSP]
                        if sp < lo or sp + 8 > hi:
                            raise SimTrap("segfault", f"pop with rsp={sp:#x}")
                        regs[u[1]] = int.from_bytes(data[sp : sp + 8], "little")
                        regs[_RSP] = (sp + 8) & _MASK64
                    elif code == ADDSD:
                        xmm[u[1]] = _fp(xmm[u[1]] + xmm[u[2]])
                    elif code == SUBSD:
                        xmm[u[1]] = _fp(xmm[u[1]] - xmm[u[2]])
                    elif code == MULSD:
                        xmm[u[1]] = _fp(xmm[u[1]] * xmm[u[2]])
                    elif code == DIVSD:
                        a, b = xmm[u[1]], xmm[u[2]]
                        if b == 0.0:
                            xmm[u[1]] = (
                                float("nan") if a == 0.0 or math.isnan(a)
                                else (float("inf") if a > 0 else float("-inf"))
                            )
                        else:
                            xmm[u[1]] = _fp(a / b)
                    elif code == UCOMISD:
                        a, b = xmm[u[1]], xmm[u[2]]
                        if math.isnan(a) or math.isnan(b):
                            uf, zf, cf = 1, 1, 1
                            sf = of = 0
                        else:
                            uf = 0
                            zf = 1 if a == b else 0
                            cf = 1 if a < b else 0
                            sf = of = 0
                    elif code == CVTSI2SD:
                        xmm[u[1]] = float(_sx(regs[u[2]]))
                    elif code == CVTTSD2SI:
                        f = xmm[u[2]]
                        if math.isnan(f) or math.isinf(f):
                            regs[u[1]] = 0
                        else:
                            regs[u[1]] = int(f) & _MASK64
                    elif code == UD2:
                        raise SimTrap("unreachable", f"ud2 at pc={cur}")
                    else:  # pragma: no cover
                        raise SimTrap("bad-jump", f"bad uop {code}")
                except OverflowError:
                    # huge shift results etc. under faulty inputs
                    raise SimTrap("overflow", f"pc={cur}")

                kind = inj_kind[cur]
                if kind:
                    if injectable == target:
                        injected = True
                        self.injected_index = cur
                        if cf_fault:
                            red = inject_bit % n_insts
                            self._record_cf_edge(cur, pc, red)
                            pc = red
                        elif kind == 1:
                            dest = self._gpr_dest(cur)
                            if set_fault:
                                regs[dest] ^= (
                                    (1 << (inject_bit & 63))
                                    | (1 << ((inject_bit + 1) & 63)))
                                which = inject_bit % 5
                            else:
                                regs[dest] ^= 1 << (inject_bit & 63)
                                which = -1
                            if which == 0:
                                zf ^= 1
                            elif which == 1:
                                sf ^= 1
                            elif which == 2:
                                of ^= 1
                            elif which == 3:
                                cf ^= 1
                            elif which == 4:
                                uf ^= 1
                        elif kind == 2:
                            dest = _XMM_INDEX[
                                self.program.inst_at(cur).dest_reg().name
                            ]
                            mask = 1 << (inject_bit & 63)
                            if set_fault:
                                mask |= 1 << ((inject_bit + 1) & 63)
                            xmm[dest] = _b2f(_f2b(xmm[dest]) ^ mask)
                        else:  # flags
                            for which in (
                                (inject_bit % 5, (inject_bit + 1) % 5)
                                if set_fault else (inject_bit % 5,)
                            ):
                                if which == 0:
                                    zf ^= 1
                                elif which == 1:
                                    sf ^= 1
                                elif which == 2:
                                    of ^= 1
                                elif which == 3:
                                    cf ^= 1
                                else:
                                    uf ^= 1
                    injectable += 1

        finally:
            self.dyn_total = steps
            self.dyn_injectable = injectable
            self.injected = injected
            if tracer is not None:
                tracer.finish(regs, xmm)

    # -- the decoded hot loop -----------------------------------------------

    def _loop_decoded(
        self,
        inject_index: Optional[int],
        inject_bit: int,
        resume_from: Optional[AsmSnapshot] = None,
        watch: Optional[Sequence[int]] = None,
        watch_cb=None,
    ) -> None:
        """Closure-dispatch twin of :meth:`_loop`.

        Identical observable behaviour; additionally supports resuming
        from an :class:`AsmSnapshot` and streaming snapshots out at the
        requested ``watch`` injection indices (ascending order).
        """
        from .decode import AsmState

        prog = self.program
        mem = self.memory
        data = mem.data

        st = AsmState()
        st.data = data
        st.outputs = self.outputs
        st.machine = self

        if resume_from is None:
            regs = [0] * 16
            xmm = [0.0] * 16
            st.fl = 0
            st.depth = 0
            sp = mem.stack_base - 8
            data[sp:sp + 8] = _SENTINEL_RET.to_bytes(8, "little")
            regs[_RSP] = sp
            regs[_RBP] = sp
            pc = prog.entry_index
            steps = 0
            injectable = 0
        else:
            snap = resume_from
            if len(snap.mem) != len(data):
                raise ReproError(
                    "snapshot does not match machine memory geometry")
            data[:] = snap.mem
            mem.heap_break = snap.heap_break
            regs = list(snap.regs)
            xmm = list(snap.xmm)
            st.fl = snap.fl
            st.depth = snap.depth
            pc = snap.pc
            steps = snap.steps
            injectable = snap.injectable
            self.outputs[:] = snap.outputs
            # full reset: one machine may serve many replays
            self.injected_index = None
        st.regs = regs
        st.xmm = xmm
        st.max_depth = self.max_call_depth

        self.injected = False
        self._decoded_core(st, pc, steps, injectable,
                           inject_index, inject_bit, watch, watch_cb)

    def _decoded_core(
        self,
        st,
        pc: int,
        steps: int,
        injectable: int,
        inject_index: Optional[int],
        inject_bit: int,
        watch: Optional[Sequence[int]] = None,
        watch_cb=None,
    ) -> None:
        """The decoded driver loop proper, entered with live counters.

        Split out from :meth:`_loop_decoded` so the codegen tier can
        hand over mid-run (step budget nearly exhausted) with exact
        ``steps``/``injectable`` values.  Reads ``self.injected`` as the
        starting flip state: a hand-over after the flip has been applied
        must not lose it.
        """
        from .decode import _Halt, decode_program

        prog = self.program
        mem = self.memory
        dp = decode_program(prog, mem)
        fns = dp.fns
        fm = self.fault_model
        cf_fault = fm == "cf"
        set_fault = fm == "set"
        inj_kind = prog.cf_kind if cf_fault else prog.inj_kind
        n_insts = len(prog.uops)
        gpr_dest = dp.gpr_dest
        xmm_dest = dp.xmm_dest
        data = st.data
        regs = st.regs
        xmm = st.xmm

        watch_iter = iter(watch) if watch is not None else None
        next_watch = (next(watch_iter, None)
                      if watch_iter is not None else None)

        max_steps = self.max_steps
        counts = self._counts
        tracer = self.tracer
        hook = tracer.hook if tracer is not None else None
        track = counts is not None or hook is not None

        target = inject_index if inject_index is not None else -1
        injected = self.injected
        self._armed = True

        try:
            while True:
                try:
                    f = fns[pc]
                except IndexError:
                    raise SimTrap("bad-jump", f"pc={pc}") from None
                kind = inj_kind[pc]
                if (next_watch is not None and kind
                        and injectable == next_watch):
                    self.dyn_total = steps
                    self.dyn_injectable = injectable
                    watch_cb(next_watch, AsmSnapshot(
                        bytes(data), mem.heap_break, tuple(regs),
                        tuple(xmm), st.fl, pc, steps, injectable,
                        tuple(self.outputs), st.depth))
                    next_watch = next(watch_iter, None)
                    if next_watch is None:
                        raise CheckpointsDone()
                steps += 1
                if steps > max_steps:
                    self.dyn_total = steps
                    self.dyn_injectable = injectable
                    raise SimTrap("step-budget",
                                  f"exceeded {max_steps} steps")
                if track:
                    if counts is not None:
                        counts[pc] += 1
                    if hook is not None:
                        hook(pc, regs, xmm)
                cur = pc
                try:
                    pc = f(st)
                except _Halt:
                    break
                except OverflowError:
                    raise SimTrap("overflow", f"pc={cur}") from None
                if kind:
                    if injectable == target:
                        injected = True
                        self.injected_index = cur
                        if cf_fault:
                            red = inject_bit % n_insts
                            self._record_cf_edge(cur, pc, red)
                            pc = red
                        elif kind == 1:
                            if set_fault:
                                regs[gpr_dest[cur]] ^= (
                                    (1 << (inject_bit & 63))
                                    | (1 << ((inject_bit + 1) & 63)))
                                st.fl ^= (1, 2, 4, 8, 16)[inject_bit % 5]
                            else:
                                regs[gpr_dest[cur]] ^= 1 << (inject_bit & 63)
                        elif kind == 2:
                            d = xmm_dest[cur]
                            mask = 1 << (inject_bit & 63)
                            if set_fault:
                                mask |= 1 << ((inject_bit + 1) & 63)
                            xmm[d] = _b2f(_f2b(xmm[d]) ^ mask)
                        else:  # flags
                            st.fl ^= (1, 2, 4, 8, 16)[inject_bit % 5]
                            if set_fault:
                                st.fl ^= (1, 2, 4, 8, 16)[
                                    (inject_bit + 1) % 5]
                    injectable += 1
        finally:
            self.dyn_total = steps
            self.dyn_injectable = injectable
            self.injected = injected
            if tracer is not None:
                tracer.finish(regs, xmm)

    def _loop_codegen(
        self,
        inject_index: Optional[int],
        inject_bit: int,
        resume_from: Optional[AsmSnapshot] = None,
    ) -> None:
        """Generated-code twin of :meth:`_loop_decoded` (DESIGN §13).

        Drives the specialized executor chunk to chunk; drops to the
        decoded single-stepper when a corrupted return address leaves
        the leader map, and hands the whole run to the decoded core
        when the step budget could expire inside the next chunk.
        """
        from .codegen import careful_until_leader, codegen_program
        from .decode import AsmState, _Halt, decode_program

        prog = self.program
        mem = self.memory
        cp = codegen_program(prog, mem, self.fault_model)
        dp = decode_program(prog, mem)
        data = mem.data

        st = AsmState()
        st.data = data
        st.outputs = self.outputs
        st.machine = self

        if resume_from is None:
            regs = [0] * 16
            xmm = [0.0] * 16
            st.fl = 0
            st.depth = 0
            sp = mem.stack_base - 8
            data[sp:sp + 8] = _SENTINEL_RET.to_bytes(8, "little")
            regs[_RSP] = sp
            regs[_RBP] = sp
            pc = prog.entry_index
            steps = 0
            injectable = 0
        else:
            snap = resume_from
            if len(snap.mem) != len(data):
                raise ReproError(
                    "snapshot does not match machine memory geometry")
            data[:] = snap.mem
            mem.heap_break = snap.heap_break
            regs = list(snap.regs)
            xmm = list(snap.xmm)
            st.fl = snap.fl
            st.depth = snap.depth
            pc = snap.pc
            steps = snap.steps
            injectable = snap.injectable
            self.outputs[:] = snap.outputs
            self.injected_index = None
        st.regs = regs
        st.xmm = xmm
        st.max_depth = self.max_call_depth

        target = inject_index if inject_index is not None else -1
        self.injected = False
        self._armed = True
        # counter carrier shared with the generated code and the
        # careful stepper: [steps, injectable, target, bit]
        c = [steps, injectable, target, inject_bit]
        run = cp.run
        leaders = cp.leaders
        try:
            while True:
                k = leaders.get(pc)
                if k is None:
                    try:
                        pc = careful_until_leader(self, st, dp, leaders,
                                                  c, pc)
                    except _Halt:
                        break
                    continue
                r = run(self, st, c, k)
                tag = r[0]
                if tag == 2:
                    pc = r[1]
                elif tag == 1:
                    break
                else:
                    # budget hand-over: the decoded core owns the
                    # exact step-budget raise point
                    try:
                        self._decoded_core(st, r[1], c[0], c[1],
                                           inject_index, inject_bit)
                    finally:
                        c[0] = self.dyn_total
                        c[1] = self.dyn_injectable
                    break
        finally:
            self.dyn_total = c[0]
            self.dyn_injectable = c[1]

    def _gpr_dest(self, index: int) -> int:
        inst = self.program.inst_at(index)
        reg = inst.dest_reg()
        assert reg is not None
        return _GPR_INDEX[reg.name]

    def _record_cf_edge(self, index: int, to: int, redirect: int) -> None:
        """Forensics for a control-flow fault: the static transfer, the
        target it would have reached, and where the fault sent it."""
        self.injected_index = index
        self._cf_edge = {
            "layer": "asm",
            "pc": index,
            "opcode": self.program.inst_at(index).opcode,
            "to": to,
            "redirect": redirect,
        }

    def _runtime(self, kind: int, payload, regs, xmm, outputs) -> None:
        if kind == _RT_PRINT_I64:
            outputs.append(format_i64(_sx(regs[_RDI])) + "\n")
        elif kind == _RT_PRINT_F64:
            outputs.append(format_f64(xmm[0]) + "\n")
        elif kind == _RT_PRINT_CHAR:
            outputs.append(format_char(regs[_RDI]))
        elif kind == _RT_DETECT:
            self.dyn_total = 0  # refreshed by caller paths; keep simple
            raise FaultDetected("checker")
        elif kind == _RT_MATH1:
            xmm[0] = payload(xmm[0])
        else:
            xmm[0] = payload(xmm[0], xmm[1])


def _fp(x: float) -> float:
    return x


def _eval_cc(cc: int, zf: int, sf: int, of: int, cf: int, uf: int) -> int:
    if cc == 0:    # e
        return 1 if zf else 0
    if cc == 1:    # ne
        return 0 if zf else 1
    if cc == 2:    # l
        return 1 if sf != of else 0
    if cc == 3:    # le
        return 1 if zf or sf != of else 0
    if cc == 4:    # g
        return 1 if not zf and sf == of else 0
    if cc == 5:    # ge
        return 1 if sf == of else 0
    if cc == 6:    # b
        return 1 if cf else 0
    if cc == 7:    # be
        return 1 if cf or zf else 0
    if cc == 8:    # a
        return 1 if not cf and not zf else 0
    if cc == 9:    # ae
        return 1 if not cf else 0
    # FP condition codes: all false when unordered except fne... which is
    # also false (ordered 'one' semantics); unordered compares simply fail
    if uf:
        return 0
    if cc == 10:   # fe
        return 1 if zf else 0
    if cc == 11:   # fne
        return 0 if zf else 1
    if cc == 12:   # fb
        return 1 if cf else 0
    if cc == 13:   # fbe
        return 1 if cf or zf else 0
    if cc == 14:   # fa
        return 1 if not cf and not zf else 0
    if cc == 15:   # fae
        return 1 if not cf else 0
    raise SimTrap("bad-jump", f"bad cc {cc}")


def run_asm(
    program: CompiledProgram,
    layout: GlobalLayout,
    inject_index: Optional[int] = None,
    inject_bit: int = 0,
    profile: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    trace=None,
    dispatch: str = "decoded",
    fault_model: Optional[str] = None,
) -> ExecResult:
    """Convenience wrapper: fresh machine, one execution."""
    machine = AsmMachine(program, layout, max_steps=max_steps, trace=trace,
                         dispatch=dispatch, fault_model=fault_model)
    return machine.run(
        inject_index=inject_index, inject_bit=inject_bit, profile=profile
    )
