"""One-time decode pass: micro-ops -> bound Python closures.

Mirror of :mod:`repro.interp.decode` for the assembly machine: every
micro-op of a :class:`~repro.machine.machine.CompiledProgram` is
compiled once into a closure ``fn(st) -> next_pc`` with register
indices, immediates, memory geometry (bounds, stack limit), fall-through
targets, and condition-code evaluators all pre-bound, replacing the
per-step ``code == ...`` ladder of the naive loop.

Run state travels in an :class:`AsmState`: GPR/XMM register files
(lists, shared with the driver loop), the five status flags packed into
one integer (``zf | sf<<1 | of<<2 | cf<<3 | uf<<4``), the memory
bytearray, and the output list.  Flags-as-int makes an ALU flag write a
single store, and a FLAGS fault injection a single XOR.

``main`` returning through its sentinel return address raises
:class:`_Halt`, which the driver turns into a normal stop.

Decoding is cached on the program object, keyed by memory geometry, so
any number of :class:`~repro.machine.machine.AsmMachine` instances
(one per injection) share one decode.
"""

from __future__ import annotations

import struct
from typing import Callable, List

from ..errors import FaultDetected, SimTrap
from ..memorymodel import Memory
from ..utils.fmt import format_char, format_f64, format_i64
from .machine import (
    ADD_RI, ADD_RR, ADDSD, AND_RI, AND_RR, CALL, CALLRT, CMOV, CMP_RI,
    CMP_RR, CVTSI2SD, CVTTSD2SI, DIVSD, IDIV, IMUL_RI, IMUL_RR, JCC, JMP,
    LEA, MOV_MI, MOV_MR, MOV_RI, MOV_RM, MOV_RR, MOVSD_MX, MOVSD_XI,
    MOVSD_XM, MOVSD_XX, MULSD, OR_RI, OR_RR, POP, PUSH, RET, SAR_RC,
    SAR_RI, SETCC, SHL_RC, SHL_RI, SHR_RC, SHR_RI, SUB_RI, SUB_RR, SUBSD,
    TEST_RR, UCOMISD, UD2, XOR_RI, XOR_RR,
    _GPR_INDEX, _MASK64, _RAX, _RCX, _RDI, _RDX, _RSP, _SENTINEL_RET,
    _RT_DETECT, _RT_MATH1, _RT_MATH2, _RT_PRINT_CHAR, _RT_PRINT_F64,
    _RT_PRINT_I64, _XMM_INDEX,
    CompiledProgram, _b2f, _f2b, _sx,
)

__all__ = ["AsmState", "DecodedProgram", "decode_program", "_Halt"]

_M64 = _MASK64
_PACK_Q = struct.Struct("<Q")
_PACK_D = struct.Struct("<d")


class _Halt(Exception):
    """Internal signal: ``main`` returned through the sentinel."""


class AsmState:
    """Mutable run state shared between driver loop and closures.

    ``depth``/``max_depth`` carry the call-depth budget (DESIGN §11):
    the decode cache is keyed by memory geometry and shared across
    machines, so per-run budgets must travel in the state, not in the
    closures.
    """

    __slots__ = ("regs", "xmm", "fl", "data", "outputs", "machine",
                 "depth", "max_depth")


class DecodedProgram:
    """Closure form of a CompiledProgram for one memory geometry."""

    __slots__ = ("program", "fns", "gpr_dest", "xmm_dest")

    def __init__(self, program: CompiledProgram,
                 fns: List[Callable], gpr_dest: List[int],
                 xmm_dest: List[int]):
        self.program = program
        self.fns = fns
        #: destination register index per static site (-1 if not a site)
        self.gpr_dest = gpr_dest
        self.xmm_dest = xmm_dest


def decode_program(program: CompiledProgram, mem: Memory) -> DecodedProgram:
    """Decode ``program`` for ``mem``'s geometry (cached on the program)."""
    key = (mem.global_base, mem.size, mem.stack_limit)
    cache = getattr(program, "_decoded", None)
    if cache is None:
        cache = {}
        program._decoded = cache
    dp = cache.get(key)
    if dp is None:
        dp = _decode(program, mem.global_base, mem.size, mem.stack_limit)
        cache[key] = dp
    return dp


# -- condition codes over the packed flag int ----------------------------
# fl = zf | sf<<1 | of<<2 | cf<<3 | uf<<4


def _cc_fn(cc: int) -> Callable[[int], int]:
    if cc == 0:                                    # e
        return lambda fl: fl & 1
    if cc == 1:                                    # ne
        return lambda fl: 0 if fl & 1 else 1
    if cc == 2:                                    # l: sf != of
        return lambda fl: ((fl >> 1) ^ (fl >> 2)) & 1
    if cc == 3:                                    # le
        return lambda fl: 1 if (fl & 1) or (((fl >> 1) ^ (fl >> 2)) & 1) \
            else 0
    if cc == 4:                                    # g
        return lambda fl: 0 if (fl & 1) or (((fl >> 1) ^ (fl >> 2)) & 1) \
            else 1
    if cc == 5:                                    # ge: sf == of
        return lambda fl: 0 if ((fl >> 1) ^ (fl >> 2)) & 1 else 1
    if cc == 6:                                    # b
        return lambda fl: (fl >> 3) & 1
    if cc == 7:                                    # be: cf or zf
        return lambda fl: 1 if fl & 0b1001 else 0
    if cc == 8:                                    # a
        return lambda fl: 0 if fl & 0b1001 else 1
    if cc == 9:                                    # ae
        return lambda fl: 0 if fl & 0b1000 else 1
    # FP condition codes: all false when unordered (uf, bit 4)
    if cc == 10:                                   # fe
        return lambda fl: 0 if fl & 16 else fl & 1
    if cc == 11:                                   # fne
        return lambda fl: 0 if fl & 16 else (0 if fl & 1 else 1)
    if cc == 12:                                   # fb
        return lambda fl: 0 if fl & 16 else (fl >> 3) & 1
    if cc == 13:                                   # fbe
        return lambda fl: 0 if fl & 16 else (1 if fl & 0b1001 else 0)
    if cc == 14:                                   # fa
        return lambda fl: 0 if fl & 16 else (0 if fl & 0b1001 else 1)
    if cc == 15:                                   # fae
        return lambda fl: 0 if fl & 16 else (0 if fl & 0b1000 else 1)
    raise SimTrap("bad-jump", f"bad cc {cc}")


_CC_FNS = [_cc_fn(cc) for cc in range(16)]


def _always_trap(kind: str, detail: str):
    def f(st):
        raise SimTrap(kind, detail)
    return f


def _decode(program: CompiledProgram, lo: int, hi: int,
            stack_limit: int) -> DecodedProgram:
    uops = program.uops
    n_insts = len(uops)
    fns: List[Callable] = []
    nan = float("nan")
    inf = float("inf")
    ninf = float("-inf")

    for i, u in enumerate(uops):
        code = u[0]
        nxt = i + 1

        if code == MOV_RR:
            d, s = u[1], u[2]

            def f(st, d=d, s=s, nxt=nxt):
                st.regs[d] = st.regs[s]
                return nxt
        elif code == MOV_RI:
            d, v = u[1], u[2]

            def f(st, d=d, v=v, nxt=nxt):
                st.regs[d] = v
                return nxt
        elif code == MOV_RM:
            d, base, disp, size = u[1], u[2], u[3], u[4]
            if base < 0:
                addr = disp & _M64
                if addr < lo or addr + size > hi:
                    f = _always_trap("segfault", f"read {size} at {addr:#x}")
                elif size == 8:
                    def f(st, d=d, addr=addr, nxt=nxt):
                        st.regs[d] = _PACK_Q.unpack_from(st.data, addr)[0]
                        return nxt
                else:
                    def f(st, d=d, addr=addr, size=size, nxt=nxt):
                        st.regs[d] = int.from_bytes(
                            st.data[addr:addr + size], "little")
                        return nxt
            elif size == 8:
                def f(st, d=d, base=base, disp=disp, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + 8 > hi:
                        raise SimTrap("segfault", f"read 8 at {addr:#x}")
                    st.regs[d] = _PACK_Q.unpack_from(st.data, addr)[0]
                    return nxt
            else:
                def f(st, d=d, base=base, disp=disp, size=size, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + size > hi:
                        raise SimTrap("segfault",
                                      f"read {size} at {addr:#x}")
                    st.regs[d] = int.from_bytes(
                        st.data[addr:addr + size], "little")
                    return nxt
        elif code == MOV_MR:
            base, disp, s, size = u[1], u[2], u[3], u[4]
            if base < 0:
                addr = disp & _M64
                if addr < lo or addr + size > hi:
                    f = _always_trap("segfault",
                                     f"write {size} at {addr:#x}")
                elif size == 8:
                    def f(st, addr=addr, s=s, nxt=nxt):
                        _PACK_Q.pack_into(st.data, addr, st.regs[s])
                        return nxt
                else:
                    def f(st, addr=addr, s=s, size=size, nxt=nxt):
                        st.data[addr:addr + size] = (
                            st.regs[s] & ((1 << (8 * size)) - 1)
                        ).to_bytes(size, "little")
                        return nxt
            elif size == 8:
                def f(st, base=base, disp=disp, s=s, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + 8 > hi:
                        raise SimTrap("segfault", f"write 8 at {addr:#x}")
                    _PACK_Q.pack_into(st.data, addr, st.regs[s])
                    return nxt
            else:
                def f(st, base=base, disp=disp, s=s, size=size, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + size > hi:
                        raise SimTrap("segfault",
                                      f"write {size} at {addr:#x}")
                    st.data[addr:addr + size] = (
                        st.regs[s] & ((1 << (8 * size)) - 1)
                    ).to_bytes(size, "little")
                    return nxt
        elif code == MOV_MI:
            base, disp, v, size = u[1], u[2], u[3], u[4]
            payload = (v & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            if base < 0:
                addr = disp & _M64
                if addr < lo or addr + size > hi:
                    f = _always_trap("segfault",
                                     f"write {size} at {addr:#x}")
                else:
                    def f(st, addr=addr, payload=payload, size=size,
                          nxt=nxt):
                        st.data[addr:addr + size] = payload
                        return nxt
            else:
                def f(st, base=base, disp=disp, payload=payload,
                      size=size, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + size > hi:
                        raise SimTrap("segfault",
                                      f"write {size} at {addr:#x}")
                    st.data[addr:addr + size] = payload
                    return nxt
        elif code == MOVSD_XX:
            d, s = u[1], u[2]

            def f(st, d=d, s=s, nxt=nxt):
                st.xmm[d] = st.xmm[s]
                return nxt
        elif code == MOVSD_XI:
            d, v = u[1], u[2]

            def f(st, d=d, v=v, nxt=nxt):
                st.xmm[d] = v
                return nxt
        elif code == MOVSD_XM:
            d, base, disp = u[1], u[2], u[3]
            if base < 0:
                addr = disp & _M64
                if addr < lo or addr + 8 > hi:
                    f = _always_trap("segfault", f"fp read at {addr:#x}")
                else:
                    def f(st, d=d, addr=addr, nxt=nxt):
                        st.xmm[d] = _PACK_D.unpack_from(st.data, addr)[0]
                        return nxt
            else:
                def f(st, d=d, base=base, disp=disp, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + 8 > hi:
                        raise SimTrap("segfault", f"fp read at {addr:#x}")
                    st.xmm[d] = _PACK_D.unpack_from(st.data, addr)[0]
                    return nxt
        elif code == MOVSD_MX:
            base, disp, s = u[1], u[2], u[3]
            if base < 0:
                addr = disp & _M64
                if addr < lo or addr + 8 > hi:
                    f = _always_trap("segfault", f"fp write at {addr:#x}")
                else:
                    def f(st, addr=addr, s=s, nxt=nxt):
                        _PACK_D.pack_into(st.data, addr, st.xmm[s])
                        return nxt
            else:
                def f(st, base=base, disp=disp, s=s, nxt=nxt):
                    addr = (disp + st.regs[base]) & _M64
                    if addr < lo or addr + 8 > hi:
                        raise SimTrap("segfault", f"fp write at {addr:#x}")
                    _PACK_D.pack_into(st.data, addr, st.xmm[s])
                    return nxt
        elif code == LEA:
            d, base, disp = u[1], u[2], u[3]
            if base < 0:
                addr = disp & _M64

                def f(st, d=d, addr=addr, nxt=nxt):
                    st.regs[d] = addr
                    return nxt
            else:
                def f(st, d=d, base=base, disp=disp, nxt=nxt):
                    st.regs[d] = (disp + st.regs[base]) & _M64
                    return nxt
        elif code == ADD_RR or code == ADD_RI:
            d = u[1]
            if code == ADD_RR:
                s = u[2]

                def f(st, d=d, s=s, nxt=nxt):
                    regs = st.regs
                    a = regs[d]
                    b = regs[s]
                    t = a + b
                    r = t & _M64
                    regs[d] = r
                    st.fl = ((1 if r == 0 else 0) | ((r >> 63) << 1)
                             | (((~(a ^ b)) & (a ^ r)) >> 63 & 1) << 2
                             | (t >> 64) << 3)
                    return nxt
            else:
                b = u[2]

                def f(st, d=d, b=b, nxt=nxt):
                    regs = st.regs
                    a = regs[d]
                    t = a + b
                    r = t & _M64
                    regs[d] = r
                    st.fl = ((1 if r == 0 else 0) | ((r >> 63) << 1)
                             | (((~(a ^ b)) & (a ^ r)) >> 63 & 1) << 2
                             | (t >> 64) << 3)
                    return nxt
        elif code == SUB_RR or code == SUB_RI:
            d = u[1]
            if code == SUB_RR:
                s = u[2]

                def f(st, d=d, s=s, nxt=nxt):
                    regs = st.regs
                    a = regs[d]
                    b = regs[s]
                    r = (a - b) & _M64
                    regs[d] = r
                    st.fl = ((1 if r == 0 else 0) | ((r >> 63) << 1)
                             | (((a ^ b) & (a ^ r)) >> 63 & 1) << 2
                             | (8 if a < b else 0))
                    return nxt
            else:
                b = u[2]

                def f(st, d=d, b=b, nxt=nxt):
                    regs = st.regs
                    a = regs[d]
                    r = (a - b) & _M64
                    regs[d] = r
                    st.fl = ((1 if r == 0 else 0) | ((r >> 63) << 1)
                             | (((a ^ b) & (a ^ r)) >> 63 & 1) << 2
                             | (8 if a < b else 0))
                    return nxt
        elif code == IMUL_RR or code == IMUL_RI:
            d = u[1]
            if code == IMUL_RR:
                s = u[2]

                def f(st, d=d, s=s, nxt=nxt):
                    regs = st.regs
                    r = (_sx(regs[d]) * _sx(regs[s])) & _M64
                    regs[d] = r
                    st.fl = (1 if r == 0 else 0) | ((r >> 63) << 1)
                    return nxt
            else:
                b = _sx(u[2])

                def f(st, d=d, b=b, nxt=nxt):
                    regs = st.regs
                    r = (_sx(regs[d]) * b) & _M64
                    regs[d] = r
                    st.fl = (1 if r == 0 else 0) | ((r >> 63) << 1)
                    return nxt
        elif code in (AND_RR, AND_RI, OR_RR, OR_RI, XOR_RR, XOR_RI):
            d = u[1]
            reg_src = code in (AND_RR, OR_RR, XOR_RR)
            which = (0 if code in (AND_RR, AND_RI)
                     else 1 if code in (OR_RR, OR_RI) else 2)
            if reg_src:
                s = u[2]

                def f(st, d=d, s=s, w=which, nxt=nxt):
                    regs = st.regs
                    if w == 0:
                        r = regs[d] & regs[s]
                    elif w == 1:
                        r = regs[d] | regs[s]
                    else:
                        r = regs[d] ^ regs[s]
                    regs[d] = r
                    st.fl = (1 if r == 0 else 0) | ((r >> 63) << 1)
                    return nxt
            else:
                b = u[2]

                def f(st, d=d, b=b, w=which, nxt=nxt):
                    regs = st.regs
                    if w == 0:
                        r = regs[d] & b
                    elif w == 1:
                        r = regs[d] | b
                    else:
                        r = regs[d] ^ b
                    regs[d] = r
                    st.fl = (1 if r == 0 else 0) | ((r >> 63) << 1)
                    return nxt
        elif code in (SHL_RC, SHL_RI, SAR_RC, SAR_RI, SHR_RC, SHR_RI):
            d = u[1]
            by_count = code in (SHL_RC, SAR_RC, SHR_RC)
            which = (0 if code in (SHL_RC, SHL_RI)
                     else 1 if code in (SAR_RC, SAR_RI) else 2)
            amount = None if by_count else (u[2] & 63)

            def f(st, d=d, w=which, amount=amount, nxt=nxt):
                regs = st.regs
                n = regs[_RCX] & 63 if amount is None else amount
                if w == 0:
                    r = (regs[d] << n) & _M64
                elif w == 1:
                    r = (_sx(regs[d]) >> n) & _M64
                else:
                    r = regs[d] >> n
                regs[d] = r
                st.fl = (1 if r == 0 else 0) | ((r >> 63) << 1)
                return nxt
        elif code == IDIV:
            s = u[1]

            def f(st, s=s, nxt=nxt):
                regs = st.regs
                b = _sx(regs[s])
                if b == 0:
                    raise SimTrap("div-by-zero")
                a = _sx(regs[_RAX])
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                regs[_RAX] = q & _M64
                regs[_RDX] = (a - q * b) & _M64
                st.fl = 0
                return nxt
        elif code == CMP_RR or code == CMP_RI:
            a_i = u[1]
            if code == CMP_RR:
                b_i = u[2]

                def f(st, a_i=a_i, b_i=b_i, nxt=nxt):
                    regs = st.regs
                    a = regs[a_i]
                    b = regs[b_i]
                    r = (a - b) & _M64
                    st.fl = ((1 if r == 0 else 0) | ((r >> 63) << 1)
                             | (((a ^ b) & (a ^ r)) >> 63 & 1) << 2
                             | (8 if a < b else 0))
                    return nxt
            else:
                b = u[2]

                def f(st, a_i=a_i, b=b, nxt=nxt):
                    a = st.regs[a_i]
                    r = (a - b) & _M64
                    st.fl = ((1 if r == 0 else 0) | ((r >> 63) << 1)
                             | (((a ^ b) & (a ^ r)) >> 63 & 1) << 2
                             | (8 if a < b else 0))
                    return nxt
        elif code == TEST_RR:
            a_i, b_i = u[1], u[2]

            def f(st, a_i=a_i, b_i=b_i, nxt=nxt):
                regs = st.regs
                r = regs[a_i] & regs[b_i]
                st.fl = (1 if r == 0 else 0) | ((r >> 63) << 1)
                return nxt
        elif code == SETCC:
            d, cc = u[1], _CC_FNS[u[2]]

            def f(st, d=d, cc=cc, nxt=nxt):
                st.regs[d] = cc(st.fl)
                return nxt
        elif code == CMOV:
            d, s, cc = u[1], u[2], _CC_FNS[u[3]]

            def f(st, d=d, s=s, cc=cc, nxt=nxt):
                if cc(st.fl):
                    st.regs[d] = st.regs[s]
                return nxt
        elif code == JMP:
            t = u[1]

            def f(st, t=t):
                return t
        elif code == JCC:
            t, cc = u[1], _CC_FNS[u[2]]

            def f(st, t=t, cc=cc, nxt=nxt):
                return t if cc(st.fl) else nxt
        elif code == CALL:
            t = u[1]

            def f(st, t=t, nxt=nxt, cur=i):
                regs = st.regs
                sp = (regs[_RSP] - 8) & _M64
                if sp < stack_limit or sp + 8 > hi:
                    raise SimTrap("stack-overflow", f"call at pc={cur}")
                depth = st.depth + 1
                st.depth = depth
                if depth > st.max_depth:
                    raise SimTrap(
                        "stack-overflow",
                        f"call depth {st.max_depth} exceeded at pc={cur}")
                _PACK_Q.pack_into(st.data, sp, nxt)
                regs[_RSP] = sp
                return t
        elif code == CALLRT:
            kind, payload = u[1], u[2]
            if kind == _RT_PRINT_I64:
                def f(st, nxt=nxt):
                    st.outputs.append(format_i64(_sx(st.regs[_RDI])) + "\n")
                    return nxt
            elif kind == _RT_PRINT_F64:
                def f(st, nxt=nxt):
                    st.outputs.append(format_f64(st.xmm[0]) + "\n")
                    return nxt
            elif kind == _RT_PRINT_CHAR:
                def f(st, nxt=nxt):
                    st.outputs.append(format_char(st.regs[_RDI]))
                    return nxt
            elif kind == _RT_DETECT:
                def f(st):
                    raise FaultDetected("checker")
            elif kind == _RT_MATH1:
                def f(st, fn1=payload, nxt=nxt):
                    st.xmm[0] = fn1(st.xmm[0])
                    return nxt
            else:
                def f(st, fn2=payload, nxt=nxt):
                    xmm = st.xmm
                    xmm[0] = fn2(xmm[0], xmm[1])
                    return nxt
        elif code == RET:
            def f(st):
                regs = st.regs
                sp = regs[_RSP]
                if sp < lo or sp + 8 > hi:
                    raise SimTrap("segfault", f"ret with rsp={sp:#x}")
                addr = _PACK_Q.unpack_from(st.data, sp)[0]
                regs[_RSP] = (sp + 8) & _M64
                if addr == _SENTINEL_RET:
                    raise _Halt()
                if addr >= n_insts:
                    raise SimTrap("bad-jump", f"ret to {addr:#x}")
                st.depth -= 1
                return addr
        elif code == PUSH:
            s = u[1]

            def f(st, s=s, nxt=nxt, cur=i):
                regs = st.regs
                sp = (regs[_RSP] - 8) & _M64
                if sp < stack_limit or sp + 8 > hi:
                    raise SimTrap("stack-overflow", f"push at pc={cur}")
                _PACK_Q.pack_into(st.data, sp, regs[s])
                regs[_RSP] = sp
                return nxt
        elif code == POP:
            d = u[1]

            def f(st, d=d, nxt=nxt):
                regs = st.regs
                sp = regs[_RSP]
                if sp < lo or sp + 8 > hi:
                    raise SimTrap("segfault", f"pop with rsp={sp:#x}")
                regs[d] = _PACK_Q.unpack_from(st.data, sp)[0]
                regs[_RSP] = (sp + 8) & _M64
                return nxt
        elif code in (ADDSD, SUBSD, MULSD):
            d, s = u[1], u[2]
            which = 0 if code == ADDSD else 1 if code == SUBSD else 2

            def f(st, d=d, s=s, w=which, nxt=nxt):
                xmm = st.xmm
                if w == 0:
                    xmm[d] = xmm[d] + xmm[s]
                elif w == 1:
                    xmm[d] = xmm[d] - xmm[s]
                else:
                    xmm[d] = xmm[d] * xmm[s]
                return nxt
        elif code == DIVSD:
            d, s = u[1], u[2]

            def f(st, d=d, s=s, nxt=nxt, nan=nan, inf=inf, ninf=ninf):
                xmm = st.xmm
                a = xmm[d]
                b = xmm[s]
                if b == 0.0:
                    xmm[d] = nan if a == 0.0 or a != a else (
                        inf if a > 0 else ninf)
                else:
                    xmm[d] = a / b
                return nxt
        elif code == UCOMISD:
            a_i, b_i = u[1], u[2]

            def f(st, a_i=a_i, b_i=b_i, nxt=nxt):
                xmm = st.xmm
                a = xmm[a_i]
                b = xmm[b_i]
                if a != a or b != b:
                    st.fl = 0b11001          # uf, cf, zf
                else:
                    st.fl = (1 if a == b else 0) | (8 if a < b else 0)
                return nxt
        elif code == CVTSI2SD:
            d, s = u[1], u[2]

            def f(st, d=d, s=s, nxt=nxt):
                st.xmm[d] = float(_sx(st.regs[s]))
                return nxt
        elif code == CVTTSD2SI:
            d, s = u[1], u[2]

            def f(st, d=d, s=s, nxt=nxt, inf=inf, ninf=ninf):
                v = st.xmm[s]
                if v != v or v == inf or v == ninf:
                    st.regs[d] = 0
                else:
                    st.regs[d] = int(v) & _M64
                return nxt
        elif code == UD2:
            f = _always_trap("unreachable", f"ud2 at pc={i}")
        else:  # pragma: no cover
            f = _always_trap("bad-jump", f"bad uop {code}")

        fns.append(f)

    n = len(uops)
    gpr_dest = [-1] * n
    xmm_dest = [-1] * n
    for idx, k in enumerate(program.inj_kind):
        if k == 1:
            gpr_dest[idx] = _GPR_INDEX[program.inst_at(idx).dest_reg().name]
        elif k == 2:
            xmm_dest[idx] = _XMM_INDEX[program.inst_at(idx).dest_reg().name]
    return DecodedProgram(program, fns, gpr_dest, xmm_dest)
