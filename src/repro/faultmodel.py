"""Fault-model taxonomy shared by both simulators and the FI stack.

The reproduction originally modelled exactly one fault: a single-event
upset (SEU) flipping one bit of a destination register *after* the
targeted dynamic instruction writes it.  Conclusions drawn under one
fault model do not transfer (the paper's cross-layer warning), so the
scenario space is opened to three models, each injectable at both
layers and in all three dispatch tiers (see DESIGN §14):

``"seu"``
    Single bit-flip in the destination register (GPR / XMM / one flag
    at the asm layer, the produced SSA value at the IR layer).  The
    historical model; journal rows without a ``fault_model`` field mean
    this.

``"set"``
    Single-event transient: a glitch in combinational logic latched
    mid-instruction.  Wider than an SEU — a two-adjacent-bit burst in
    the produced value, and (for GPR-writing asm instructions) one
    condition flag corrupted by the same transient.  At the IR layer
    the flag half has no analogue, so a SET is the two-bit burst alone.

``"cf"``
    Control-flow fault: a control transfer (jump / conditional jump /
    call at the asm layer, br / condbr at the IR layer — IR calls have
    direct callees, so call-target corruption only exists at the asm
    layer) retargeted to a uniformly drawn legal instruction boundary
    (any pc at the asm layer, any basic-block entry of the current
    function at the IR layer).  The injectable universe becomes the
    dynamic control transfers, and the drawn "bit" coordinate selects
    the redirect target (drawn from ``[0, CF_BIT_RANGE)`` and reduced
    modulo the number of boundaries).

This module is deliberately dependency-free (``errors`` only) so both
``repro.interp`` / ``repro.machine`` and ``repro.fi`` can import it
without cycles.
"""

from __future__ import annotations

from typing import Optional

from .errors import CampaignError

__all__ = [
    "FAULT_MODELS",
    "DEFAULT_FAULT_MODEL",
    "CF_BIT_RANGE",
    "validate_fault_model",
    "fault_bit_range",
]

#: Supported fault models, in presentation order.
FAULT_MODELS = ("seu", "set", "cf")

DEFAULT_FAULT_MODEL = "seu"

#: Exclusive upper bound of the fault-coordinate draw under the
#: control-flow model.  SEU/SET draw a bit position in [0, 64); a
#: control-flow fault draws a redirect coordinate, reduced modulo the
#: number of legal landing sites at injection time.  2**30 is large
#: enough that the modulo bias over any realistic program is nil.
CF_BIT_RANGE = 1 << 30


def validate_fault_model(fault_model: Optional[str]) -> str:
    """Resolve and validate a fault-model name.

    ``None`` means the default (``"seu"``).  Anything else must be an
    exact member of :data:`FAULT_MODELS`; typos (``"set "``, ``"CF"``)
    raise a :class:`CampaignError` naming the valid values rather than
    silently falling back to SEU.
    """
    if fault_model is None:
        return DEFAULT_FAULT_MODEL
    if fault_model not in FAULT_MODELS:
        raise CampaignError(
            f"unknown fault model {fault_model!r}; expected one of "
            + ", ".join(repr(m) for m in FAULT_MODELS)
        )
    return fault_model


def fault_bit_range(fault_model: str) -> int:
    """Exclusive upper bound for the drawn fault coordinate."""
    return CF_BIT_RANGE if fault_model == "cf" else 64
