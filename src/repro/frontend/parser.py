"""MiniC recursive-descent parser.

Grammar (C subset; `int` is 64-bit, `float` is binary64):

::

    program   := (global | function)*
    global    := ['const'] type IDENT ['[' INT ']'] ['=' ginit] ';'
    ginit     := literal | '{' literal (',' literal)* '}'
    function  := rettype IDENT '(' [param (',' param)*] ')' block
    param     := type IDENT ['[' ']']
    block     := '{' stmt* '}'
    stmt      := vardecl | assign ';' | if | while | for | 'return' [expr] ';'
               | 'break' ';' | 'continue' ';' | print ';' | block | expr ';'
    vardecl   := type IDENT ['[' INT ']'] ['=' expr | '=' '{' expr,* '}'] ';'
    assign    := target ('='|'+='|'-='|'*='|'/='|'%='|'<<='|'>>=') expr
               | target '++' | target '--'
    target    := IDENT ['[' expr ']']
    print     := 'print' '(' expr ')' | 'printc' '(' expr ')'
               | 'prints' '(' STRING ')'

Expressions use standard C precedence; ``&&``/``||`` short-circuit.
``int(e)`` and ``float(e)`` are cast expressions.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast_nodes as A
from .lexer import Token, tokenize

__all__ = ["Parser", "parse_program"]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>="}

# binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_PRINT_STMTS = {"print": "print", "printc": "printc", "prints": "prints"}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}",
                self.cur.line,
                self.cur.col,
            )
        return self._advance()

    def _error(self, msg: str) -> ParseError:
        return ParseError(msg, self.cur.line, self.cur.col)

    # -- top level ------------------------------------------------------------

    def parse(self) -> A.Program:
        prog = A.Program(line=1, col=1)
        while not self._check("eof"):
            is_const = bool(self._accept("keyword", "const"))
            ty_tok = self.cur
            if not (
                self._check("keyword", "int")
                or self._check("keyword", "float")
                or self._check("keyword", "void")
            ):
                raise self._error(
                    f"expected declaration, found {self.cur.text!r}"
                )
            self._advance()
            name = self._expect("ident").text
            if self._check("op", "("):
                if is_const:
                    raise self._error("functions cannot be const")
                prog.functions.append(
                    self._function_rest(ty_tok.text, name, ty_tok)
                )
            else:
                if ty_tok.text == "void":
                    raise self._error("globals cannot be void")
                prog.globals.append(
                    self._global_rest(ty_tok.text, name, is_const, ty_tok)
                )
        return prog

    def _global_rest(
        self, base_type: str, name: str, is_const: bool, at: Token
    ) -> A.GlobalDecl:
        decl = A.GlobalDecl(
            line=at.line, col=at.col, name=name, base_type=base_type,
            is_const=is_const,
        )
        if self._accept("op", "["):
            decl.array_size = self._const_int()
            self._expect("op", "]")
        if self._accept("op", "="):
            if self._accept("op", "{"):
                items: List = []
                if not self._check("op", "}"):
                    items.append(self._const_literal(base_type))
                    while self._accept("op", ","):
                        if self._check("op", "}"):
                            break  # trailing comma
                        items.append(self._const_literal(base_type))
                self._expect("op", "}")
                decl.init_list = items
            else:
                decl.init_scalar = self._const_literal(base_type)
        self._expect("op", ";")
        return decl

    def _const_int(self) -> int:
        neg = bool(self._accept("op", "-"))
        tok = self._expect("int_lit")
        val = int(tok.text, 0)
        return -val if neg else val

    def _const_literal(self, base_type: str):
        neg = bool(self._accept("op", "-"))
        if self._check("float_lit"):
            val: object = float(self._advance().text)
        elif self._check("int_lit"):
            raw = int(self._advance().text, 0)
            val = float(raw) if base_type == "float" else raw
        else:
            raise self._error("expected literal in initializer")
        return -val if neg else val

    def _function_rest(
        self, return_type: str, name: str, at: Token
    ) -> A.FunctionDecl:
        self._expect("op", "(")
        params: List[A.Param] = []
        if not self._check("op", ")"):
            params.append(self._param())
            while self._accept("op", ","):
                params.append(self._param())
        self._expect("op", ")")
        body = self._block()
        return A.FunctionDecl(
            line=at.line, col=at.col, name=name, return_type=return_type,
            params=params, body=body,
        )

    def _param(self) -> A.Param:
        ty_tok = self.cur
        if not (self._check("keyword", "int") or self._check("keyword", "float")):
            raise self._error(f"expected parameter type, found {self.cur.text!r}")
        self._advance()
        name = self._expect("ident").text
        is_array = False
        if self._accept("op", "["):
            self._expect("op", "]")
            is_array = True
        return A.Param(
            line=ty_tok.line, col=ty_tok.col, name=name,
            base_type=ty_tok.text, is_array=is_array,
        )

    # -- statements -----------------------------------------------------------

    def _block(self) -> A.Block:
        at = self._expect("op", "{")
        stmts: List[A.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise self._error("unterminated block")
            stmts.append(self._statement())
        self._expect("op", "}")
        return A.Block(line=at.line, col=at.col, statements=stmts)

    def _stmt_as_block(self) -> A.Block:
        """A control-flow body: either a braced block or one statement."""
        if self._check("op", "{"):
            return self._block()
        stmt = self._statement()
        return A.Block(line=stmt.line, col=stmt.col, statements=[stmt])

    def _statement(self) -> A.Stmt:
        tok = self.cur
        if self._check("op", "{"):
            return self._block()
        if self._check("keyword", "int") or self._check("keyword", "float"):
            # could be a cast expression statement — MiniC has no use for
            # those, so a leading type keyword always means a declaration
            return self._vardecl()
        if self._accept("keyword", "if"):
            return self._if(tok)
        if self._accept("keyword", "while"):
            self._expect("op", "(")
            cond = self._expression()
            self._expect("op", ")")
            body = self._stmt_as_block()
            return A.While(line=tok.line, col=tok.col, cond=cond, body=body)
        if self._accept("keyword", "for"):
            return self._for(tok)
        if self._accept("keyword", "return"):
            value = None
            if not self._check("op", ";"):
                value = self._expression()
            self._expect("op", ";")
            return A.Return(line=tok.line, col=tok.col, value=value)
        if self._accept("keyword", "break"):
            self._expect("op", ";")
            return A.Break(line=tok.line, col=tok.col)
        if self._accept("keyword", "continue"):
            self._expect("op", ";")
            return A.Continue(line=tok.line, col=tok.col)
        if tok.kind == "ident" and tok.text in _PRINT_STMTS:
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "op" and nxt.text == "(":
                return self._print()
        stmt = self._assign_or_expr()
        self._expect("op", ";")
        return stmt

    def _print(self) -> A.PrintStmt:
        tok = self._advance()  # print/printc/prints
        kind = _PRINT_STMTS[tok.text]
        self._expect("op", "(")
        if kind == "prints":
            s = self._expect("string").text
            node = A.PrintStmt(line=tok.line, col=tok.col, kind=kind, arg=s)
        else:
            expr = self._expression()
            node = A.PrintStmt(line=tok.line, col=tok.col, kind=kind, arg=expr)
        self._expect("op", ")")
        self._expect("op", ";")
        return node

    def _vardecl(self) -> A.VarDecl:
        ty_tok = self._advance()
        name = self._expect("ident").text
        decl = A.VarDecl(
            line=ty_tok.line, col=ty_tok.col, name=name, base_type=ty_tok.text
        )
        if self._accept("op", "["):
            decl.array_size = self._const_int()
            self._expect("op", "]")
            if self._accept("op", "="):
                self._expect("op", "{")
                items: List[A.Expr] = []
                if not self._check("op", "}"):
                    items.append(self._expression())
                    while self._accept("op", ","):
                        if self._check("op", "}"):
                            break
                        items.append(self._expression())
                self._expect("op", "}")
                decl.array_init = items
        elif self._accept("op", "="):
            decl.init = self._expression()
        self._expect("op", ";")
        return decl

    def _if(self, tok: Token) -> A.If:
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        then_body = self._stmt_as_block()
        else_body = None
        if self._accept("keyword", "else"):
            if self._check("keyword", "if"):
                elif_tok = self._advance()
                inner = self._if(elif_tok)
                else_body = A.Block(
                    line=inner.line, col=inner.col, statements=[inner]
                )
            else:
                else_body = self._stmt_as_block()
        return A.If(
            line=tok.line, col=tok.col, cond=cond,
            then_body=then_body, else_body=else_body,
        )

    def _for(self, tok: Token) -> A.For:
        self._expect("op", "(")
        init: Optional[A.Stmt] = None
        if not self._check("op", ";"):
            if self._check("keyword", "int") or self._check("keyword", "float"):
                init = self._vardecl()  # consumes the ';'
            else:
                init = self._assign_or_expr()
                self._expect("op", ";")
        else:
            self._expect("op", ";")
        cond: Optional[A.Expr] = None
        if not self._check("op", ";"):
            cond = self._expression()
        self._expect("op", ";")
        step: Optional[A.Stmt] = None
        if not self._check("op", ")"):
            step = self._assign_or_expr()
        self._expect("op", ")")
        body = self._stmt_as_block()
        return A.For(
            line=tok.line, col=tok.col, init=init, cond=cond, step=step,
            body=body,
        )

    def _assign_or_expr(self) -> A.Stmt:
        start = self.pos
        tok = self.cur
        if tok.kind == "ident":
            # lookahead for an assignment target
            target = self._try_target()
            if target is not None:
                op_tok = self.cur
                if op_tok.kind == "op" and op_tok.text in _ASSIGN_OPS:
                    self._advance()
                    value = self._expression()
                    return A.Assign(
                        line=tok.line, col=tok.col, target=target,
                        op=op_tok.text, value=value,
                    )
                if op_tok.kind == "op" and op_tok.text in ("++", "--"):
                    self._advance()
                    one = A.IntLit(line=op_tok.line, col=op_tok.col, value=1)
                    return A.Assign(
                        line=tok.line, col=tok.col, target=target,
                        op="+=" if op_tok.text == "++" else "-=", value=one,
                    )
                self.pos = start  # not an assignment — reparse as expression
        expr = self._expression()
        return A.ExprStmt(line=tok.line, col=tok.col, expr=expr)

    def _try_target(self) -> Optional[A.Expr]:
        """Parse ``IDENT`` or ``IDENT[expr]`` if it is followed by an
        assignment operator; otherwise restore position and return None."""
        start = self.pos
        name_tok = self._advance()
        node: A.Expr = A.VarRef(
            line=name_tok.line, col=name_tok.col, name=name_tok.text
        )
        if self._check("op", "["):
            self._advance()
            index = self._expression()
            if not self._accept("op", "]"):
                self.pos = start
                return None
            node = A.Index(
                line=name_tok.line, col=name_tok.col, base=node, index=index
            )
        if self.cur.kind == "op" and self.cur.text in (
            _ASSIGN_OPS | {"++", "--"}
        ):
            return node
        self.pos = start
        return None

    # -- expressions -----------------------------------------------------------

    def _expression(self) -> A.Expr:
        return self._binary(1)

    def _binary(self, min_prec: int) -> A.Expr:
        left = self._unary()
        while True:
            tok = self.cur
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._binary(prec + 1)
            left = A.Binary(
                line=tok.line, col=tok.col, op=tok.text, left=left, right=right
            )

    def _unary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self._advance()
            operand = self._unary()
            return A.Unary(line=tok.line, col=tok.col, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text == "+":
            self._advance()
            return self._unary()
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while self._check("op", "["):
            at = self._advance()
            index = self._expression()
            self._expect("op", "]")
            expr = A.Index(line=at.line, col=at.col, base=expr, index=index)
        return expr

    def _primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "int_lit":
            self._advance()
            return A.IntLit(line=tok.line, col=tok.col, value=int(tok.text, 0))
        if tok.kind == "float_lit":
            self._advance()
            return A.FloatLit(line=tok.line, col=tok.col, value=float(tok.text))
        if tok.kind == "keyword" and tok.text in ("int", "float"):
            self._advance()
            self._expect("op", "(")
            operand = self._expression()
            self._expect("op", ")")
            return A.CastExpr(
                line=tok.line, col=tok.col, target=tok.text, operand=operand
            )
        if tok.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: List[A.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._expression())
                    while self._accept("op", ","):
                        args.append(self._expression())
                self._expect("op", ")")
                return A.CallExpr(
                    line=tok.line, col=tok.col, name=tok.text, args=args
                )
            return A.VarRef(line=tok.line, col=tok.col, name=tok.text)
        if self._accept("op", "("):
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {tok.text!r} in expression")


def parse_program(source: str) -> A.Program:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse()
