"""MiniC abstract syntax tree.

Nodes carry source positions for diagnostics and, after semantic
analysis (:mod:`repro.frontend.sema`), a resolved ``ty`` annotation on
every expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = [
    "Node",
    "Program",
    "GlobalDecl",
    "FunctionDecl",
    "Param",
    "Block",
    "VarDecl",
    "Assign",
    "If",
    "While",
    "For",
    "Return",
    "Break",
    "Continue",
    "ExprStmt",
    "IntLit",
    "FloatLit",
    "VarRef",
    "Index",
    "Unary",
    "Binary",
    "CallExpr",
    "CastExpr",
    "PrintStmt",
]


@dataclass
class Node:
    line: int = 0
    col: int = 0


# -- expressions ---------------------------------------------------------


@dataclass
class Expr(Node):
    #: resolved MiniC type, set by sema: 'int' | 'float' | ('array', base) | ('ptr', base)
    ty: object = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Unary(Expr):
    op: str = ""          # '-' | '!' | '~'
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    target: str = ""      # 'int' | 'float'
    operand: Expr = None


# -- statements -----------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    base_type: str = ""            # 'int' | 'float'
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    array_init: Optional[List[Expr]] = None


@dataclass
class Assign(Stmt):
    target: Expr = None            # VarRef or Index
    op: str = "="                  # '=', '+=', '-=', '*=', '/=', '%=', '<<=', '>>='
    value: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then_body: Block = None
    else_body: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None    # VarDecl or Assign
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None    # Assign
    body: Block = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class PrintStmt(Stmt):
    kind: str = "print"            # 'print' | 'printc' | 'prints'
    arg: Union[Expr, str, None] = None


# -- declarations ------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    base_type: str = ""            # 'int' | 'float'
    is_array: bool = False


@dataclass
class FunctionDecl(Node):
    name: str = ""
    return_type: str = "void"      # 'int' | 'float' | 'void'
    params: List[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class GlobalDecl(Node):
    name: str = ""
    base_type: str = ""
    array_size: Optional[int] = None
    init_scalar: Optional[Union[int, float]] = None
    init_list: Optional[List[Union[int, float]]] = None
    is_const: bool = False


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
