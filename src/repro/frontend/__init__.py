"""MiniC frontend: lexer, parser, semantic analysis, IR code generation."""

from .codegen import compile_ast, compile_source  # noqa: F401
from .parser import parse_program  # noqa: F401
from .sema import analyze  # noqa: F401

__all__ = ["compile_source", "compile_ast", "parse_program", "analyze"]
