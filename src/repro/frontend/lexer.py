"""MiniC lexer.

MiniC is the C-like source language the benchmark suite is written in.
The token set covers the C subset Clang ``-O0`` compiles to the IR
vocabulary of :mod:`repro.ir`: ints, floats, 1-D arrays, functions,
control flow, and the print/math builtins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import ParseError

__all__ = ["Token", "Lexer", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    [
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "global",
        "const",
    ]
)

# multi-char operators, longest first so maximal munch works
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    kind: str          # 'int_lit' | 'float_lit' | 'ident' | 'keyword' | 'op' | 'string' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, msg: str) -> ParseError:
        return ParseError(msg, self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def tokens(self) -> Iterator[Token]:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            # whitespace
            if ch in " \t\r\n":
                self._advance()
                continue
            # comments
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(src) and not (
                    src[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(src):
                    raise self._error("unterminated block comment")
                self._advance(2)
                continue

            line, col = self.line, self.col

            # numbers
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._number(line, col)
                continue
            # identifiers / keywords
            if ch.isalpha() or ch == "_":
                start = self.pos
                while self.pos < len(src) and (
                    src[self.pos].isalnum() or src[self.pos] == "_"
                ):
                    self._advance()
                text = src[start : self.pos]
                kind = "keyword" if text in KEYWORDS else "ident"
                yield Token(kind, text, line, col)
                continue
            # string literal (prints builtin only)
            if ch == '"':
                yield self._string(line, col)
                continue
            # char literal -> int token
            if ch == "'":
                yield self._char(line, col)
                continue
            # operators
            for op in _OPERATORS:
                if src.startswith(op, self.pos):
                    self._advance(len(op))
                    yield Token("op", op, line, col)
                    break
            else:
                raise self._error(f"unexpected character {ch!r}")
        yield Token("eof", "", self.line, self.col)

    def _number(self, line: int, col: int) -> Token:
        src = self.source
        start = self.pos
        if src.startswith("0x", self.pos) or src.startswith("0X", self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self._advance()
            return Token("int_lit", src[start : self.pos], line, col)
        is_float = False
        while self.pos < len(src) and src[self.pos].isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance()
        elif self._peek() == ".":
            is_float = True
            self._advance()
        if self._peek() in "eE":
            nxt = self._peek(1)
            if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self.pos < len(src) and src[self.pos].isdigit():
                    self._advance()
        kind = "float_lit" if is_float else "int_lit"
        return Token(kind, src[start : self.pos], line, col)

    def _string(self, line: int, col: int) -> Token:
        src = self.source
        self._advance()  # opening quote
        chars: List[str] = []
        while self.pos < len(src) and src[self.pos] != '"':
            ch = src[self.pos]
            if ch == "\\":
                self._advance()
                esc = self._peek()
                mapping = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}
                if esc not in mapping:
                    raise self._error(f"bad escape \\{esc}")
                chars.append(mapping[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        if self.pos >= len(src):
            raise self._error("unterminated string literal")
        self._advance()  # closing quote
        return Token("string", "".join(chars), line, col)

    def _char(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._peek()
            mapping = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'"}
            if esc not in mapping:
                raise self._error(f"bad escape \\{esc}")
            ch = mapping[esc]
        self._advance()
        if self._peek() != "'":
            raise self._error("unterminated char literal")
        self._advance()
        return Token("int_lit", str(ord(ch)), line, col)


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source into a token list ending with an EOF token."""
    return list(Lexer(source).tokens())
