"""MiniC -> IR code generation, following the Clang ``-O0`` discipline.

The properties the paper's cross-layer analysis relies on are preserved
deliberately:

* every variable lives in an ``alloca``; every use loads it, every
  assignment stores it (no mem2reg);
* expression temporaries are fresh IR values consumed exactly once;
* short-circuit ``&&``/``||`` compile to control flow through an ``i1``
  stack slot;
* comparisons produce ``i1`` values that feed ``condbr`` directly when
  used as conditions (the icmp/br adjacency that branch lowering later
  depends on).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import SemanticError
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import function_type
from ..ir.values import GlobalVariable, Value, const_float, const_int
from . import ast_nodes as A
from .parser import parse_program
from .sema import BUILTIN_MATH, FunctionSig, analyze

__all__ = ["compile_source", "compile_ast", "CodeGenerator"]


def _ir_scalar(base: str) -> T.Type:
    return T.F64 if base == "float" else T.I64


class _LoopContext:
    def __init__(self, cond_block: BasicBlock, exit_block: BasicBlock):
        self.continue_target = cond_block
        self.break_target = exit_block


class CodeGenerator:
    """Translates an analyzed MiniC AST into an IR module."""

    def __init__(self, program: A.Program, name: str = "minic"):
        self.program = program
        self.signatures: Dict[str, FunctionSig] = analyze(program)
        self.module = Module(name)
        self.ir_functions: Dict[str, Function] = {}
        # per-function state
        self.builder: Optional[IRBuilder] = None
        self.entry_block: Optional[BasicBlock] = None
        self.current_sig: Optional[FunctionSig] = None
        self.scopes: List[Dict[str, Tuple[Value, object]]] = []
        self.loops: List[_LoopContext] = []

    # -- module level -----------------------------------------------------

    def generate(self) -> Module:
        for g in self.program.globals:
            self._global(g)
        # declare all functions first so calls resolve in any order
        for fn in self.program.functions:
            sig = self.signatures[fn.name]
            ret = (
                T.VOID if sig.return_type == "void" else _ir_scalar(sig.return_type)
            )
            params = [
                T.ptr(_ir_scalar(base)) if is_array else _ir_scalar(base)
                for base, is_array in sig.params
            ]
            self.ir_functions[fn.name] = self.module.add_function(
                fn.name, function_type(ret, params)
            )
        for fn in self.program.functions:
            self._function(fn)
        return self.module

    def _global(self, g: A.GlobalDecl) -> None:
        scalar = _ir_scalar(g.base_type)
        if g.array_size is not None:
            vt: T.Type = T.array(scalar, g.array_size)
            init = g.init_list
        else:
            vt = scalar
            init = g.init_scalar
        self.module.global_var(g.name, vt, init, is_const=g.is_const)

    # -- function level -----------------------------------------------------

    def _function(self, fn: A.FunctionDecl) -> None:
        ir_fn = self.ir_functions[fn.name]
        self.current_sig = self.signatures[fn.name]
        self.builder = IRBuilder(ir_fn)
        self.entry_block = ir_fn.new_block("entry")
        body = ir_fn.new_block("body")
        self.builder.set_block(body)
        self.scopes = [{}]
        self.loops = []

        # parameters spill to allocas immediately (the -O0 discipline)
        for p, arg in zip(fn.params, ir_fn.args):
            arg.name = p.name
            slot = self._entry_alloca(arg.type, p.name)
            self.builder.store(arg, slot)
            ty = ("arr", p.base_type) if p.is_array else p.base_type
            self.scopes[-1][p.name] = (slot, ty)

        self._gen_block(fn.body, new_scope=False)

        # implicit return if control can fall off the end
        if not self.builder.is_terminated:
            self._default_return(fn)
        # terminate any stray unterminated dead blocks
        for block in ir_fn.blocks:
            if block is self.entry_block:
                continue
            if block.terminator is None:
                saved = self.builder.block
                self.builder.set_block(block)
                self._default_return(fn)
                self.builder.set_block(saved)
        # entry holds only allocas; finish it with a jump into the body
        self.entry_block.append(self._mk_br(body))

    def _default_return(self, fn: A.FunctionDecl) -> None:
        if fn.return_type == "void":
            self.builder.ret()
        elif fn.return_type == "float":
            self.builder.ret(const_float(0.0))
        else:
            self.builder.ret(const_int(0, T.I64))

    def _mk_br(self, target: BasicBlock):
        from ..ir.instructions import Br

        br = Br(target)
        self.module.assign_iid(br)
        return br

    def _entry_alloca(self, ty: T.Type, name: str) -> Value:
        from ..ir.instructions import Alloca

        inst = Alloca(ty, name)
        self.module.assign_iid(inst)
        self.entry_block.instructions.append(inst)
        inst.parent = self.entry_block
        return inst

    # -- scopes -----------------------------------------------------------------

    def _declare(self, name: str, slot: Value, ty: object) -> None:
        self.scopes[-1][name] = (slot, ty)

    def _lookup(self, name: str) -> Optional[Tuple[Value, object]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        gv = self.module.globals.get(name)
        if gv is not None:
            ty = (
                ("arr", "float" if gv.value_type.flattened_element.is_float else "int")
                if gv.value_type.is_array
                else ("float" if gv.value_type.is_float else "int")
            )
            return gv, ty
        return None

    # -- statements ----------------------------------------------------------------

    def _gen_block(self, block: A.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.statements:
            self._gen_stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def _gen_stmt(self, stmt: A.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, A.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, A.VarDecl):
            self._gen_vardecl(stmt)
        elif isinstance(stmt, A.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, A.If):
            self._gen_if(stmt)
        elif isinstance(stmt, A.While):
            self._gen_while(stmt)
        elif isinstance(stmt, A.For):
            self._gen_for(stmt)
        elif isinstance(stmt, A.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, A.Break):
            b.br(self.loops[-1].break_target)
            b.set_block(b.new_block("after.break"))
        elif isinstance(stmt, A.Continue):
            b.br(self.loops[-1].continue_target)
            b.set_block(b.new_block("after.continue"))
        elif isinstance(stmt, A.ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, A.PrintStmt):
            self._gen_print(stmt)
        else:  # pragma: no cover
            raise SemanticError(f"cannot generate {type(stmt).__name__}")

    def _gen_vardecl(self, decl: A.VarDecl) -> None:
        b = self.builder
        scalar = _ir_scalar(decl.base_type)
        if decl.array_size is not None:
            slot = self._entry_alloca(T.array(scalar, decl.array_size), decl.name)
            self._declare(decl.name, slot, ("arr", decl.base_type))
            if decl.array_init is not None:
                for i, e in enumerate(decl.array_init):
                    val = self._gen_expr_as(e, decl.base_type)
                    addr = b.gep(slot, const_int(i, T.I64))
                    b.store(val, addr)
        else:
            slot = self._entry_alloca(scalar, decl.name)
            self._declare(decl.name, slot, decl.base_type)
            if decl.init is not None:
                val = self._gen_expr_as(decl.init, decl.base_type)
                b.store(val, slot)

    def _gen_assign(self, stmt: A.Assign) -> None:
        b = self.builder
        addr, elem_ty = self._gen_lvalue(stmt.target)
        if stmt.op == "=":
            value = self._gen_expr_as(stmt.value, elem_ty)
            b.store(value, addr)
            return
        # compound assignment: load, combine, store
        current = b.load(addr)
        op = stmt.op[:-1]  # '+=' -> '+'
        if elem_ty == "float":
            rhs = self._gen_expr_as(stmt.value, "float")
            combined = b.binop(_FLOAT_OPS[op], current, rhs)
        else:
            rhs = self._gen_expr_as(stmt.value, "int")
            combined = b.binop(_INT_OPS[op], current, rhs)
        b.store(combined, addr)

    def _gen_if(self, stmt: A.If) -> None:
        b = self.builder
        cond = self._gen_cond(stmt.cond)
        then_block = b.new_block("if.then")
        end_block = b.new_block("if.end")
        else_block = b.new_block("if.else") if stmt.else_body else end_block
        b.condbr(cond, then_block, else_block)
        b.set_block(then_block)
        self._gen_block(stmt.then_body)
        if not b.is_terminated:
            b.br(end_block)
        if stmt.else_body is not None:
            b.set_block(else_block)
            self._gen_block(stmt.else_body)
            if not b.is_terminated:
                b.br(end_block)
        b.set_block(end_block)

    def _gen_while(self, stmt: A.While) -> None:
        b = self.builder
        cond_block = b.new_block("while.cond")
        body_block = b.new_block("while.body")
        exit_block = b.new_block("while.end")
        b.br(cond_block)
        b.set_block(cond_block)
        cond = self._gen_cond(stmt.cond)
        b.condbr(cond, body_block, exit_block)
        b.set_block(body_block)
        self.loops.append(_LoopContext(cond_block, exit_block))
        self._gen_block(stmt.body)
        self.loops.pop()
        if not b.is_terminated:
            b.br(cond_block)
        b.set_block(exit_block)

    def _gen_for(self, stmt: A.For) -> None:
        b = self.builder
        self.scopes.append({})  # for-init scope
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        cond_block = b.new_block("for.cond")
        body_block = b.new_block("for.body")
        step_block = b.new_block("for.step")
        exit_block = b.new_block("for.end")
        b.br(cond_block)
        b.set_block(cond_block)
        if stmt.cond is not None:
            cond = self._gen_cond(stmt.cond)
            b.condbr(cond, body_block, exit_block)
        else:
            b.br(body_block)
        b.set_block(body_block)
        self.loops.append(_LoopContext(step_block, exit_block))
        self._gen_block(stmt.body)
        self.loops.pop()
        if not b.is_terminated:
            b.br(step_block)
        b.set_block(step_block)
        if stmt.step is not None:
            self._gen_stmt(stmt.step)
        b.br(cond_block)
        b.set_block(exit_block)
        self.scopes.pop()

    def _gen_return(self, stmt: A.Return) -> None:
        b = self.builder
        sig = self.current_sig
        assert sig is not None
        if stmt.value is None:
            b.ret()
        else:
            b.ret(self._gen_expr_as(stmt.value, sig.return_type))
        b.set_block(b.new_block("after.return"))

    def _gen_print(self, stmt: A.PrintStmt) -> None:
        b = self.builder
        if stmt.kind == "prints":
            for ch in stmt.arg:  # type: ignore[union-attr]
                b.call("print_char", [const_int(ord(ch), T.I64)], ret_type=T.VOID)
            return
        val, ty = self._gen_expr(stmt.arg)  # type: ignore[arg-type]
        if stmt.kind == "printc":
            val = self._convert(val, ty, "int")
            b.call("print_char", [val], ret_type=T.VOID)
        elif ty == "float":
            b.call("print_f64", [val], ret_type=T.VOID)
        else:
            b.call("print_i64", [val], ret_type=T.VOID)

    # -- lvalues --------------------------------------------------------------------

    def _gen_lvalue(self, expr: A.Expr) -> Tuple[Value, str]:
        """Address of an assignable location + its element MiniC type."""
        b = self.builder
        if isinstance(expr, A.VarRef):
            found = self._lookup(expr.name)
            assert found is not None
            slot, ty = found
            if isinstance(ty, tuple):
                raise SemanticError(
                    f"cannot assign to array {expr.name!r}", expr.line, expr.col
                )
            return slot, ty
        if isinstance(expr, A.Index):
            base_ptr, elem_ty = self._array_pointer(expr.base)
            idx = self._gen_expr_as(expr.index, "int")
            return b.gep(base_ptr, idx), elem_ty
        raise SemanticError("invalid assignment target", expr.line, expr.col)

    def _array_pointer(self, expr: A.Expr) -> Tuple[Value, str]:
        """Pointer value suitable for GEP + element MiniC type."""
        if not isinstance(expr, A.VarRef):
            raise SemanticError(
                "only named arrays can be indexed", expr.line, expr.col
            )
        found = self._lookup(expr.name)
        assert found is not None
        slot, ty = found
        assert isinstance(ty, tuple), "sema guarantees array type here"
        elem = ty[1]
        if isinstance(slot, GlobalVariable):
            return slot, elem            # ptr-to-array; Gep handles decay
        if isinstance(slot, Instruction) and slot.opcode == "alloca":
            if slot.type.pointee.is_array:
                return slot, elem        # local array alloca
            return self.builder.load(slot), elem  # array parameter slot
        return slot, elem  # pragma: no cover

    # -- expressions -----------------------------------------------------------------

    def _gen_expr_as(self, expr: A.Expr, want: str) -> Value:
        val, ty = self._gen_expr(expr)
        return self._convert(val, ty, want)

    def _convert(self, val: Value, from_ty: object, to_ty: object) -> Value:
        if from_ty == to_ty:
            return val
        b = self.builder
        if from_ty == "int" and to_ty == "float":
            return b.sitofp(val)
        if from_ty == "float" and to_ty == "int":
            return b.fptosi(val, T.I64)
        raise SemanticError(f"cannot convert {from_ty} to {to_ty}")

    def _gen_expr(self, expr: A.Expr) -> Tuple[Value, str]:
        b = self.builder
        if isinstance(expr, A.IntLit):
            return const_int(expr.value, T.I64), "int"
        if isinstance(expr, A.FloatLit):
            return const_float(expr.value), "float"
        if isinstance(expr, A.VarRef):
            found = self._lookup(expr.name)
            assert found is not None, f"sema missed {expr.name!r}"
            slot, ty = found
            if isinstance(ty, tuple):
                raise SemanticError(
                    f"array {expr.name!r} used as a value",
                    expr.line, expr.col,
                )
            return b.load(slot), ty
        if isinstance(expr, A.Index):
            base_ptr, elem_ty = self._array_pointer(expr.base)
            idx = self._gen_expr_as(expr.index, "int")
            return b.load(b.gep(base_ptr, idx)), elem_ty
        if isinstance(expr, A.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, A.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, A.CastExpr):
            val, ty = self._gen_expr(expr.operand)
            return self._convert(val, ty, expr.target), expr.target
        if isinstance(expr, A.CallExpr):
            return self._gen_call(expr)
        raise SemanticError(f"cannot generate {type(expr).__name__}")

    def _gen_unary(self, expr: A.Unary) -> Tuple[Value, str]:
        b = self.builder
        if expr.op == "!":
            cond = self._gen_cond(expr.operand)
            flipped = b.xor(cond, const_int(1, T.I1))
            return b.zext(flipped, T.I64), "int"
        val, ty = self._gen_expr(expr.operand)
        if expr.op == "-":
            if ty == "float":
                return b.fsub(const_float(0.0), val), "float"
            return b.sub(const_int(0, T.I64), val), "int"
        if expr.op == "~":
            return b.xor(val, const_int(-1, T.I64)), "int"
        raise SemanticError(f"unknown unary {expr.op!r}")  # pragma: no cover

    def _gen_binary(self, expr: A.Binary) -> Tuple[Value, str]:
        b = self.builder
        op = expr.op
        if op in ("&&", "||"):
            cond = self._gen_shortcircuit(expr)
            return b.zext(cond, T.I64), "int"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            cond = self._gen_comparison(expr)
            return b.zext(cond, T.I64), "int"
        lt = expr.left.ty
        rt = expr.right.ty
        if op in ("%", "<<", ">>", "&", "|", "^") or ("float" not in (lt, rt)):
            left = self._gen_expr_as(expr.left, "int")
            right = self._gen_expr_as(expr.right, "int")
            return b.binop(_INT_OPS[op], left, right), "int"
        left = self._gen_expr_as(expr.left, "float")
        right = self._gen_expr_as(expr.right, "float")
        return b.binop(_FLOAT_OPS[op], left, right), "float"

    def _gen_comparison(self, expr: A.Binary) -> Value:
        b = self.builder
        lt, rt = expr.left.ty, expr.right.ty
        if "float" in (lt, rt):
            left = self._gen_expr_as(expr.left, "float")
            right = self._gen_expr_as(expr.right, "float")
            return b.fcmp(_FCMP[expr.op], left, right)
        left = self._gen_expr_as(expr.left, "int")
        right = self._gen_expr_as(expr.right, "int")
        return b.icmp(_ICMP[expr.op], left, right)

    def _gen_shortcircuit(self, expr: A.Binary) -> Value:
        """C-style short-circuit through an i1 stack slot (Clang -O0)."""
        b = self.builder
        slot = self._entry_alloca(T.I1, "sc.tmp")
        left = self._gen_cond(expr.left)
        rhs_block = b.new_block("sc.rhs")
        end_block = b.new_block("sc.end")
        b.store(left, slot)
        if expr.op == "&&":
            b.condbr(left, rhs_block, end_block)
        else:
            b.condbr(left, end_block, rhs_block)
        b.set_block(rhs_block)
        right = self._gen_cond(expr.right)
        b.store(right, slot)
        b.br(end_block)
        b.set_block(end_block)
        return b.load(slot)

    def _gen_cond(self, expr: A.Expr) -> Value:
        """Evaluate an expression as an ``i1`` condition."""
        b = self.builder
        if isinstance(expr, A.Binary) and expr.op in _ICMP:
            return self._gen_comparison(expr)
        if isinstance(expr, A.Binary) and expr.op in ("&&", "||"):
            return self._gen_shortcircuit(expr)
        if isinstance(expr, A.Unary) and expr.op == "!":
            inner = self._gen_cond(expr.operand)
            return b.xor(inner, const_int(1, T.I1))
        val, ty = self._gen_expr(expr)
        if ty == "float":
            return b.fcmp("one", val, const_float(0.0))
        return b.icmp("ne", val, const_int(0, T.I64))

    def _gen_call(self, expr: A.CallExpr) -> Tuple[Value, str]:
        b = self.builder
        if expr.name in BUILTIN_MATH:
            intrinsic, _ = BUILTIN_MATH[expr.name]
            args = [self._gen_expr_as(a, "float") for a in expr.args]
            return b.call(intrinsic, args, ret_type=T.F64), "float"
        sig = self.signatures[expr.name]
        callee = self.ir_functions[expr.name]
        args: List[Value] = []
        for a, (base, is_array) in zip(expr.args, sig.params):
            if is_array:
                args.append(self._array_argument(a, base))
            else:
                args.append(self._gen_expr_as(a, base))
        result = b.call(callee, args)
        if sig.return_type == "void":
            return result, "void"
        return result, sig.return_type

    def _array_argument(self, expr: A.Expr, base: str) -> Value:
        """Array-to-pointer decay for a call argument."""
        b = self.builder
        ptr, _elem = self._array_pointer(expr)
        want = T.ptr(_ir_scalar(base))
        if ptr.type is want:
            return ptr
        return b.cast("bitcast", ptr, want)


_INT_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
    "<<": "shl", ">>": "ashr", "&": "and", "|": "or", "^": "xor",
}
_FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_ICMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
_FCMP = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}


def compile_ast(program: A.Program, name: str = "minic") -> Module:
    """Generate IR from a parsed (not yet analyzed) AST."""
    return CodeGenerator(program, name).generate()


def compile_source(source: str, name: str = "minic") -> Module:
    """Compile MiniC source text into a verified IR module."""
    from ..ir.verifier import verify_module

    module = compile_ast(parse_program(source), name)
    verify_module(module)
    return module
