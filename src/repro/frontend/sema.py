"""MiniC semantic analysis.

Resolves names, checks types, and annotates every expression node with
its MiniC type so the code generator can be a straightforward syntax-
directed translation.

MiniC types (the ``ty`` annotation):

* ``"int"``   — 64-bit signed integer
* ``"float"`` — binary64
* ``("arr", base)`` — an array object (only as the type of an array
  variable name; decays to a pointer when indexed or passed)

Implicit conversions follow C: ``int`` promotes to ``float`` in mixed
arithmetic/comparisons; assignments convert the value to the target's
type.  Conditions accept either scalar type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SemanticError
from . import ast_nodes as A

__all__ = ["analyze", "BUILTIN_MATH", "FunctionSig"]

#: MiniC builtin name -> (intrinsic name, arity)
BUILTIN_MATH: Dict[str, Tuple[str, int]] = {
    "sqrt": ("sqrt_f64", 1),
    "log": ("log_f64", 1),
    "exp": ("exp_f64", 1),
    "sin": ("sin_f64", 1),
    "cos": ("cos_f64", 1),
    "fabs": ("fabs_f64", 1),
    "pow": ("pow_f64", 2),
    "floor": ("floor_f64", 1),
}

_INT_ONLY_OPS = frozenset(["%", "<<", ">>", "&", "|", "^", "&&", "||"])
_CMP_OPS = frozenset(["==", "!=", "<", "<=", ">", ">="])


@dataclass
class FunctionSig:
    name: str
    return_type: str                       # 'int' | 'float' | 'void'
    params: List[Tuple[str, bool]]         # (base_type, is_array)


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, object] = {}

    def declare(self, name: str, ty: object, node: A.Node) -> None:
        if name in self.vars:
            raise SemanticError(f"redeclaration of {name!r}", node.line, node.col)
        self.vars[name] = ty

    def lookup(self, name: str) -> Optional[object]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class Analyzer:
    def __init__(self, program: A.Program):
        self.program = program
        self.globals: Dict[str, object] = {}
        self.functions: Dict[str, FunctionSig] = {}
        self.current_fn: Optional[FunctionSig] = None
        self.loop_depth = 0

    def _err(self, msg: str, node: A.Node) -> SemanticError:
        return SemanticError(msg, node.line, node.col)

    # -- driver ----------------------------------------------------------

    def run(self) -> Dict[str, FunctionSig]:
        for g in self.program.globals:
            if g.name in self.globals:
                raise self._err(f"redeclaration of global {g.name!r}", g)
            ty = ("arr", g.base_type) if g.array_size is not None else g.base_type
            if g.array_size is not None and g.array_size <= 0:
                raise self._err(f"array size must be positive", g)
            if g.init_list is not None and g.array_size is None:
                raise self._err("brace initializer on non-array global", g)
            if (
                g.init_list is not None
                and g.array_size is not None
                and len(g.init_list) > g.array_size
            ):
                raise self._err(
                    f"too many initializers for {g.name!r} "
                    f"({len(g.init_list)} > {g.array_size})", g,
                )
            self.globals[g.name] = ty

        for fn in self.program.functions:
            if fn.name in self.functions:
                raise self._err(f"redefinition of function {fn.name!r}", fn)
            if fn.name in BUILTIN_MATH:
                raise self._err(f"{fn.name!r} shadows a builtin", fn)
            self.functions[fn.name] = FunctionSig(
                fn.name, fn.return_type,
                [(p.base_type, p.is_array) for p in fn.params],
            )

        if "main" not in self.functions:
            raise SemanticError("program has no main function")
        if self.functions["main"].params:
            raise SemanticError("main must take no parameters")

        for fn in self.program.functions:
            self._function(fn)
        return self.functions

    # -- functions & statements ---------------------------------------------

    def _function(self, fn: A.FunctionDecl) -> None:
        self.current_fn = self.functions[fn.name]
        scope = _Scope()
        seen = set()
        for p in fn.params:
            if p.name in seen:
                raise self._err(f"duplicate parameter {p.name!r}", p)
            seen.add(p.name)
            ty = ("arr", p.base_type) if p.is_array else p.base_type
            scope.declare(p.name, ty, p)
        self._block(fn.body, scope)
        self.current_fn = None

    def _block(self, block: A.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.statements:
            self._statement(stmt, scope)

    def _statement(self, stmt: A.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, A.Block):
            self._block(stmt, scope)
        elif isinstance(stmt, A.VarDecl):
            self._vardecl(stmt, scope)
        elif isinstance(stmt, A.Assign):
            self._assign(stmt, scope)
        elif isinstance(stmt, A.If):
            self._scalar(self._expr(stmt.cond, scope), stmt.cond, "if condition")
            self._block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._block(stmt.else_body, scope)
        elif isinstance(stmt, A.While):
            self._scalar(self._expr(stmt.cond, scope), stmt.cond, "while condition")
            self.loop_depth += 1
            self._block(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._statement(stmt.init, inner)
            if stmt.cond is not None:
                self._scalar(self._expr(stmt.cond, inner), stmt.cond, "for condition")
            if stmt.step is not None:
                self._statement(stmt.step, inner)
            self.loop_depth += 1
            self._block(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, A.Return):
            assert self.current_fn is not None
            want = self.current_fn.return_type
            if stmt.value is None:
                if want != "void":
                    raise self._err(
                        f"return without value in {want} function", stmt
                    )
            else:
                if want == "void":
                    raise self._err("return with value in void function", stmt)
                got = self._expr(stmt.value, scope)
                self._scalar(got, stmt.value, "return value")
        elif isinstance(stmt, (A.Break, A.Continue)):
            if self.loop_depth == 0:
                kw = "break" if isinstance(stmt, A.Break) else "continue"
                raise self._err(f"{kw} outside of a loop", stmt)
        elif isinstance(stmt, A.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, A.PrintStmt):
            if stmt.kind != "prints":
                ty = self._expr(stmt.arg, scope)  # type: ignore[arg-type]
                self._scalar(ty, stmt.arg, "print argument")  # type: ignore[arg-type]
        else:  # pragma: no cover - parser produces no other nodes
            raise self._err(f"unknown statement {type(stmt).__name__}", stmt)

    def _vardecl(self, decl: A.VarDecl, scope: _Scope) -> None:
        if decl.array_size is not None:
            if decl.array_size <= 0:
                raise self._err("array size must be positive", decl)
            if decl.array_init is not None:
                if len(decl.array_init) > decl.array_size:
                    raise self._err("too many array initializers", decl)
                for e in decl.array_init:
                    self._scalar(self._expr(e, scope), e, "array initializer")
            scope.declare(decl.name, ("arr", decl.base_type), decl)
        else:
            if decl.init is not None:
                self._scalar(self._expr(decl.init, scope), decl.init, "initializer")
            scope.declare(decl.name, decl.base_type, decl)

    def _assign(self, stmt: A.Assign, scope: _Scope) -> None:
        target_ty = self._expr(stmt.target, scope)
        if not isinstance(stmt.target, (A.VarRef, A.Index)):
            raise self._err("invalid assignment target", stmt)
        if isinstance(target_ty, tuple):
            raise self._err("cannot assign to an array", stmt)
        value_ty = self._expr(stmt.value, scope)
        self._scalar(value_ty, stmt.value, "assigned value")
        if stmt.op in ("%=", "<<=", ">>=") and (
            target_ty != "int" or value_ty != "int"
        ):
            raise self._err(f"{stmt.op} requires int operands", stmt)

    # -- expressions -------------------------------------------------------------

    def _scalar(self, ty: object, node: A.Node, what: str) -> None:
        if ty not in ("int", "float"):
            raise self._err(f"{what} must be a scalar, got array", node)

    def _expr(self, expr: A.Expr, scope: _Scope) -> object:
        ty = self._expr_inner(expr, scope)
        expr.ty = ty
        return ty

    def _expr_inner(self, expr: A.Expr, scope: _Scope) -> object:
        if isinstance(expr, A.IntLit):
            return "int"
        if isinstance(expr, A.FloatLit):
            return "float"
        if isinstance(expr, A.VarRef):
            ty = scope.lookup(expr.name)
            if ty is None:
                ty = self.globals.get(expr.name)
            if ty is None:
                raise self._err(f"undeclared identifier {expr.name!r}", expr)
            return ty
        if isinstance(expr, A.Index):
            base_ty = self._expr(expr.base, scope)
            if not isinstance(base_ty, tuple):
                raise self._err("indexing a non-array", expr)
            idx_ty = self._expr(expr.index, scope)
            if idx_ty != "int":
                raise self._err("array index must be int", expr)
            return base_ty[1]
        if isinstance(expr, A.Unary):
            ty = self._expr(expr.operand, scope)
            self._scalar(ty, expr, f"operand of {expr.op}")
            if expr.op == "~" and ty != "int":
                raise self._err("~ requires an int operand", expr)
            if expr.op == "!":
                return "int"
            return ty
        if isinstance(expr, A.Binary):
            lt = self._expr(expr.left, scope)
            rt = self._expr(expr.right, scope)
            self._scalar(lt, expr.left, f"left operand of {expr.op}")
            self._scalar(rt, expr.right, f"right operand of {expr.op}")
            if expr.op in _INT_ONLY_OPS:
                if lt != "int" or rt != "int":
                    raise self._err(f"{expr.op} requires int operands", expr)
                return "int"
            if expr.op in _CMP_OPS:
                return "int"
            return "float" if ("float" in (lt, rt)) else "int"
        if isinstance(expr, A.CastExpr):
            ty = self._expr(expr.operand, scope)
            self._scalar(ty, expr, "cast operand")
            return expr.target
        if isinstance(expr, A.CallExpr):
            return self._call(expr, scope)
        raise self._err(f"unknown expression {type(expr).__name__}", expr)

    def _call(self, expr: A.CallExpr, scope: _Scope) -> object:
        if expr.name in BUILTIN_MATH:
            _, arity = BUILTIN_MATH[expr.name]
            if len(expr.args) != arity:
                raise self._err(
                    f"{expr.name} expects {arity} argument(s), "
                    f"got {len(expr.args)}", expr,
                )
            for a in expr.args:
                self._scalar(self._expr(a, scope), a, f"argument of {expr.name}")
            return "float"
        sig = self.functions.get(expr.name)
        if sig is None:
            raise self._err(f"call to undeclared function {expr.name!r}", expr)
        if len(expr.args) != len(sig.params):
            raise self._err(
                f"{expr.name} expects {len(sig.params)} argument(s), "
                f"got {len(expr.args)}", expr,
            )
        for i, (a, (base, is_array)) in enumerate(zip(expr.args, sig.params)):
            at = self._expr(a, scope)
            if is_array:
                if at != ("arr", base):
                    raise self._err(
                        f"argument {i + 1} of {expr.name} must be "
                        f"{base}[] (got {_tyname(at)})", a,
                    )
            else:
                self._scalar(at, a, f"argument {i + 1} of {expr.name}")
        return sig.return_type


def _tyname(ty: object) -> str:
    if isinstance(ty, tuple):
        return f"{ty[1]}[]"
    return str(ty)


def analyze(program: A.Program) -> Dict[str, FunctionSig]:
    """Type-check ``program`` in place; returns the function signatures.

    Raises :class:`~repro.errors.SemanticError` on the first problem.
    """
    return Analyzer(program).run()
