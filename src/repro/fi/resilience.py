"""Resilient campaign execution: injection journal + chunked supervisor.

Fault-injection campaigns are the paper's core measurement loop (3,000
injections per benchmark/level/layer), which makes the runner itself a
single point of failure: a crashed worker used to kill the whole
``pool.map``, a hung injection stalled a sweep, and an interrupted
full-experiment run restarted from zero.  This module makes the
campaign loop itself fault-tolerant:

* :class:`InjectionJournal` — an append-only JSONL file, one fsync'd
  line per classified injection, keyed by a content hash of
  ``(WorkSpec, CampaignConfig)``.  Any campaign — serial or parallel —
  can be killed at an arbitrary point and resumed bit-identically:
  already-journaled ``(index, bit)`` samples are replayed from disk and
  only the remainder is re-executed.

* a **chunked supervisor** (:func:`run_supervised`) — replaces the old
  single ``pool.map`` with bounded-size work units, each executed in
  its own spawn process.  The parent drains result rows incrementally,
  detects worker death via exit codes, enforces a per-chunk wall-clock
  watchdog, retries lost work with smaller chunks (a chunk is declared
  permanently failed only after :attr:`ResiliencePolicy.max_retries`
  retries), and degrades gracefully to in-process serial execution when
  process spawning itself is unavailable.

Determinism: the sample list is drawn once up front from the campaign
seed and every row is a pure function of ``(spec, idx, bit,
max_steps)``, so results are bit-identical regardless of worker count,
chunking, retries, or how many times the campaign was interrupted.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, fields as dc_fields
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Tuple

from ..contain import host_escape_result
from ..errors import CampaignError
from ..execresult import ExecResult, RunStatus
from ..interp.interpreter import IRInterpreter
from ..machine.machine import AsmMachine
from .campaign import CampaignConfig, InjectionRecord
from .engine import engine_enabled, run_injection_suite
from .journal import QuarantineLog, append_doc, scan_jsonl
from .outcomes import Outcome, canonical_trap_kind, classify_outcome

__all__ = [
    "WorkSpec",
    "ResiliencePolicy",
    "InjectionJournal",
    "campaign_key",
    "run_supervised",
    "record_from_row",
    "pruned_row",
]

#: positional layout of one journaled/worker row.  Version-1 journals
#: wrote 9-element rows without the trailing ``fault_model``; the loader
#: pads those with ``"seu"`` (the only model that existed then).
#: Version-2 journals wrote 10-element rows without the trailing
#: ``pruned`` flag; the loader pads those with ``0`` (nothing was
#: statically pruned before the flag existed).  ``pruned == 1`` marks a
#: draw the bit-liveness pruner resolved without simulation
#: (:mod:`repro.fi.prune`); its row still carries the golden output so
#: replay classifies it without re-running the analysis.
ROW_FIELDS = ("idx", "bit", "status", "output", "iid",
              "asm_index", "asm_role", "asm_opcode", "trap_kind",
              "fault_model", "pruned")

JOURNAL_VERSION = 3
_LEGACY_ROW_LEN = 9
_V2_ROW_LEN = 10

#: test-only fault hooks — each names a sentinel path; the first worker
#: process to claim the sentinel crashes (or hangs) exactly once, which
#: is how the test suite exercises crash recovery and the watchdog
#: without patching code inside spawn children
_CRASH_ENV = "REPRO_TEST_CRASH_SENTINEL"
_HANG_ENV = "REPRO_TEST_HANG_SENTINEL"


@dataclass(frozen=True)
class WorkSpec:
    """Everything a worker needs to rebuild the program under test."""

    source: str
    name: str = "program"
    level: Optional[int] = None
    flowery: bool = False
    compare_cse: bool = True
    #: explicit protected set (avoids re-profiling inside workers)
    selected: Optional[frozenset] = None
    layer: str = "asm"          # 'ir' | 'asm'
    #: fault model injected by workers ('seu' | 'set' | 'cf')
    fault_model: str = "seu"
    #: add the signature-based control-flow-checking pass after duplication
    cfc: bool = False


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry / watchdog knobs for the chunked supervisor."""

    #: times a chunk's samples may be re-dispatched after a crash or
    #: timeout before the campaign gives up with :class:`CampaignError`
    max_retries: int = 3
    #: per-chunk wall-clock budget, including child start-up + rebuild
    chunk_timeout: float = 300.0
    #: upper bound on samples per work unit (smaller chunks mean finer
    #: journal checkpoints and less work lost per crash, at the cost of
    #: one pipeline rebuild per chunk)
    max_chunk: int = 64
    #: parent poll cadence while draining worker pipes
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise CampaignError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout <= 0:
            raise CampaignError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}")
        if self.max_chunk < 1:
            raise CampaignError(
                f"max_chunk must be >= 1, got {self.max_chunk}")
        if self.poll_interval <= 0:
            raise CampaignError(
                f"poll_interval must be positive, got {self.poll_interval}")


# ---------------------------------------------------------------------------
# campaign identity
# ---------------------------------------------------------------------------

def _spec_doc(spec: WorkSpec) -> dict:
    doc = {f.name: getattr(spec, f.name) for f in dc_fields(WorkSpec)}
    if doc["selected"] is not None:
        doc["selected"] = sorted(doc["selected"])
    # omit fields at their defaults so campaign keys (and journals) from
    # before the fault-model/CFC additions still hash — and resume —
    # identically
    if doc.get("fault_model") == "seu":
        del doc["fault_model"]
    if doc.get("cfc") is False:
        del doc["cfc"]
    return doc


def _config_doc(config: CampaignConfig) -> dict:
    doc = {f.name: getattr(config, f.name)
           for f in dc_fields(CampaignConfig)}
    # omit the pruning switches at their defaults so campaign keys (and
    # journals) from before they existed still hash — and resume —
    # identically
    if doc.get("prune") is False:
        del doc["prune"]
    if doc.get("stratify") is False:
        del doc["stratify"]
    return doc


def _spec_from_doc(doc: dict) -> WorkSpec:
    doc = dict(doc)
    if doc.get("selected") is not None:
        doc["selected"] = frozenset(doc["selected"])
    return WorkSpec(**doc)


def campaign_key(spec: WorkSpec, config: CampaignConfig) -> str:
    """Content hash identifying one campaign's exact inputs.

    Two campaigns share a key iff they would draw the same samples and
    execute the same program — the precondition for replaying journaled
    rows.
    """
    canon = json.dumps(
        {"spec": _spec_doc(spec), "config": _config_doc(config)},
        sort_keys=True,
    )
    return hashlib.sha256(canon.encode()).hexdigest()


# ---------------------------------------------------------------------------
# row helpers shared by workers, serial fallback, and journal replay
# ---------------------------------------------------------------------------

#: process-global memo of built pipelines, keyed by the layer-independent
#: part of the spec (the build is identical for 'ir' and 'asm' work).  A
#: worker process that executes several chunks — or interleaved IR/asm
#: sweeps over the same program — pays the compile cost once.  Bounded
#: LRU so a long multi-benchmark experiment cannot accumulate program
#: graphs without limit.
_BUILD_CACHE: "OrderedDict[str, object]" = OrderedDict()
_BUILD_CACHE_MAX = 8


def _build_cache_key(spec: WorkSpec) -> str:
    doc = _spec_doc(spec)
    # the build depends on neither the layer nor the injected fault model
    doc.pop("layer", None)
    doc.pop("fault_model", None)
    return json.dumps(doc, sort_keys=True)


def _build_from_spec(spec: WorkSpec):
    from ..pipeline import build_from_source

    key = _build_cache_key(spec)
    built = _BUILD_CACHE.get(key)
    if built is not None:
        _BUILD_CACHE.move_to_end(key)
        return built
    built = build_from_source(
        spec.source,
        name=spec.name,
        level=spec.level,
        flowery=spec.flowery,
        compare_cse=spec.compare_cse,
        selected=set(spec.selected) if spec.selected is not None else None,
        cfc=spec.cfc,
    )
    _BUILD_CACHE[key] = built
    while len(_BUILD_CACHE) > _BUILD_CACHE_MAX:
        _BUILD_CACHE.popitem(last=False)
    return built


def _row_from_result(layer: str, idx: int, bit: int, res: ExecResult,
                     fault_model: str = "seu") -> Tuple:
    """Flatten one execution result into a JSON/pickle-safe row."""
    if layer == "ir":
        return (idx, bit, res.status.value, res.output, res.injected_iid,
                None, None, None, res.trap_kind, fault_model, 0)
    return (idx, bit, res.status.value, res.output, res.injected_iid,
            res.extra.get("asm_index"), res.extra.get("asm_role"),
            res.extra.get("asm_opcode"), res.trap_kind, fault_model, 0)


def pruned_row(layer: str, idx: int, bit: int, golden_output: str,
               static_id, fault_model: str, *,
               asm_role=None, asm_opcode=None, iid=None) -> Tuple:
    """Row for a draw the pruner resolved statically.

    The row records the golden output with an OK status (a pruned
    draw's true outcome *is* benign) plus the ``pruned`` flag, so a
    journal replay classifies it as
    :attr:`~repro.fi.outcomes.Outcome.PRUNE_BENIGN` without needing the
    liveness analysis at read time.
    """
    if layer == "ir":
        return (idx, bit, RunStatus.OK.value, golden_output, static_id,
                None, None, None, None, fault_model, 1)
    return (idx, bit, RunStatus.OK.value, golden_output, iid,
            static_id, asm_role, asm_opcode, None, fault_model, 1)


def _execute_chunk(built, layer: str,
                   samples: List[Tuple[int, int, int]], max_steps: int,
                   emit: Callable[[int, Tuple], None],
                   fault_model: str = "seu") -> None:
    """Run one chunk of ``(original_index, idx, bit)`` samples.

    Routes through the checkpoint-replay engine when enabled (the
    chunk's golden prefix is shared across its samples), falling back to
    naive per-sample re-execution otherwise.  ``emit(orig, row)`` fires
    once per sample as soon as its row is classified, so callers can
    stream partial progress (journal writes, pipe sends) even if the
    process dies mid-chunk.
    """
    if engine_enabled():
        def engine_emit(tag, res):
            orig, idx, bit = tag
            emit(orig, _row_from_result(layer, idx, bit, res, fault_model))

        run_injection_suite(
            layer,
            [((orig, idx, bit), idx, bit) for orig, idx, bit in samples],
            max_steps,
            module=getattr(built, "module", None),
            layout=built.layout,
            program=getattr(built, "compiled", None),
            emit=engine_emit,
            fault_model=fault_model,
        )
        return
    for orig, idx, bit in samples:
        emit(orig, _execute_sample(built, layer, idx, bit, max_steps,
                                   fault_model))


def _execute_sample(built, layer: str, idx: int, bit: int,
                    max_steps: int, fault_model: str = "seu") -> Tuple:
    """Run one injection; the returned row is JSON- and pickle-safe.

    A ``MemoryError``/``RecursionError`` that slips past the simulator's
    own containment boundary is a property of this *one* injection, not
    of the worker: classify it as a ``host-escape`` trap row instead of
    letting the process die and burn the supervisor's split-retry
    budget re-executing the same poisoned sample (DESIGN §11).
    """
    try:
        if layer == "ir":
            res = IRInterpreter(
                built.module, layout=built.layout, max_steps=max_steps,
                dispatch="naive", fault_model=fault_model,
            ).run(inject_index=idx, inject_bit=bit)
        else:
            res = AsmMachine(
                built.compiled, built.layout, max_steps=max_steps,
                dispatch="naive", fault_model=fault_model,
            ).run(inject_index=idx, inject_bit=bit)
    except (MemoryError, RecursionError) as exc:
        res = host_escape_result(exc, layer=layer)
    return _row_from_result(layer, idx, bit, res, fault_model)


def record_from_row(row: Tuple, golden_output: str
                    ) -> Tuple[Outcome, InjectionRecord]:
    """Classify one row against the golden output.

    Uses :func:`classify_outcome` on a reconstructed result so journal
    replay and live execution share one classification path.  Rows with
    the ``pruned`` flag short-circuit to
    :attr:`~repro.fi.outcomes.Outcome.PRUNE_BENIGN` — they were never
    simulated, and folding them into plain Benign would hide how much
    work the pruner skipped.
    """
    if len(row) == _LEGACY_ROW_LEN:
        row = row + ("seu",)
    if len(row) == _V2_ROW_LEN:
        row = row + (0,)
    (idx, bit, status, output, iid,
     asm_index, asm_role, asm_opcode, trap_kind, fault_model,
     pruned) = row
    if pruned:
        outcome = Outcome.PRUNE_BENIGN
    else:
        probe = ExecResult(status=RunStatus(status), output=output,
                           dyn_total=0, dyn_injectable=0)
        outcome = classify_outcome(probe, golden_output)
    return outcome, InjectionRecord(
        dyn_index=idx, bit=bit, outcome=outcome, iid=iid,
        asm_index=asm_index, asm_role=asm_role, asm_opcode=asm_opcode,
        trap_kind=canonical_trap_kind(trap_kind),
        fault_model=fault_model,
    )


# ---------------------------------------------------------------------------
# injection journal
# ---------------------------------------------------------------------------

class InjectionJournal:
    """Append-only JSONL checkpoint of classified injections.

    Schema (one JSON object per line)::

        {"ev": "header", "version": 1, "key": <sha256>,
         "spec": {...WorkSpec...}, "config": {...CampaignConfig...}}
        {"ev": "row", "i": <original sample index>, "row": [idx, bit,
         status, output, iid, asm_index, asm_role, asm_opcode,
         trap_kind]}

    Every ``record()`` flushes and fsyncs, so after ``SIGKILL`` at an
    arbitrary point the file holds all fully-classified samples plus at
    most one torn trailing line, which the loader discards.  Opening an
    existing journal whose key does not match the requested
    ``(spec, config)`` raises :class:`CampaignError` rather than
    silently mixing campaigns.
    """

    def __init__(self, path: str, key: str,
                 completed: Dict[int, Tuple], fh) -> None:
        self.path = path
        self.key = key
        self.completed = completed
        self._fh = fh

    # -- constructors ---------------------------------------------------

    @classmethod
    def open(cls, path: str, spec: WorkSpec,
             config: CampaignConfig) -> "InjectionJournal":
        """Open (resuming) or create the journal for ``(spec, config)``."""
        key = campaign_key(spec, config)
        completed: Dict[int, Tuple] = {}
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if exists:
            header, completed = cls._read(path)
            if header is None:
                raise CampaignError(
                    f"journal {path!r} has no readable header")
            if header.get("key") != key:
                raise CampaignError(
                    f"journal {path!r} belongs to a different campaign "
                    f"(journal key {header.get('key', '?')[:12]}..., "
                    f"requested {key[:12]}...); refusing to mix results")
        else:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, key, completed, fh)
        if not exists:
            journal._append({
                "ev": "header", "version": JOURNAL_VERSION, "key": key,
                "spec": _spec_doc(spec), "config": _config_doc(config),
            })
        return journal

    @classmethod
    def peek(cls, path: str
             ) -> Tuple[WorkSpec, CampaignConfig, Dict[int, Tuple]]:
        """Read a journal's identity and completed rows without opening
        it for writing (the ``repro resume`` entry point)."""
        if not os.path.exists(path):
            raise CampaignError(f"no journal at {path!r}")
        header, completed = cls._read(path)
        if header is None:
            raise CampaignError(f"journal {path!r} has no readable header")
        try:
            spec = _spec_from_doc(header["spec"])
            config = CampaignConfig(**header["config"])
        except (KeyError, TypeError) as exc:
            raise CampaignError(
                f"journal {path!r} header is malformed: {exc}") from None
        return spec, config, completed

    @staticmethod
    def _read(path: str) -> Tuple[Optional[dict], Dict[int, Tuple]]:
        """Parse a journal via the shared torn-tail-tolerant scanner.

        An unterminated final line is the torn tail of a killed writer
        and is discarded.  A *complete* line that fails to parse or
        fails its CRC32 checksum is corruption: it is quarantined to
        the ``.quarantine`` sidecar and skipped, so one rotted row
        never shadows the valid rows after it (DESIGN §16).
        """
        state: Dict[str, object] = {"header": None}
        completed: Dict[int, Tuple] = {}

        def on_doc(doc: dict) -> None:
            if doc.get("ev") == "header":
                state["header"] = doc
            elif doc.get("ev") == "row":
                row = doc.get("row")
                if isinstance(doc.get("i"), int) and \
                        isinstance(row, list) and \
                        len(row) in (len(ROW_FIELDS), _V2_ROW_LEN,
                                     _LEGACY_ROW_LEN):
                    if len(row) == _LEGACY_ROW_LEN:
                        row = row + ["seu"]
                    if len(row) == _V2_ROW_LEN:
                        row = row + [0]
                    completed[doc["i"]] = tuple(row)

        scan_jsonl(path, on_doc, quarantine=QuarantineLog(path))
        return state["header"], completed

    # -- writing --------------------------------------------------------

    def _append(self, doc: dict) -> None:
        append_doc(self._fh, doc)

    def record(self, i: int, row: Tuple) -> None:
        """Durably checkpoint one classified sample."""
        self._append({"ev": "row", "i": i, "row": list(row)})
        self.completed[i] = tuple(row)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "InjectionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# chunked supervisor
# ---------------------------------------------------------------------------

@dataclass
class _Chunk:
    """One bounded work unit: samples carry their original index."""

    id: int
    samples: List[Tuple[int, int, int]]     # (original_index, idx, bit)
    retries: int = 0


@dataclass
class _Running:
    proc: object
    conn: object
    chunk: _Chunk
    deadline: float
    secs: Optional[float] = None
    finished: bool = False
    error: Optional[str] = None


def _consume_test_fault(env_var: str) -> bool:
    """Claim a test fault sentinel; at most one process ever wins."""
    path = os.environ.get(env_var)
    if not path:
        return False
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return False
    os.close(fd)
    return True


def _test_fault_hook() -> None:
    if _consume_test_fault(_CRASH_ENV):
        os._exit(3)
    if _consume_test_fault(_HANG_ENV):
        time.sleep(3600)


def _chunk_worker(conn, spec: WorkSpec,
                  samples: List[Tuple[int, int, int]],
                  max_steps: int) -> None:
    """Child entry point: rebuild, run the chunk, stream rows back.

    Rows are sent one at a time so the parent can journal partial
    progress even if this process later crashes or hangs.
    """
    try:
        _test_fault_hook()
        t0 = time.perf_counter()
        built = _build_from_spec(spec)
        _execute_chunk(built, spec.layer, samples, max_steps,
                       lambda orig, row: conn.send(("row", orig, row)),
                       fault_model=spec.fault_model)
        conn.send(("done", time.perf_counter() - t0))
    except Exception as exc:                      # noqa: BLE001
        # surface the failure to the supervisor; it decides on retries
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _chunk_sizes(n: int, workers: int, policy: ResiliencePolicy) -> int:
    """Samples per work unit: one chunk per worker, bounded above."""
    per_worker = -(-n // max(1, workers))         # ceil division
    return max(1, min(policy.max_chunk, per_worker))


def _describe_samples(samples: List[Tuple[int, int, int]]) -> str:
    head = ", ".join(f"#{orig}(idx={idx},bit={bit})"
                     for orig, idx, bit in samples[:4])
    more = f", ... {len(samples) - 4} more" if len(samples) > 4 else ""
    return head + more


def run_supervised(
    spec: WorkSpec,
    samples: List[Tuple[int, int, int]],
    max_steps: int,
    *,
    workers: int,
    policy: Optional[ResiliencePolicy] = None,
    observer=None,
    journal: Optional[InjectionJournal] = None,
    built=None,
) -> Dict[int, Tuple]:
    """Execute ``samples`` (``(original_index, idx, bit)``) and return
    ``{original_index: row}``, surviving worker crashes and hangs.

    ``workers <= 1`` — or any failure to create the spawn context or
    its processes — degrades to in-process serial execution, which
    still journals per-row.
    """
    policy = policy or ResiliencePolicy()
    results: Dict[int, Tuple] = {}
    if not samples:
        return results

    def commit(orig: int, row: Tuple) -> None:
        results[orig] = tuple(row)
        if journal is not None:
            journal.record(orig, results[orig])

    def run_serially(todo: List[Tuple[int, int, int]]) -> None:
        nonlocal built
        if built is None:
            built = _build_from_spec(spec)
        t0 = time.perf_counter()
        remaining = [s for s in todo if s[0] not in results]
        _execute_chunk(built, spec.layer, remaining, max_steps, commit,
                       fault_model=spec.fault_model)
        if observer is not None:
            observer.worker(0, len(todo), time.perf_counter() - t0,
                            layer=spec.layer, mode="serial")

    if workers <= 1:
        run_serially(samples)
        return results

    try:
        ctx = get_context("spawn")
    except ValueError as exc:
        if observer is not None:
            observer.degrade(reason=f"no spawn context: {exc}",
                             layer=spec.layer)
        run_serially(samples)
        return results

    size = _chunk_sizes(len(samples), workers, policy)
    next_id = 0
    pending: deque = deque()
    for start in range(0, len(samples), size):
        pending.append(_Chunk(next_id, samples[start:start + size]))
        next_id += 1

    running: List[_Running] = []
    degraded = False

    def requeue(r: _Running, reason: str) -> None:
        nonlocal next_id
        remaining = [s for s in r.chunk.samples if s[0] not in results]
        if not remaining:
            return
        retries = r.chunk.retries + 1
        if retries > policy.max_retries:
            raise CampaignError(
                f"chunk {r.chunk.id} permanently failed after "
                f"{policy.max_retries} retries ({reason}); lost samples: "
                f"{_describe_samples(remaining)}")
        if observer is not None:
            observer.retry(chunk=r.chunk.id, reason=reason,
                           attempt=retries, remaining=len(remaining),
                           layer=spec.layer)
        # retry with smaller chunks: split the remainder in half so a
        # poisoned sample is isolated in O(log n) retries
        halves = [remaining] if len(remaining) == 1 else [
            remaining[:len(remaining) // 2],
            remaining[len(remaining) // 2:],
        ]
        for part in halves:
            pending.appendleft(_Chunk(next_id, part, retries))
            next_id += 1

    def reap(r: _Running) -> None:
        r.proc.join(timeout=5)
        if r.proc.is_alive():
            r.proc.kill()
            r.proc.join()
        try:
            r.conn.close()
        except OSError:
            pass

    try:
        while pending or running:
            # dispatch up to one process per worker slot
            while not degraded and pending and len(running) < workers:
                chunk = pending.popleft()
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                try:
                    proc = ctx.Process(
                        target=_chunk_worker,
                        args=(send_conn, spec, chunk.samples, max_steps),
                        daemon=True,
                    )
                    proc.start()
                except Exception as exc:          # noqa: BLE001
                    send_conn.close()
                    recv_conn.close()
                    pending.appendleft(chunk)
                    degraded = True
                    if observer is not None:
                        observer.degrade(
                            reason=f"process spawn failed: {exc}",
                            layer=spec.layer)
                    break
                send_conn.close()
                running.append(_Running(
                    proc, recv_conn, chunk,
                    deadline=time.monotonic() + policy.chunk_timeout))

            if degraded and not running:
                run_serially([s for ch in pending for s in ch.samples])
                pending.clear()
                continue

            time.sleep(policy.poll_interval)

            still: List[_Running] = []
            for r in running:
                try:
                    while r.conn.poll():
                        msg = r.conn.recv()
                        if msg[0] == "row":
                            commit(msg[1], msg[2])
                        elif msg[0] == "done":
                            r.finished = True
                            r.secs = msg[1]
                        elif msg[0] == "error":
                            r.error = msg[1]
                except (EOFError, OSError):
                    pass        # closed pipe: liveness check decides
                if r.finished:
                    reap(r)
                    if observer is not None:
                        observer.worker(r.chunk.id, len(r.chunk.samples),
                                        r.secs or 0.0, layer=spec.layer)
                elif r.error is not None:
                    reap(r)
                    requeue(r, f"worker error: {r.error}")
                elif not r.proc.is_alive():
                    # crashed before reporting: every undelivered sample
                    # goes back to the queue
                    reap(r)
                    requeue(r, f"worker died (exitcode "
                               f"{r.proc.exitcode})")
                elif time.monotonic() > r.deadline:
                    r.proc.terminate()
                    reap(r)
                    if observer is not None:
                        observer.timeout(chunk=r.chunk.id,
                                         seconds=policy.chunk_timeout,
                                         layer=spec.layer)
                    requeue(r, f"watchdog timeout after "
                               f"{policy.chunk_timeout:g}s")
                else:
                    still.append(r)
            running = still
    finally:
        for r in running:
            if r.proc.is_alive():
                r.proc.terminate()
            reap(r)
    return results
