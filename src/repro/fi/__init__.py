"""Fault injection: outcome taxonomy, campaign orchestration, and
resilient (journaled, crash-tolerant) execution."""

from .campaign import (  # noqa: F401
    CampaignConfig,
    CampaignResult,
    DEFAULT_CAMPAIGNS,
    InjectionRecord,
    run_asm_campaign,
    run_ir_campaign,
)
from .outcomes import Outcome, classify_outcome  # noqa: F401
from .parallel import WorkSpec, default_workers, run_parallel_campaign  # noqa: F401
from .resilience import (  # noqa: F401
    InjectionJournal,
    ResiliencePolicy,
    campaign_key,
)

__all__ = [
    "CampaignConfig", "CampaignResult", "InjectionRecord",
    "run_ir_campaign", "run_asm_campaign", "Outcome", "classify_outcome",
    "DEFAULT_CAMPAIGNS", "WorkSpec", "run_parallel_campaign",
    "default_workers", "InjectionJournal", "ResiliencePolicy",
    "campaign_key",
]
