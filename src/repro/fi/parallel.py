"""Multiprocess fault-injection campaigns.

Campaigns are embarrassingly parallel: every injection is an
independent re-execution.  On multi-core hosts this module fans a
campaign out over worker processes; each worker rebuilds the pipeline
from a compact :class:`WorkSpec` (source + protection parameters)
because compiled program graphs are cheaper to rebuild than to pickle.

Execution goes through the resilience layer
(:mod:`repro.fi.resilience`): bounded-size chunks with per-chunk
watchdogs, crash retry, and an optional on-disk injection journal that
lets a killed campaign resume bit-identically.  On a single-core host
(or with ``workers=1``) it falls back to the serial runners — results
are bit-identical either way because the (index, bit) sample list is
drawn once up front from the campaign seed and each sample carries its
original position through the work units.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CampaignError
from ..execresult import RunStatus
from ..faultmodel import validate_fault_model
from .campaign import (
    CampaignConfig,
    CampaignResult,
    InjectionRecord,
    _draw,
    _phase,
    _record_outcomes,
    run_asm_campaign,
    run_ir_campaign,
)
from .outcomes import Outcome
from .resilience import (
    InjectionJournal,
    ResiliencePolicy,
    WorkSpec,
    _build_from_spec,
    pruned_row,
    record_from_row,
    run_supervised,
)

__all__ = ["WorkSpec", "run_parallel_campaign",
           "run_incremental_campaign_for_spec", "default_workers"]


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else the CPU count.

    The value is validated (a malformed ``REPRO_WORKERS`` raises
    :class:`CampaignError`, not a bare ``ValueError``) and capped at
    ``os.cpu_count()`` — more workers than cores only adds spawn
    overhead for these CPU-bound campaigns.
    """
    ncpu = max(1, os.cpu_count() or 1)
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            requested = int(env)
        except ValueError:
            raise CampaignError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        return min(max(1, requested), ncpu)
    return ncpu


def run_parallel_campaign(
    spec: WorkSpec,
    config: CampaignConfig = CampaignConfig(),
    workers: Optional[int] = None,
    observer=None,
    journal_path: Optional[str] = None,
    policy: Optional[ResiliencePolicy] = None,
    built=None,
) -> CampaignResult:
    """Run a campaign for ``spec``, fanned out over supervised processes.

    Deterministic for a given (spec, config) regardless of worker
    count, chunking, retries, or interruptions.  With ``journal_path``
    every classified injection is checkpointed to an append-only JSONL
    journal; re-running with the same (spec, config) skips journaled
    samples, so a killed campaign resumes where it left off and returns
    a result bit-identical to an uninterrupted run.  An optional
    :class:`repro.trace.CampaignObserver` receives phase timings,
    per-chunk throughput, retry/timeout/resume events, and the outcome
    histogram.  ``built`` short-circuits the build phase when the
    caller already compiled the spec'd program.
    """
    workers = workers or default_workers()
    fm = validate_fault_model(spec.fault_model)
    if built is None:
        with _phase(observer, "build", layer=spec.layer):
            built = _build_from_spec(spec)
    with _phase(observer, "golden", layer=spec.layer):
        # the golden run's dyn_injectable counts the fault model's own
        # site universe (cf faults target branch sites, not values)
        if spec.layer == "ir":
            golden = built.run_ir(fault_model=fm)
        else:
            golden = built.run_asm(fault_model=fm)
    if golden.status is not RunStatus.OK:
        raise CampaignError(
            f"golden {spec.layer} run failed: "
            f"{golden.status.value}/{golden.trap_kind}"
        )
    max_steps = max(
        config.min_max_steps, golden.dyn_total * config.max_steps_factor
    )

    if config.stratify:
        # stratified campaigns have their own draw/estimator; the serial
        # runner delegates to repro.fi.prune (journaling not supported)
        if spec.layer == "ir":
            return run_ir_campaign(built.module, config, built.layout,
                                   observer=observer, fault_model=fm)
        return run_asm_campaign(built.compiled, built.layout, config,
                                observer=observer, fault_model=fm)

    if workers <= 1 and journal_path is None:
        if spec.layer == "ir":
            return run_ir_campaign(built.module, config, built.layout,
                                   observer=observer, fault_model=fm)
        return run_asm_campaign(built.compiled, built.layout, config,
                                observer=observer, fault_model=fm)

    rng = np.random.default_rng(config.seed)
    drawn_indices, drawn_bits = _draw(
        rng, config.n_campaigns, golden.dyn_injectable, fm)
    indices = drawn_indices.tolist()
    bits = drawn_bits.tolist()

    plan = None
    if config.prune:
        from .prune import build_prune_plan

        with _phase(observer, "prune", layer=spec.layer):
            plan = build_prune_plan(
                spec.layer,
                module=getattr(built, "module", None),
                layout=built.layout,
                program=getattr(built, "compiled", None),
                fault_model=fm)

    journal = (InjectionJournal.open(journal_path, spec, config)
               if journal_path else None)
    try:
        completed: Dict[int, Tuple] = \
            dict(journal.completed) if journal else {}
        if journal is not None and completed and observer is not None:
            observer.resume(skipped=len(completed), path=journal.path,
                            layer=spec.layer)
        # statically-benign draws resolve here, before any worker sees
        # them: their rows are journaled like executed ones, so resume
        # stays bit-identical whether or not the interrupted run pruned
        pruned: Dict[int, Tuple] = {}
        if plan is not None:
            for i, (idx, bit) in enumerate(zip(indices, bits)):
                if i in completed or not plan.is_benign(idx, bit):
                    continue
                if spec.layer == "asm":
                    pc = plan.static_id(idx)
                    inst = built.compiled.inst_at(pc)
                    row = pruned_row(
                        "asm", idx, bit, golden.output, pc, fm,
                        asm_role=inst.role, asm_opcode=inst.opcode,
                        iid=inst.prov_iid)
                else:
                    row = pruned_row("ir", idx, bit, golden.output,
                                     plan.static_id(idx), fm)
                if journal is not None:
                    journal.record(i, row)
                pruned[i] = row
        # every sample carries its original position, so stitching back
        # is exact for any worker count (including n_campaigns < workers)
        todo: List[Tuple[int, int, int]] = [
            (i, idx, bit)
            for i, (idx, bit) in enumerate(zip(indices, bits))
            if i not in completed and i not in pruned
        ]
        # sort by injection index so each chunk covers a narrow window of
        # the golden trace: the checkpoint-replay engine stops the
        # chunk's golden pass at its last checkpoint, so low-index chunks
        # get cheap.  Ties keep original order; stitching is unaffected
        # because rows are keyed by original position.
        todo.sort(key=lambda s: (s[1], s[0]))
        with _phase(observer, "inject", layer=spec.layer,
                    n=config.n_campaigns, workers=workers):
            fresh = run_supervised(
                spec, todo, max_steps, workers=workers, policy=policy,
                observer=observer, journal=journal, built=built,
            )
    finally:
        if journal is not None:
            journal.close()

    by_sample = {**completed, **pruned, **fresh}
    counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    records: List[InjectionRecord] = []
    for i in range(config.n_campaigns):
        row = by_sample.get(i)
        if row is None:
            raise CampaignError(
                f"campaign incomplete: sample {i} was never classified")
        outcome, record = record_from_row(row, golden.output)
        counts[outcome] += 1
        records.append(record)
    _record_outcomes(observer, spec.layer, counts)
    return CampaignResult(
        layer=spec.layer,
        n=config.n_campaigns,
        counts=counts,
        records=records,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
    )


def run_incremental_campaign_for_spec(
    spec: WorkSpec,
    config: CampaignConfig = CampaignConfig(),
    store_path: Optional[str] = None,
    workers: Optional[int] = None,
    observer=None,
    policy: Optional[ResiliencePolicy] = None,
    built=None,
    dispatch: Optional[str] = None,
):
    """Section-level incremental campaign for a :class:`WorkSpec`.

    The section planner (:mod:`repro.fi.compose`) decides what the
    store cannot serve; only those injections execute — in-process
    through the checkpoint-replay engine, or (``workers > 1``) fanned
    out through the chunked crash-tolerant supervisor with each
    classified row checkpointed into the store under its section's
    profile key.  Returns a :class:`repro.fi.compose.ComposedResult`.

    With ``store_path=None`` the shared-store default ``REPRO_STORE``
    applies (DESIGN §16), so a fleet of campaign processes can be
    pointed at one store without threading the path through every
    call site; the store layer handles cross-process locking, claim
    dedup and degradation to private mode.
    """
    from .compose import SectionProfileStore, run_incremental_campaign

    workers = workers if workers is not None else default_workers()
    fm = validate_fault_model(spec.fault_model)
    if built is None:
        with _phase(observer, "build", layer=spec.layer):
            built = _build_from_spec(spec)
    if store_path is None:
        store_path = os.environ.get("REPRO_STORE") or None
    store = SectionProfileStore(store_path) if store_path else None
    try:
        return run_incremental_campaign(
            built, spec.layer, config, store,
            fault_model=fm, dispatch=dispatch, observer=observer,
            spec=spec, workers=workers, policy=policy,
        )
    finally:
        if store is not None:
            store.close()
