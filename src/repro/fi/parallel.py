"""Multiprocess fault-injection campaigns.

Campaigns are embarrassingly parallel: every injection is an
independent re-execution.  On multi-core hosts this module fans a
campaign out over worker processes; each worker rebuilds the pipeline
from a compact :class:`WorkSpec` (source + protection parameters)
because compiled program graphs are cheaper to rebuild than to pickle.

On a single-core host (or with ``workers=1``) it falls back to the
serial runners — results are bit-identical either way because the
(index, bit) sample list is drawn once up front from the campaign seed
and sliced across workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CampaignError
from ..execresult import RunStatus
from ..interp.interpreter import IRInterpreter
from ..machine.machine import AsmMachine
from .campaign import (
    CampaignConfig,
    CampaignResult,
    InjectionRecord,
    _phase,
    _record_outcomes,
    run_asm_campaign,
    run_ir_campaign,
)
from .outcomes import Outcome, classify_outcome

__all__ = ["WorkSpec", "run_parallel_campaign", "default_workers"]


@dataclass(frozen=True)
class WorkSpec:
    """Everything a worker needs to rebuild the program under test."""

    source: str
    name: str = "program"
    level: Optional[int] = None
    flowery: bool = False
    compare_cse: bool = True
    #: explicit protected set (avoids re-profiling inside workers)
    selected: Optional[frozenset] = None
    layer: str = "asm"          # 'ir' | 'asm'


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else the CPU count.

    The value is validated (a malformed ``REPRO_WORKERS`` raises
    :class:`CampaignError`, not a bare ``ValueError``) and capped at
    ``os.cpu_count()`` — more workers than cores only adds spawn
    overhead for these CPU-bound campaigns.
    """
    ncpu = max(1, os.cpu_count() or 1)
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            requested = int(env)
        except ValueError:
            raise CampaignError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        return min(max(1, requested), ncpu)
    return ncpu


def _build_from_spec(spec: WorkSpec):
    from ..pipeline import build_from_source

    return build_from_source(
        spec.source,
        name=spec.name,
        level=spec.level,
        flowery=spec.flowery,
        compare_cse=spec.compare_cse,
        selected=set(spec.selected) if spec.selected is not None else None,
    )


def _worker(
    args: Tuple[WorkSpec, List[Tuple[int, int]], int]
) -> Tuple[List[Tuple], float]:
    """Run one chunk; returns (rows, wall seconds incl. rebuild)."""
    spec, samples, max_steps = args
    t0 = time.perf_counter()
    built = _build_from_spec(spec)
    rows: List[Tuple] = []
    for idx, bit in samples:
        if spec.layer == "ir":
            res = IRInterpreter(
                built.module, layout=built.layout, max_steps=max_steps
            ).run(inject_index=idx, inject_bit=bit)
            rows.append((idx, bit, res.status.value,
                         res.output, res.injected_iid, None, None, None,
                         res.trap_kind))
        else:
            res = AsmMachine(
                built.compiled, built.layout, max_steps=max_steps
            ).run(inject_index=idx, inject_bit=bit)
            rows.append((idx, bit, res.status.value,
                         res.output, res.injected_iid,
                         res.extra.get("asm_index"),
                         res.extra.get("asm_role"),
                         res.extra.get("asm_opcode"),
                         res.trap_kind))
    return rows, time.perf_counter() - t0


def run_parallel_campaign(
    spec: WorkSpec,
    config: CampaignConfig = CampaignConfig(),
    workers: Optional[int] = None,
    observer=None,
) -> CampaignResult:
    """Run a campaign for ``spec``, fanned out over processes.

    Deterministic for a given (spec, config) regardless of worker count.
    An optional :class:`repro.trace.CampaignObserver` receives phase
    timings, per-worker throughput, and the outcome histogram.
    """
    workers = workers or default_workers()
    with _phase(observer, "build", layer=spec.layer):
        built = _build_from_spec(spec)
    with _phase(observer, "golden", layer=spec.layer):
        if spec.layer == "ir":
            golden = built.run_ir()
        else:
            golden = built.run_asm()
    if golden.status is not RunStatus.OK:
        raise CampaignError(f"golden run failed: {golden.trap_kind}")
    max_steps = max(
        config.min_max_steps, golden.dyn_total * config.max_steps_factor
    )

    if workers <= 1:
        if spec.layer == "ir":
            return run_ir_campaign(built.module, config, built.layout,
                                   observer=observer)
        return run_asm_campaign(built.compiled, built.layout, config,
                                observer=observer)

    rng = np.random.default_rng(config.seed)
    indices = rng.integers(0, golden.dyn_injectable,
                           size=config.n_campaigns).tolist()
    bits = rng.integers(0, 64, size=config.n_campaigns).tolist()
    samples = list(zip(indices, bits))
    chunks = [samples[i::workers] for i in range(workers)]
    jobs = [(spec, chunk, max_steps) for chunk in chunks if chunk]

    ctx = get_context("spawn")
    with _phase(observer, "inject", layer=spec.layer,
                n=config.n_campaigns, workers=len(jobs)):
        with ctx.Pool(processes=len(jobs)) as pool:
            results = pool.map(_worker, jobs)

    # stitch back in the original sample order for determinism
    by_sample: Dict[Tuple[int, int, int], Tuple] = {}
    for wi, (rows, secs) in enumerate(results):
        if observer is not None:
            observer.worker(wi, len(rows), secs, layer=spec.layer)
        for pos, row in enumerate(rows):
            original_index = wi + pos * workers
            by_sample[original_index] = row

    counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    records: List[InjectionRecord] = []
    for i in range(config.n_campaigns):
        (idx, bit, status, output, iid, asm_index, asm_role, asm_opcode,
         trap_kind) = by_sample[i]
        if status == "detected":
            outcome = Outcome.DETECTED
        elif status == "trap":
            outcome = Outcome.DUE
        elif output == golden.output:
            outcome = Outcome.BENIGN
        else:
            outcome = Outcome.SDC
        counts[outcome] += 1
        records.append(
            InjectionRecord(
                dyn_index=idx, bit=bit, outcome=outcome, iid=iid,
                asm_index=asm_index, asm_role=asm_role,
                asm_opcode=asm_opcode, trap_kind=trap_kind,
            )
        )
    _record_outcomes(observer, spec.layer, counts)
    return CampaignResult(
        layer=spec.layer,
        n=config.n_campaigns,
        counts=counts,
        records=records,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
    )
