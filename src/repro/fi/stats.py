"""Confidence-interval helpers shared by campaigns and composition.

Campaign outcome rates are binomial proportions, so
:func:`wilson_interval` gives the standard score interval (well-behaved
at 0/n and n/n, unlike the Wald interval).  Composed whole-program
estimates are *weighted sums* of independent per-section proportions;
:func:`composed_interval` propagates the per-section binomial variances
through the weights and reports a normal-approximation interval,
clamped to [0, 1] — exactly the DETOx-style budget-vs-confidence
readout the incremental campaign engine owes its callers (DESIGN §15).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["wilson_interval", "composed_interval", "DEFAULT_Z"]

#: two-sided 95% normal quantile — the interval every summary reports
DEFAULT_Z = 1.96


def wilson_interval(k: int, n: int, z: float = DEFAULT_Z
                    ) -> Tuple[float, float]:
    """Wilson score interval for ``k`` successes in ``n`` trials.

    Returns ``(lo, hi)``; an empty campaign (``n == 0``) yields the
    vacuous ``(0.0, 1.0)``.
    """
    if n <= 0:
        return (0.0, 1.0)
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k} n={n}")
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def composed_interval(
    weights: Sequence[float],
    ks: Sequence[int],
    ns: Sequence[int],
    z: float = DEFAULT_Z,
) -> Tuple[float, float, float]:
    """Interval for a weighted sum of independent binomial proportions.

    ``weights[i]`` scales section ``i``'s rate ``ks[i]/ns[i]`` in the
    composed estimate ``p = sum(w_i * p_i)``; the variance is
    ``sum(w_i^2 * p_i (1 - p_i) / n_i)``.  Returns ``(p, lo, hi)``.
    Sections with ``n_i == 0`` contribute their weight's full range to
    the interval (maximum binomial variance at p = 1/2) rather than
    false certainty.
    """
    if not (len(weights) == len(ks) == len(ns)):
        raise ValueError("weights/ks/ns length mismatch")
    p = 0.0
    var = 0.0
    for w, k, n in zip(weights, ks, ns):
        if n > 0:
            pi = k / n
            p += w * pi
            var += w * w * pi * (1 - pi) / n
        else:
            p += w * 0.5
            var += w * w * 0.25
    half = z * math.sqrt(var)
    return (p, max(0.0, p - half), min(1.0, p + half))
