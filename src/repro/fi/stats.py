"""Confidence-interval helpers shared by campaigns and composition.

Campaign outcome rates are binomial proportions, so
:func:`wilson_interval` gives the standard score interval (well-behaved
at 0/n and n/n, unlike the Wald interval).  Composed whole-program
estimates are *weighted sums* of independent per-section proportions;
:func:`composed_interval` propagates the per-section binomial variances
through the weights and reports a normal-approximation interval,
clamped to [0, 1] — exactly the DETOx-style budget-vs-confidence
readout the incremental campaign engine owes its callers (DESIGN §15).

Degenerate inputs fail loudly: ``k > n``, ``k < 0``, negative trial
counts, negative weights and NaN/inf anywhere raise :class:`ValueError`
instead of silently propagating a NaN into a journaled CI (an earlier
bug — ``composed_interval`` accepted ``k > n`` and emitted intervals
wider than [0, 1] with nonsensical centers).  The only *tolerated*
degeneracy is ``n == 0``, which has a well-defined vacuous answer:
``wilson_interval`` returns ``(0.0, 1.0)`` and ``composed_interval``
books that stratum at maximum binomial variance rather than false
certainty.

:func:`neyman_allocation` splits an injection budget across sampling
strata proportionally to ``weight × std-dev`` (the variance-minimising
allocation for a weighted-sum estimator); :mod:`repro.fi.prune` uses it
to concentrate a campaign's budget on the strata that still carry SDC
variance.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "wilson_interval",
    "composed_interval",
    "neyman_allocation",
    "DEFAULT_Z",
]

#: two-sided 95% normal quantile — the interval every summary reports
DEFAULT_Z = 1.96


def _check_counts(k: int, n: int) -> None:
    """Shared loud validation of one (successes, trials) pair."""
    if isinstance(n, float) and not math.isfinite(n):
        raise ValueError(f"trial count must be finite, got n={n!r}")
    if isinstance(k, float) and not math.isfinite(k):
        raise ValueError(f"success count must be finite, got k={k!r}")
    if n < 0:
        raise ValueError(f"trial count must be >= 0, got n={n}")
    if not 0 <= k <= max(n, 0):
        raise ValueError(f"need 0 <= k <= n, got k={k} n={n}")


def wilson_interval(k: int, n: int, z: float = DEFAULT_Z
                    ) -> Tuple[float, float]:
    """Wilson score interval for ``k`` successes in ``n`` trials.

    Returns ``(lo, hi)``; an empty campaign (``n == 0``) yields the
    vacuous ``(0.0, 1.0)``.  Out-of-range counts (``k > n``, negatives,
    non-finite values) raise :class:`ValueError`.
    """
    _check_counts(k, n)
    if n == 0:
        return (0.0, 1.0)
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def composed_interval(
    weights: Sequence[float],
    ks: Sequence[int],
    ns: Sequence[int],
    z: float = DEFAULT_Z,
) -> Tuple[float, float, float]:
    """Interval for a weighted sum of independent binomial proportions.

    ``weights[i]`` scales section ``i``'s rate ``ks[i]/ns[i]`` in the
    composed estimate ``p = sum(w_i * p_i)``; the variance is
    ``sum(w_i^2 * p_i (1 - p_i) / n_i)``.  Returns ``(p, lo, hi)``.
    Sections with ``n_i == 0`` contribute their weight's full range to
    the interval (maximum binomial variance at p = 1/2) rather than
    false certainty.  Invalid counts (``k > n`` and friends) and
    negative or non-finite weights raise :class:`ValueError` — before
    this check a ``k > n`` stratum silently produced a CI with a
    negative variance term.
    """
    if not (len(weights) == len(ks) == len(ns)):
        raise ValueError("weights/ks/ns length mismatch")
    p = 0.0
    var = 0.0
    for w, k, n in zip(weights, ks, ns):
        if not math.isfinite(w) or w < 0:
            raise ValueError(
                f"weights must be finite and >= 0, got {w!r}")
        _check_counts(k, n)
        if n > 0:
            pi = k / n
            p += w * pi
            var += w * w * pi * (1 - pi) / n
        else:
            p += w * 0.5
            var += w * w * 0.25
    half = z * math.sqrt(var)
    return (p, max(0.0, p - half), min(1.0, p + half))


def neyman_allocation(
    weights: Sequence[float],
    sds: Sequence[float],
    budget: int,
    minimum: int = 0,
) -> List[int]:
    """Split ``budget`` samples across strata proportionally to
    ``weights[h] * sds[h]`` (Neyman allocation: the variance-minimising
    split for ``p = sum(w_h p_h)`` when stratum ``h`` has per-sample
    standard deviation ``sds[h]``), with a per-stratum floor.

    ``minimum`` guards against the pilot's zero-variance trap: a
    stratum whose pilot saw no SDCs has an *estimated* sd of 0 but a
    true sd that may not be, so it still receives ``minimum`` samples
    (never more than its proportional peers would allow the budget to
    cover).  Largest-remainder rounding makes the result sum exactly
    to ``max(budget, strata * minimum)``.  Degenerate inputs — negative
    weights or sds, NaN, a negative budget, mismatched lengths — raise
    :class:`ValueError`.
    """
    if len(weights) != len(sds):
        raise ValueError("weights/sds length mismatch")
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if minimum < 0:
        raise ValueError(f"minimum must be >= 0, got {minimum}")
    for v in list(weights) + list(sds):
        if not math.isfinite(v) or v < 0:
            raise ValueError(
                f"weights and sds must be finite and >= 0, got {v!r}")
    h = len(weights)
    if h == 0:
        return []
    budget = max(budget, h * minimum)
    scores = [w * s for w, s in zip(weights, sds)]
    total = sum(scores)
    if total <= 0:
        # nothing carries variance: spread the floor, give any excess
        # proportionally to weight (all-equal when weights are, too)
        scores = [max(w, 0.0) for w in weights]
        total = sum(scores)
        if total <= 0:
            scores = [1.0] * h
            total = float(h)
    spread = budget - h * minimum
    quotas = [minimum + spread * s / total for s in scores]
    alloc = [int(q) for q in quotas]
    remainders = sorted(
        range(h), key=lambda i: (quotas[i] - alloc[i], -i), reverse=True)
    short = budget - sum(alloc)
    for i in remainders[:short]:
        alloc[i] += 1
    return alloc
