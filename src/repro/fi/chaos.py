"""Chaos fuzz harness for the fault containment contract (DESIGN §11).

The containment invariant the simulators promise is: **no injected
fault can crash, hang, or OOM the harness** — every injection, however
hostile its downstream behaviour, terminates as a classified
:class:`~repro.execresult.ExecResult` (a step/memory/output/call-depth
budget trap, a simulated machine trap, or a ``host-escape`` trap when a
host exception crossed the containment boundary).

This module *attacks* that invariant instead of assuming it: it sweeps
seeded random bit-flips across every benchmark, both layers (IR
interpreter and asm machine), and all three dispatch tiers (naive
ladders, pre-decoded closures, exec-compiled generated code), then
reports

* **escapes** — a host exception reached the harness despite the
  boundary, with a minimized reproducer ``(benchmark, layer, dispatch,
  index, bit)``;
* **divergences** — the same injection produced different results under
  two dispatch tiers, breaking the bit-identity contract the
  equivalence suite relies on;
* an outcome/trap-kind census proving every injection was classified.

``contain=False`` runs the sweep against the *unguarded* simulators,
which is how the regression suite proves the fuzzer actually detects a
missing boundary (rather than passing vacuously).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..benchsuite.registry import benchmark_names
from ..errors import CampaignError
from ..execresult import ExecResult, RunStatus
from ..faultmodel import FAULT_MODELS, fault_bit_range, validate_fault_model
from ..interp.interpreter import IRInterpreter
from ..machine.machine import AsmMachine
from .outcomes import canonical_trap_kind, classify_outcome

__all__ = [
    "ChaosEscape",
    "ChaosDivergence",
    "ChaosReport",
    "chaos_sweep",
    "render_chaos",
    "shrink_case",
    "CHAOS_SCHEMA",
]

CHAOS_SCHEMA = "chaos/2"

#: mirror of the campaign layer's step-budget policy (hangs become DUEs)
_MIN_MAX_STEPS = 20_000
_MAX_STEPS_FACTOR = 4

#: result fields that must be bit-identical across dispatch modes
_SIG_FIELDS = ("status", "output", "dyn_total", "dyn_injectable",
               "trap_kind", "injected_iid")


@dataclass(frozen=True)
class ChaosEscape:
    """A host exception that reached the harness: the invariant broke.

    The tuple ``(benchmark, layer, dispatch, index, bit)`` is already
    the minimized reproducer — one deterministic injection replays it::

        build(benchmark, scale=...) -> sim(dispatch).run(index, bit)
    """

    benchmark: str
    layer: str                  # 'ir' | 'asm'
    dispatch: str               # 'naive' | 'decoded' | 'codegen'
    index: int                  # injectable dynamic-instruction index
    bit: int
    exc_type: str
    detail: str
    fault_model: str = "seu"

    def reproducer(self) -> str:
        return (f"repro chaos --benchmark {self.benchmark}: "
                f"layer={self.layer} dispatch={self.dispatch} "
                f"fault_model={self.fault_model} "
                f"inject_index={self.index} inject_bit={self.bit} "
                f"-> {self.exc_type}: {self.detail}")


@dataclass(frozen=True)
class ChaosDivergence:
    """One injection whose result differs between dispatch tiers.

    Every tier is compared against the first one executed for the
    injection (``ref_dispatch``, normally ``naive``)."""

    benchmark: str
    layer: str
    index: int
    bit: int
    field: str                  # first differing result field
    ref_dispatch: str
    other_dispatch: str
    ref: str
    other: str
    fault_model: str = "seu"


@dataclass
class ChaosReport:
    """Aggregate of one chaos sweep."""

    scale: str
    seed: int
    n_per_target: int
    benchmarks: List[str]
    layers: Tuple[str, ...]
    dispatches: Tuple[str, ...]
    contain: bool
    fault_models: Tuple[str, ...] = ("seu",)
    injections: int = 0
    classified: int = 0
    escapes: List[ChaosEscape] = field(default_factory=list)
    divergences: List[ChaosDivergence] = field(default_factory=list)
    outcome_counts: Dict[str, int] = field(default_factory=dict)
    trap_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The invariant held: everything classified, nothing diverged."""
        return (not self.escapes and not self.divergences
                and self.classified == self.injections)

    def to_doc(self) -> dict:
        return {
            "schema": CHAOS_SCHEMA,
            "scale": self.scale,
            "seed": self.seed,
            "n_per_target": self.n_per_target,
            "benchmarks": list(self.benchmarks),
            "layers": list(self.layers),
            "dispatches": list(self.dispatches),
            "fault_models": list(self.fault_models),
            "contain": self.contain,
            "injections": self.injections,
            "classified": self.classified,
            "ok": self.ok,
            "outcome_counts": dict(sorted(self.outcome_counts.items())),
            "trap_counts": dict(sorted(self.trap_counts.items())),
            "escapes": [vars(e).copy() for e in self.escapes],
            "divergences": [vars(d).copy() for d in self.divergences],
        }


def shrink_case(items: Sequence, still_fails: Callable[[List], bool]) -> List:
    """Delta-debugging (ddmin-style) list minimization.

    Given a failing ``items`` list and a deterministic ``still_fails``
    predicate, returns a 1-minimal sublist (original order preserved)
    that still satisfies the predicate: removing any single remaining
    element makes the failure disappear.  The predicate must treat an
    un-runnable candidate (e.g. a program subset that no longer
    compiles) as *not failing*.

    Used to shrink chaos-fuzz reproducers and generated MiniC programs
    (:func:`repro.testgen.minic.minimize_minic`) to minimal witnesses.
    """
    items = list(items)
    if not still_fails(items):
        raise CampaignError("shrink_case: initial case does not fail")
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate and still_fails(candidate):
                items = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            n = min(len(items), n * 2)
    return items


def _target_rng(seed: int, benchmark: str, layer: str,
                fault_model: str = "seu") -> np.random.Generator:
    """Deterministic per-(benchmark, layer, model) stream, stable across
    runs.  The SEU tag matches the pre-fault-model harness so existing
    seeded sweeps replay bit-identically."""
    tag = f"{benchmark}:{layer}"
    if fault_model != "seu":
        tag += f":{fault_model}"
    return np.random.default_rng([seed, zlib.crc32(tag.encode())])


def _sig(res: ExecResult) -> Dict[str, str]:
    return {
        "status": res.status.value,
        "output": res.output,
        "dyn_total": str(res.dyn_total),
        "dyn_injectable": str(res.dyn_injectable),
        "trap_kind": str(canonical_trap_kind(res.trap_kind)),
        "injected_iid": str(res.injected_iid),
    }


def chaos_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    scale: str = "tiny",
    n: int = 200,
    seed: int = 2023,
    layers: Sequence[str] = ("ir", "asm"),
    dispatches: Sequence[str] = ("naive", "decoded", "codegen"),
    contain: Optional[bool] = True,
    progress: Optional[Callable[[str], None]] = None,
    fault_models: Sequence[str] = FAULT_MODELS,
) -> ChaosReport:
    """Fuzz the containment boundary of every simulator configuration.

    For each ``benchmark x layer x fault model``, draws ``n`` seeded
    ``(index, fault-coordinate)`` injections over that model's golden
    injectable range and executes each under every dispatch tier.  Host
    exceptions become :class:`ChaosEscape` records (the harness itself
    never crashes); cross-dispatch result mismatches — every tier
    against the first — become :class:`ChaosDivergence` records; every
    result is classified against the golden output.

    ``contain`` is forwarded to the simulators (``False`` disables the
    boundary — used by the regression suite to prove the fuzzer detects
    unguarded paths; ``None`` defers to ``REPRO_CONTAIN``).
    """
    from ..pipeline import build

    names = list(benchmarks) if benchmarks else benchmark_names()
    models = tuple(validate_fault_model(fm) for fm in fault_models)
    report = ChaosReport(
        scale=scale, seed=seed, n_per_target=n, benchmarks=names,
        layers=tuple(layers), dispatches=tuple(dispatches),
        contain=bool(contain) if contain is not None else True,
        fault_models=models,
    )

    for name in names:
        built = build(name, scale=scale)
        for layer in layers:
            for fm in models:
                if layer == "ir":
                    def sim(dispatch):
                        return IRInterpreter(
                            built.module, layout=built.layout,
                            max_steps=max_steps, dispatch=dispatch,
                            contain=contain, fault_model=fm)
                elif layer == "asm":
                    def sim(dispatch):
                        return AsmMachine(
                            built.compiled, built.layout,
                            max_steps=max_steps, dispatch=dispatch,
                            contain=contain, fault_model=fm)
                else:
                    raise CampaignError(f"unknown layer {layer!r}")

                max_steps = _MIN_MAX_STEPS
                golden = sim("decoded").run()
                if golden.status is not RunStatus.OK:
                    raise CampaignError(
                        f"golden {layer} run of {name!r} failed: "
                        f"{golden.status.value}/{golden.trap_kind}")
                max_steps = max(_MIN_MAX_STEPS,
                                golden.dyn_total * _MAX_STEPS_FACTOR)

                rng = _target_rng(seed, name, layer, fm)
                indices = rng.integers(0, golden.dyn_injectable, size=n)
                bits = rng.integers(0, fault_bit_range(fm), size=n)

                for idx, bit in zip(indices.tolist(), bits.tolist()):
                    by_dispatch: Dict[str, ExecResult] = {}
                    for dispatch in dispatches:
                        report.injections += 1
                        try:
                            res = sim(dispatch).run(
                                inject_index=idx, inject_bit=bit)
                        except Exception as exc:      # noqa: BLE001
                            report.escapes.append(ChaosEscape(
                                benchmark=name, layer=layer,
                                dispatch=dispatch, index=idx, bit=bit,
                                exc_type=type(exc).__name__,
                                detail=str(exc), fault_model=fm))
                            continue
                        by_dispatch[dispatch] = res
                        outcome = classify_outcome(res, golden.output)
                        report.classified += 1
                        key = outcome.value
                        report.outcome_counts[key] = \
                            report.outcome_counts.get(key, 0) + 1
                        if res.trap_kind is not None:
                            report.trap_counts[res.trap_kind] = \
                                report.trap_counts.get(res.trap_kind, 0) + 1

                    present = [d for d in dispatches if d in by_dispatch]
                    if len(present) >= 2:
                        ref = present[0]
                        a = _sig(by_dispatch[ref])
                        for other in present[1:]:
                            b = _sig(by_dispatch[other])
                            for fld in _SIG_FIELDS:
                                if a[fld] != b[fld]:
                                    report.divergences.append(
                                        ChaosDivergence(
                                            benchmark=name, layer=layer,
                                            index=idx, bit=bit, field=fld,
                                            ref_dispatch=ref,
                                            other_dispatch=other,
                                            ref=a[fld][:120],
                                            other=b[fld][:120],
                                            fault_model=fm))
                                    break
                if progress is not None:
                    progress(f"{name:14s} {layer:3s} {fm:3s}  "
                             f"{n * len(tuple(dispatches))} injections  "
                             f"escapes={len(report.escapes)} "
                             f"divergences={len(report.divergences)}")
    return report


def render_chaos(report: ChaosReport) -> str:
    """Human-readable sweep summary (the ``repro chaos`` output)."""
    lines = [
        f"chaos sweep: {len(report.benchmarks)} benchmarks x "
        f"{len(report.layers)} layers x {len(report.fault_models)} "
        f"fault models x {len(report.dispatches)} dispatch tiers x "
        f"{report.n_per_target} injections "
        f"(scale={report.scale}, seed={report.seed}, "
        f"models={'/'.join(report.fault_models)}, "
        f"contain={'on' if report.contain else 'off'})",
        f"  injections executed:  {report.injections}",
        f"  injections classified: {report.classified}",
        f"  outcomes:  " + ", ".join(
            f"{k}={v}" for k, v in sorted(report.outcome_counts.items())),
        f"  trap kinds: " + (", ".join(
            f"{k}={v}" for k, v in sorted(report.trap_counts.items()))
            or "(none)"),
    ]
    if report.escapes:
        lines.append(f"  HOST ESCAPES: {len(report.escapes)}")
        for esc in report.escapes[:20]:
            lines.append(f"    {esc.reproducer()}")
        if len(report.escapes) > 20:
            lines.append(f"    ... {len(report.escapes) - 20} more")
    if report.divergences:
        lines.append(f"  DISPATCH DIVERGENCES: {len(report.divergences)}")
        for div in report.divergences[:20]:
            lines.append(
                f"    {div.benchmark} {div.layer} idx={div.index} "
                f"bit={div.bit}: {div.field} "
                f"{div.ref_dispatch}={div.ref!r} "
                f"{div.other_dispatch}={div.other!r}")
        if len(report.divergences) > 20:
            lines.append(f"    ... {len(report.divergences) - 20} more")
    lines.append("  invariant: " + ("HELD — no injected fault crashed, "
                                    "hung, or OOMed the harness"
                                    if report.ok else "VIOLATED"))
    return "\n".join(lines) + "\n"
