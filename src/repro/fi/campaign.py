"""Fault-injection campaign orchestration (§4.3).

A campaign against one binary/level/layer:

1. golden run (also counts dynamic + injectable instructions);
2. draw ``n`` (dynamic-instruction index, bit) pairs uniformly with
   replacement — the paper's standard methodology;
3. re-execute with the single flip, classify the outcome;
4. aggregate counts and keep per-injection records for root-cause
   analysis.

Both layers share this module: :func:`run_ir_campaign` drives the IR
interpreter (LLFI-style), :func:`run_asm_campaign` the machine
(PINFI-style).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CampaignError
from ..execresult import RunStatus
from ..faultmodel import fault_bit_range, validate_fault_model
from ..interp.interpreter import IRInterpreter
from ..interp.layout import GlobalLayout
from ..ir.module import Module
from ..machine.machine import AsmMachine, CompiledProgram
from .engine import engine_dispatch, engine_enabled, run_injection_suite
from .outcomes import Outcome, canonical_trap_kind, classify_outcome
from .stats import wilson_interval

__all__ = [
    "CampaignConfig",
    "InjectionRecord",
    "CampaignResult",
    "run_ir_campaign",
    "run_asm_campaign",
]

DEFAULT_CAMPAIGNS = 300


def _phase(observer, name: str, **fields):
    """Observer phase context, or a no-op when no observer is attached."""
    if observer is None:
        return nullcontext()
    return observer.phase(name, **fields)


def _record_outcomes(observer, layer: str,
                     counts: Dict[Outcome, int]) -> None:
    if observer is not None:
        observer.outcomes(
            {o.value: c for o, c in counts.items() if c}, layer=layer
        )


@dataclass(frozen=True)
class CampaignConfig:
    """Shared knobs for a fault-injection campaign.

    Validated at construction: a nonsensical configuration raises
    :class:`CampaignError` immediately rather than failing deep inside
    ``np.random`` or silently producing an empty campaign.
    """

    n_campaigns: int = DEFAULT_CAMPAIGNS
    seed: int = 0
    #: timeout = factor x golden dynamic count (hangs become DUEs)
    max_steps_factor: int = 4
    min_max_steps: int = 20_000
    #: statically classify provably-benign draws (bit-liveness pruning,
    #: :mod:`repro.analysis.bitlive`) without simulating them; the draw
    #: itself is unchanged, so every estimate is bit-identical to the
    #: unpruned campaign — only the simulation work shrinks
    prune: bool = False
    #: replace the uniform draw with stratified sampling over the
    #: bit-liveness site classes (pilot + Neyman allocation, composed
    #: interval; see :mod:`repro.fi.prune`)
    stratify: bool = False

    def __post_init__(self) -> None:
        if self.n_campaigns <= 0:
            raise CampaignError(
                f"n_campaigns must be positive, got {self.n_campaigns}")
        if self.seed < 0:
            raise CampaignError(
                f"seed must be non-negative, got {self.seed}")
        if self.max_steps_factor < 1:
            raise CampaignError(
                f"max_steps_factor must be >= 1, got "
                f"{self.max_steps_factor}")
        if self.min_max_steps <= 0:
            raise CampaignError(
                f"min_max_steps must be positive, got "
                f"{self.min_max_steps}")


@dataclass
class InjectionRecord:
    """One injection and its outcome."""

    dyn_index: int
    bit: int
    outcome: Outcome
    #: static IR iid the fault maps to (None for unmapped asm code)
    iid: Optional[int]
    #: asm-only fields
    asm_index: Optional[int] = None
    asm_role: Optional[str] = None
    asm_opcode: Optional[str] = None
    trap_kind: Optional[str] = None
    #: fault model this injection ran under (legacy records mean "seu")
    fault_model: str = "seu"


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    layer: str                      # 'ir' | 'asm'
    n: int
    counts: Dict[Outcome, int]
    records: List[InjectionRecord]
    golden_output: str
    golden_dyn_total: int
    golden_dyn_injectable: int
    #: dynamic steps actually simulated (initial golden run + engine
    #: checkpoint pass + replayed suffixes, or naive full re-executions);
    #: None when the campaign predates the accounting (journal replays)
    simulated_steps: Optional[int] = None

    @property
    def sdc_probability(self) -> float:
        return self.counts.get(Outcome.SDC, 0) / self.n if self.n else 0.0

    @property
    def detected_probability(self) -> float:
        return self.counts.get(Outcome.DETECTED, 0) / self.n if self.n else 0.0

    @property
    def due_probability(self) -> float:
        return self.counts.get(Outcome.DUE, 0) / self.n if self.n else 0.0

    @property
    def pruned(self) -> int:
        """Draws resolved statically by the bit-liveness pruner."""
        return self.counts.get(Outcome.PRUNE_BENIGN, 0)

    def sdc_records(self) -> List[InjectionRecord]:
        return [r for r in self.records if r.outcome is Outcome.SDC]

    def summary(self) -> Dict[str, object]:
        """Outcome rates plus Wilson 95% confidence intervals.

        The ``*_ci`` entries use the same :mod:`repro.fi.stats` helper
        as the composed incremental estimates, so whole-program and
        section-composed summaries are directly comparable.  The benign
        rate folds in statically-pruned draws (they are benign with
        certainty), keeping pruned estimates bit-identical to their
        uniform equivalents; ``pruned`` separately reports how many
        draws never simulated.
        """
        benign_k = (self.counts.get(Outcome.BENIGN, 0)
                    + self.counts.get(Outcome.PRUNE_BENIGN, 0))
        out: Dict[str, object] = {
            "sdc": self.sdc_probability,
            "due": self.due_probability,
            "detected": self.detected_probability,
            "benign": benign_k / self.n if self.n else 0.0,
            "pruned": self.pruned,
        }
        for name, k in (("sdc", self.counts.get(Outcome.SDC, 0)),
                        ("due", self.counts.get(Outcome.DUE, 0)),
                        ("detected", self.counts.get(Outcome.DETECTED, 0)),
                        ("benign", benign_k)):
            out[f"{name}_ci"] = wilson_interval(k, self.n)
        return out


def _draw(
    rng: np.random.Generator, n: int, injectable: int,
    fault_model: str = "seu",
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``n`` (dynamic-index, fault-coordinate) pairs.

    The second coordinate is a bit position in [0, 64) for SEU/SET and
    a redirect coordinate in [0, CF_BIT_RANGE) for control-flow faults
    (reduced modulo the landing-site count at injection time).
    """
    if injectable <= 0:
        raise CampaignError(
            "program has no injectable dynamic instructions under "
            f"fault model {fault_model!r}")
    return (
        rng.integers(0, injectable, size=n),
        rng.integers(0, fault_bit_range(fault_model), size=n),
    )


def run_ir_campaign(
    module: Module,
    config: CampaignConfig = CampaignConfig(),
    layout: Optional[GlobalLayout] = None,
    observer=None,
    engine: Optional[bool] = None,
    dispatch: Optional[str] = None,
    fault_model: Optional[str] = None,
) -> CampaignResult:
    """LLFI-style campaign at the IR layer.

    ``engine`` selects the checkpoint-replay engine (see
    :mod:`repro.fi.engine`): ``None`` defers to ``REPRO_ENGINE``
    (default on).  Results are bit-identical either way; the engine only
    changes how much golden prefix is re-executed per injection.
    ``dispatch`` selects the engine-path tier (``None`` defers to
    ``REPRO_DISPATCH``, default decoded); ignored without the engine.
    ``fault_model`` selects what each injection corrupts (default SEU;
    see :mod:`repro.faultmodel`) — the golden run counts that model's
    injectable sites, so the draw universe follows the model.

    ``config.prune`` resolves provably-benign draws statically
    (:mod:`repro.analysis.bitlive`) without simulating them — same
    draw, same estimates, fewer simulated steps.  ``config.stratify``
    replaces the uniform draw entirely and delegates to
    :func:`repro.fi.prune.run_stratified_campaign`.
    """
    fm = validate_fault_model(fault_model)
    if config.stratify:
        from .prune import run_stratified_campaign

        return run_stratified_campaign(
            "ir", config, module=module, layout=layout, observer=observer,
            engine=engine, dispatch=dispatch, fault_model=fm)
    use_engine = engine_enabled(engine)
    tier = engine_dispatch(dispatch) if use_engine else "naive"
    layout = layout or GlobalLayout(module)
    with _phase(observer, "golden", layer="ir"):
        golden = IRInterpreter(module, layout=layout,
                               dispatch=tier, fault_model=fm).run()
    if golden.status is not RunStatus.OK:
        raise CampaignError(
            f"golden IR run failed: {golden.status.value}/{golden.trap_kind}"
        )
    max_steps = max(
        config.min_max_steps, golden.dyn_total * config.max_steps_factor
    )
    rng = np.random.default_rng(config.seed)
    indices, bits = _draw(rng, config.n_campaigns, golden.dyn_injectable, fm)
    pairs = list(zip(indices.tolist(), bits.tolist()))

    plan = None
    if config.prune:
        from .prune import build_prune_plan

        with _phase(observer, "prune", layer="ir"):
            plan = build_prune_plan("ir", module=module, layout=layout,
                                    fault_model=fm)

    counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    by_tag: Dict[int, InjectionRecord] = {}

    def emit(tag, res):
        outcome = classify_outcome(res, golden.output)
        counts[outcome] += 1
        idx, bit = pairs[tag]
        by_tag[tag] = InjectionRecord(
            dyn_index=idx,
            bit=bit,
            outcome=outcome,
            iid=res.injected_iid,
            trap_kind=canonical_trap_kind(res.trap_kind),
            fault_model=fm,
        )

    live: List[Tuple[int, int, int]] = []
    for i, (idx, bit) in enumerate(pairs):
        if plan is not None and plan.is_benign(idx, bit):
            counts[Outcome.PRUNE_BENIGN] += 1
            by_tag[i] = InjectionRecord(
                dyn_index=idx, bit=bit, outcome=Outcome.PRUNE_BENIGN,
                iid=plan.static_id(idx), fault_model=fm)
        else:
            live.append((i, idx, bit))

    engine_steps: Dict[str, int] = {}
    naive_steps = 0
    with _phase(observer, "inject", layer="ir", n=config.n_campaigns):
        if use_engine:
            run_injection_suite(
                "ir",
                live,
                max_steps,
                module=module,
                layout=layout,
                emit=emit,
                dispatch=tier,
                fault_model=fm,
                stats=engine_steps,
            )
        else:
            for i, idx, bit in live:
                res = IRInterpreter(
                    module, layout=layout, max_steps=max_steps,
                    dispatch="naive", fault_model=fm,
                ).run(inject_index=idx, inject_bit=bit)
                naive_steps += res.dyn_total
                emit(i, res)
    records = [by_tag[i] for i in range(len(pairs))]
    _record_outcomes(observer, "ir", counts)
    return CampaignResult(
        layer="ir",
        n=config.n_campaigns,
        counts=counts,
        records=records,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
        simulated_steps=(
            golden.dyn_total
            + engine_steps.get("golden_steps", 0)
            + engine_steps.get("suffix_steps", 0)
            + naive_steps),
    )


def run_asm_campaign(
    program: CompiledProgram,
    layout: GlobalLayout,
    config: CampaignConfig = CampaignConfig(),
    observer=None,
    engine: Optional[bool] = None,
    dispatch: Optional[str] = None,
    fault_model: Optional[str] = None,
) -> CampaignResult:
    """PINFI-style campaign at the assembly layer.

    ``engine``, ``dispatch`` and ``fault_model`` select the
    checkpoint-replay engine, its tier and the injected fault exactly
    as in :func:`run_ir_campaign`; ``config.prune`` and
    ``config.stratify`` behave exactly as there too.
    """
    fm = validate_fault_model(fault_model)
    if config.stratify:
        from .prune import run_stratified_campaign

        return run_stratified_campaign(
            "asm", config, program=program, layout=layout,
            observer=observer, engine=engine, dispatch=dispatch,
            fault_model=fm)
    use_engine = engine_enabled(engine)
    tier = engine_dispatch(dispatch) if use_engine else "naive"
    with _phase(observer, "golden", layer="asm"):
        golden = AsmMachine(program, layout, dispatch=tier,
                            fault_model=fm).run()
    if golden.status is not RunStatus.OK:
        raise CampaignError(
            f"golden asm run failed: {golden.status.value}/{golden.trap_kind}"
        )
    max_steps = max(
        config.min_max_steps, golden.dyn_total * config.max_steps_factor
    )
    rng = np.random.default_rng(config.seed)
    indices, bits = _draw(rng, config.n_campaigns, golden.dyn_injectable, fm)
    pairs = list(zip(indices.tolist(), bits.tolist()))

    plan = None
    if config.prune:
        from .prune import build_prune_plan

        with _phase(observer, "prune", layer="asm"):
            plan = build_prune_plan("asm", program=program, layout=layout,
                                    fault_model=fm)

    counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    by_tag: Dict[int, InjectionRecord] = {}

    def emit(tag, res):
        outcome = classify_outcome(res, golden.output)
        counts[outcome] += 1
        idx, bit = pairs[tag]
        by_tag[tag] = InjectionRecord(
            dyn_index=idx,
            bit=bit,
            outcome=outcome,
            iid=res.injected_iid,
            asm_index=res.extra.get("asm_index"),
            asm_role=res.extra.get("asm_role"),
            asm_opcode=res.extra.get("asm_opcode"),
            trap_kind=canonical_trap_kind(res.trap_kind),
            fault_model=fm,
        )

    live: List[Tuple[int, int, int]] = []
    for i, (idx, bit) in enumerate(pairs):
        if plan is not None and plan.is_benign(idx, bit):
            counts[Outcome.PRUNE_BENIGN] += 1
            pc = plan.static_id(idx)
            inst = program.inst_at(pc)
            by_tag[i] = InjectionRecord(
                dyn_index=idx, bit=bit, outcome=Outcome.PRUNE_BENIGN,
                iid=inst.prov_iid, asm_index=pc, asm_role=inst.role,
                asm_opcode=inst.opcode, fault_model=fm)
        else:
            live.append((i, idx, bit))

    engine_steps: Dict[str, int] = {}
    naive_steps = 0
    with _phase(observer, "inject", layer="asm", n=config.n_campaigns):
        if use_engine:
            run_injection_suite(
                "asm",
                live,
                max_steps,
                program=program,
                layout=layout,
                emit=emit,
                dispatch=tier,
                fault_model=fm,
                stats=engine_steps,
            )
        else:
            for i, idx, bit in live:
                res = AsmMachine(
                    program, layout, max_steps=max_steps, dispatch="naive",
                    fault_model=fm,
                ).run(inject_index=idx, inject_bit=bit)
                naive_steps += res.dyn_total
                emit(i, res)
    records = [by_tag[i] for i in range(len(pairs))]
    _record_outcomes(observer, "asm", counts)
    return CampaignResult(
        layer="asm",
        n=config.n_campaigns,
        counts=counts,
        records=records,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
        simulated_steps=(
            golden.dyn_total
            + engine_steps.get("golden_steps", 0)
            + engine_steps.get("suffix_steps", 0)
            + naive_steps),
    )
