"""Outcome taxonomy of a fault-injection campaign (§2.1).

* **Benign**       — run completed, output identical to golden
* **SDC**          — run completed, output differs (silent data corruption)
* **DUE**          — run trapped (segfault/div-by-zero/bad jump/budget/...)
* **Detected**     — a duplication/Flowery checker fired
* **Prune-benign** — proven benign statically (bit-liveness pruning,
  :mod:`repro.analysis.bitlive`); counted with Benign in every rate

The paper studies SDCs; DUEs are tracked but not optimised for (§2.2).

Trap kinds are canonicalised here: the step budget was historically
reported as ``"timeout"``, which conflated it with the resilience
layer's *wall-clock* watchdog timeout.  The simulators now raise
``"step-budget"``; :data:`TRAP_KIND_ALIASES` keeps old journals and
rows replayable bit-for-bit under the new name.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..execresult import ExecResult, RunStatus

__all__ = [
    "Outcome",
    "classify_outcome",
    "TRAP_KIND_ALIASES",
    "canonical_trap_kind",
]

#: legacy -> canonical trap kinds (see DESIGN §11)
TRAP_KIND_ALIASES = {"timeout": "step-budget"}


def canonical_trap_kind(kind: Optional[str]) -> Optional[str]:
    """Map a (possibly legacy) trap kind to its canonical name."""
    if kind is None:
        return None
    return TRAP_KIND_ALIASES.get(kind, kind)


class Outcome(enum.Enum):
    BENIGN = "benign"
    SDC = "sdc"
    DUE = "due"
    DETECTED = "detected"
    #: statically proven benign by the bit-liveness pass
    #: (:mod:`repro.analysis.bitlive`) — never simulated.  Kept distinct
    #: from :attr:`BENIGN` so summaries can report how much work the
    #: pruner skipped; estimators fold it into the benign rate.
    PRUNE_BENIGN = "prune-benign"


def classify_outcome(result: ExecResult, golden_output: str) -> Outcome:
    """Map an execution result to the paper's outcome taxonomy.

    Pure: the caller's ``result`` is never mutated.  Trap-kind
    canonicalisation (the ``timeout`` -> ``step-budget`` rename) happens
    on locals via :func:`canonical_trap_kind`; callers that persist trap
    kinds canonicalise at the point of record construction.
    """
    if result.status is RunStatus.DETECTED:
        return Outcome.DETECTED
    if result.status is RunStatus.TRAP:
        return Outcome.DUE
    return Outcome.BENIGN if result.output == golden_output else Outcome.SDC
