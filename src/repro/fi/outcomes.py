"""Outcome taxonomy of a fault-injection campaign (§2.1).

* **Benign**   — run completed, output identical to golden
* **SDC**      — run completed, output differs (silent data corruption)
* **DUE**      — run trapped (segfault/div-by-zero/bad jump/timeout)
* **Detected** — a duplication/Flowery checker fired

The paper studies SDCs; DUEs are tracked but not optimised for (§2.2).
"""

from __future__ import annotations

import enum

from ..execresult import ExecResult, RunStatus

__all__ = ["Outcome", "classify_outcome"]


class Outcome(enum.Enum):
    BENIGN = "benign"
    SDC = "sdc"
    DUE = "due"
    DETECTED = "detected"


def classify_outcome(result: ExecResult, golden_output: str) -> Outcome:
    """Map an execution result to the paper's outcome taxonomy."""
    if result.status is RunStatus.DETECTED:
        return Outcome.DETECTED
    if result.status is RunStatus.TRAP:
        return Outcome.DUE
    return Outcome.BENIGN if result.output == golden_output else Outcome.SDC
