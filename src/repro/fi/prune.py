"""Benign-draw pruning and stratified sampling (ROADMAP item 3).

Two budget levers on top of the uniform campaign loop, both driven by
the bit-level liveness analysis (:mod:`repro.analysis.bitlive`):

* **Pruning** (``CampaignConfig.prune``) — the campaign draws exactly
  the samples it always drew, but any (dynamic index, bit) pair whose
  static site the analysis proves benign at that coordinate is resolved
  as :attr:`~repro.fi.outcomes.Outcome.PRUNE_BENIGN` without running
  the simulator.  Because the draw is unchanged and a pruned draw's
  true outcome *is* benign, every estimate is bit-identical to the
  unpruned campaign (the BEC observation) — only simulated steps drop.

* **Stratified sampling** (``CampaignConfig.stratify``) — the uniform
  draw is replaced by per-stratum draws over the analysis' site
  classes (``live`` / ``protected`` / ``unknown``), a pilot round
  estimates each stratum's SDC variance, and the remaining budget
  follows Neyman allocation (:func:`repro.fi.stats.neyman_allocation`).
  The composed estimate ``p = sum(W_h p_h)`` is unbiased for *any*
  partition, so the class labels carry no soundness burden; a
  duplication-protected program concentrates its SDC variance in the
  small unprotected stratum, which is where the budget goes (the DETOx
  framing).  Intervals come from
  :func:`repro.fi.stats.composed_interval`, the same machinery the
  incremental section composition uses.

The exhaustive oracle (:func:`verify_benign`) flips *every* pair the
analysis calls benign and asserts bit-identical output — the contract
``tests/test_bitlive_oracle.py`` enforces across both layers, all
dispatch tiers and both bit fault models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.bitlive import BitliveConfig, BitliveReport, analyze_asm, analyze_ir
from ..errors import CampaignError
from ..execresult import RunStatus
from ..faultmodel import fault_bit_range, validate_fault_model
from ..interp.interpreter import IRInterpreter
from ..interp.layout import GlobalLayout
from ..machine.machine import AsmMachine
from .campaign import (
    CampaignConfig,
    CampaignResult,
    InjectionRecord,
    _phase,
    _record_outcomes,
)
from .engine import engine_dispatch, engine_enabled, run_injection_suite
from .outcomes import Outcome, canonical_trap_kind, classify_outcome
from .sections import _AsmSiteTap, _IRSiteTap, _ir_site_predicate
from .stats import composed_interval, neyman_allocation, wilson_interval

__all__ = [
    "PrunePlan",
    "StratumSummary",
    "StratifiedResult",
    "build_prune_plan",
    "verify_benign",
    "run_stratified_campaign",
    "STRATA",
    "DEFAULT_PILOT",
]

#: stratum order (stable across runs; summaries and draws follow it).
#: ``live`` = live-unprotected, ``protected`` = live-protected
#: (checker/shadow provenance), ``unknown`` = no bit model (XMM/float/
#: pointer payloads).
STRATA = ("live", "protected", "unknown")

#: pilot injections per stratum before Neyman allocation
DEFAULT_PILOT = 30


# ---------------------------------------------------------------------------
# the plan: static analysis joined with one traced golden run
# ---------------------------------------------------------------------------

@dataclass
class PrunePlan:
    """Bit-liveness facts indexed by *dynamic* injectable site.

    ``seq[k]`` is the static id (IR iid / asm pc) the ``k``-th dynamic
    injectable site executes, taken from a traced golden run and
    validated against the simulator's own injectable counter — the same
    discipline as :func:`repro.fi.sections.map_sites`.
    """

    layer: str
    fault_model: str
    #: dynamic injectable index -> static id
    seq: List[int]
    report: BitliveReport
    golden_output: str
    golden_dyn_total: int
    golden_dyn_injectable: int

    def static_id(self, dyn_index: int) -> int:
        return self.seq[dyn_index]

    def is_benign(self, dyn_index: int, bit: int) -> bool:
        """Is drawing ``(dyn_index, bit)`` provably benign?"""
        if not 0 <= dyn_index < len(self.seq):
            return False
        return self.report.benign_pair(self.seq[dyn_index], bit)

    def stratum(self, dyn_index: int) -> str:
        return self.report.site_class.get(self.seq[dyn_index], "unknown")

    def strata_indices(self) -> Dict[str, List[int]]:
        """Non-empty strata -> ascending dynamic injectable indices."""
        out: Dict[str, List[int]] = {name: [] for name in STRATA}
        for dyn, sid in enumerate(self.seq):
            out[self.report.site_class.get(sid, "unknown")].append(dyn)
        return {name: idxs for name, idxs in out.items() if idxs}

    def benign_pairs(self) -> List[Tuple[int, int]]:
        """Every provably-benign (dynamic index, bit) pair — the
        exhaustive oracle's work list."""
        pairs: List[Tuple[int, int]] = []
        for dyn, sid in enumerate(self.seq):
            m = self.report.benign.get(sid, 0)
            if not m:
                continue
            for bit in range(64):
                if (m >> bit) & 1:
                    pairs.append((dyn, bit))
        return pairs

    def stats(self) -> Dict[str, object]:
        strata = self.strata_indices()
        total = len(self.seq)
        benign = sum(
            bin(self.report.benign.get(sid, 0)).count("1")
            for sid in self.seq)
        return {
            "layer": self.layer,
            "fault_model": self.fault_model,
            "dyn_sites": total,
            "benign_pairs": benign,
            "benign_fraction": benign / (64 * total) if total else 0.0,
            "strata": {name: len(idxs) for name, idxs in strata.items()},
        }


def build_prune_plan(
    layer: str,
    *,
    module=None,
    layout: Optional[GlobalLayout] = None,
    program=None,
    fault_model: Optional[str] = None,
    config: BitliveConfig = BitliveConfig(),
) -> PrunePlan:
    """Analyze + trace one golden run into a :class:`PrunePlan`.

    Mirrors :func:`repro.fi.sections.map_sites`' validation: the traced
    site sequence must match the golden run's ``dyn_injectable`` count
    exactly, so predicate/simulator drift is a loud
    :class:`CampaignError`, never a silently unsound prune.
    """
    fm = validate_fault_model(fault_model)
    if layer == "ir":
        if module is None:
            raise CampaignError("IR prune plan needs module=")
        layout = layout or GlobalLayout(module)
        report = analyze_ir(module, fm, config)
        tap = _IRSiteTap(_ir_site_predicate(fm))
        golden = IRInterpreter(
            module, layout=layout, trace=tap, fault_model=fm).run()
    elif layer == "asm":
        if program is None or layout is None:
            raise CampaignError("asm prune plan needs program= and layout=")
        report = analyze_asm(program, fm, config)
        kinds = program.cf_kind if fm == "cf" else program.inj_kind
        tap = _AsmSiteTap(kinds)
        golden = AsmMachine(
            program, layout, trace=tap, fault_model=fm).run()
    else:
        raise CampaignError(f"unknown layer {layer!r}")
    if golden.status is not RunStatus.OK:
        raise CampaignError(
            f"golden {layer} run failed: "
            f"{golden.status.value}/{golden.trap_kind}")
    if len(tap.seq) != golden.dyn_injectable:
        raise CampaignError(
            f"site enumeration drift at layer {layer!r} model {fm!r}: "
            f"tap saw {len(tap.seq)} sites, simulator counted "
            f"{golden.dyn_injectable}")
    return PrunePlan(
        layer=layer,
        fault_model=fm,
        seq=tap.seq,
        report=report,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
    )


# ---------------------------------------------------------------------------
# the exhaustive oracle
# ---------------------------------------------------------------------------

def verify_benign(
    layer: str,
    *,
    module=None,
    layout: Optional[GlobalLayout] = None,
    program=None,
    fault_model: Optional[str] = None,
    config: BitliveConfig = BitliveConfig(),
    dispatch: Optional[str] = None,
) -> Dict[str, object]:
    """Flip every benign-classified (site, bit) pair; report violations.

    A violation is any pair whose injected run is not status-OK with
    output bit-identical to golden — the pruner's soundness contract.
    Returns ``{"pairs": N, "violations": [(dyn, bit, status, trap), …],
    "plan": …stats…}``; an empty ``violations`` list is the oracle
    passing.
    """
    plan = build_prune_plan(layer, module=module, layout=layout,
                            program=program, fault_model=fault_model,
                            config=config)
    if layer == "ir":
        layout = layout or GlobalLayout(module)
    pairs = plan.benign_pairs()
    violations: List[Tuple[int, int, str, Optional[str]]] = []

    def emit(tag, res):
        if res.status is not RunStatus.OK or \
                res.output != plan.golden_output:
            dyn, bit = tag
            violations.append(
                (dyn, bit, res.status.value,
                 canonical_trap_kind(res.trap_kind)))

    if pairs:
        run_injection_suite(
            layer,
            [((dyn, bit), dyn, bit) for dyn, bit in pairs],
            max(20_000, plan.golden_dyn_total * 4),
            module=module,
            layout=layout,
            program=program,
            emit=emit,
            dispatch=dispatch,
            fault_model=plan.fault_model,
        )
    return {
        "layer": layer,
        "fault_model": plan.fault_model,
        "pairs": len(pairs),
        "violations": violations,
        "plan": plan.stats(),
    }


# ---------------------------------------------------------------------------
# stratified campaigns
# ---------------------------------------------------------------------------

@dataclass
class StratumSummary:
    """One stratum's slice of a stratified campaign."""

    name: str
    #: dynamic-site fraction of the whole draw universe
    weight: float
    #: dynamic injectable sites in the stratum
    sites: int
    n: int
    counts: Dict[Outcome, int]

    def rate(self, outcome: Outcome) -> float:
        return self.counts.get(outcome, 0) / self.n if self.n else 0.0

    def to_doc(self) -> Dict[str, object]:
        benign_k = (self.counts.get(Outcome.BENIGN, 0)
                    + self.counts.get(Outcome.PRUNE_BENIGN, 0))
        return {
            "name": self.name,
            "weight": self.weight,
            "sites": self.sites,
            "n": self.n,
            "sdc": self.rate(Outcome.SDC),
            "sdc_ci": wilson_interval(
                self.counts.get(Outcome.SDC, 0), self.n),
            "due": self.rate(Outcome.DUE),
            "detected": self.rate(Outcome.DETECTED),
            "benign": benign_k / self.n if self.n else 0.0,
            "pruned": self.counts.get(Outcome.PRUNE_BENIGN, 0),
        }


@dataclass
class StratifiedResult(CampaignResult):
    """Campaign result whose estimates compose over strata.

    The base-class ``counts``/``records`` pool every stratum (useful
    for forensics), but the headline probabilities re-weight each
    stratum by its share of the draw universe — the unbiased estimator
    for a stratified design — and ``summary()`` reports
    :func:`repro.fi.stats.composed_interval` CIs.
    """

    strata: List[StratumSummary] = field(default_factory=list)

    def _composed(self, *outcomes: Outcome) -> Tuple[float, float, float]:
        weights = [s.weight for s in self.strata]
        ks = [sum(s.counts.get(o, 0) for o in outcomes)
              for s in self.strata]
        ns = [s.n for s in self.strata]
        return composed_interval(weights, ks, ns)

    @property
    def sdc_probability(self) -> float:
        return self._composed(Outcome.SDC)[0]

    @property
    def due_probability(self) -> float:
        return self._composed(Outcome.DUE)[0]

    @property
    def detected_probability(self) -> float:
        return self._composed(Outcome.DETECTED)[0]

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {"pruned": self.pruned}
        for name, outcomes in (
            ("sdc", (Outcome.SDC,)),
            ("due", (Outcome.DUE,)),
            ("detected", (Outcome.DETECTED,)),
            ("benign", (Outcome.BENIGN, Outcome.PRUNE_BENIGN)),
        ):
            p, lo, hi = self._composed(*outcomes)
            out[name] = p
            out[f"{name}_ci"] = (lo, hi)
        out["strata"] = [s.to_doc() for s in self.strata]
        return out


def run_stratified_campaign(
    layer: str,
    config: CampaignConfig,
    *,
    module=None,
    layout: Optional[GlobalLayout] = None,
    program=None,
    observer=None,
    engine: Optional[bool] = None,
    dispatch: Optional[str] = None,
    fault_model: Optional[str] = None,
    pilot: int = DEFAULT_PILOT,
) -> StratifiedResult:
    """Stratified campaign over the bit-liveness site classes.

    The total budget is ``config.n_campaigns``: a pilot of up to
    ``pilot`` draws per non-empty stratum, then Neyman allocation of
    the remainder on the pilot's SDC standard deviations.  Every
    stratum's draw comes from its own seeded RNG substream, so the
    campaign is deterministic and a stratum's samples never depend on
    the other strata's sizes.  With ``config.prune`` benign draws
    inside each stratum resolve statically, exactly as in the uniform
    path.
    """
    fm = validate_fault_model(fault_model)
    if fm == "cf":
        raise CampaignError(
            "stratified sampling needs a bit-level fault model "
            "(seu/set); control-flow faults have no bit lattice")
    use_engine = engine_enabled(engine)
    tier = engine_dispatch(dispatch) if use_engine else "naive"
    if layer == "ir":
        if module is None:
            raise CampaignError("IR stratified campaign needs module=")
        layout = layout or GlobalLayout(module)
        with _phase(observer, "golden", layer=layer):
            golden = IRInterpreter(module, layout=layout, dispatch=tier,
                                   fault_model=fm).run()
    elif layer == "asm":
        if program is None or layout is None:
            raise CampaignError(
                "asm stratified campaign needs program= and layout=")
        with _phase(observer, "golden", layer=layer):
            golden = AsmMachine(program, layout, dispatch=tier,
                                fault_model=fm).run()
    else:
        raise CampaignError(f"unknown layer {layer!r}")
    if golden.status is not RunStatus.OK:
        raise CampaignError(
            f"golden {layer} run failed: "
            f"{golden.status.value}/{golden.trap_kind}")
    max_steps = max(
        config.min_max_steps, golden.dyn_total * config.max_steps_factor)

    with _phase(observer, "prune", layer=layer):
        plan = build_prune_plan(layer, module=module, layout=layout,
                                program=program, fault_model=fm)
    strata = plan.strata_indices()
    if not strata:
        raise CampaignError("program has no injectable dynamic sites")
    names = [n for n in STRATA if n in strata]
    total_sites = len(plan.seq)
    weights = [len(strata[n]) / total_sites for n in names]
    bit_range = fault_bit_range(fm)
    rngs = {n: np.random.default_rng([config.seed, STRATA.index(n)])
            for n in names}

    counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    per_stratum: Dict[str, Dict[Outcome, int]] = {
        n: {o: 0 for o in Outcome} for n in names}
    records: List[InjectionRecord] = []
    engine_steps: Dict[str, int] = {}
    naive = {"steps": 0}

    def draw(name: str, k: int) -> List[Tuple[int, int]]:
        if k <= 0:
            return []
        rng = rngs[name]
        pool = strata[name]
        pos = rng.integers(0, len(pool), size=k)
        bits = rng.integers(0, bit_range, size=k)
        return [(pool[p], b) for p, b in zip(pos.tolist(), bits.tolist())]

    def execute(tagged: List[Tuple[Tuple[str, int], int, int]]) -> None:
        """Run (or prune) one batch of ((stratum, i), idx, bit) samples."""
        live = []
        for tag, idx, bit in tagged:
            if config.prune and plan.is_benign(idx, bit):
                name = tag[0]
                counts[Outcome.PRUNE_BENIGN] += 1
                per_stratum[name][Outcome.PRUNE_BENIGN] += 1
                if layer == "asm":
                    inst = program.inst_at(plan.static_id(idx))
                    records.append(InjectionRecord(
                        dyn_index=idx, bit=bit,
                        outcome=Outcome.PRUNE_BENIGN, iid=inst.prov_iid,
                        asm_index=plan.static_id(idx), asm_role=inst.role,
                        asm_opcode=inst.opcode, fault_model=fm))
                else:
                    records.append(InjectionRecord(
                        dyn_index=idx, bit=bit,
                        outcome=Outcome.PRUNE_BENIGN,
                        iid=plan.static_id(idx), fault_model=fm))
            else:
                live.append((tag, idx, bit))

        def emit(tag, res):
            outcome = classify_outcome(res, golden.output)
            counts[outcome] += 1
            per_stratum[tag[0]][outcome] += 1
            rec = InjectionRecord(
                dyn_index=tag[2], bit=tag[3], outcome=outcome,
                iid=res.injected_iid,
                trap_kind=canonical_trap_kind(res.trap_kind),
                fault_model=fm)
            if layer == "asm":
                rec.asm_index = res.extra.get("asm_index")
                rec.asm_role = res.extra.get("asm_role")
                rec.asm_opcode = res.extra.get("asm_opcode")
            records.append(rec)

        tagged_live = [((tag[0], tag[1], idx, bit), idx, bit)
                       for tag, idx, bit in live]
        if not tagged_live:
            return
        if use_engine:
            run_injection_suite(
                layer, tagged_live, max_steps, module=module,
                layout=layout, program=program, emit=emit, dispatch=tier,
                fault_model=fm, stats=engine_steps)
        else:
            for tag, idx, bit in tagged_live:
                if layer == "ir":
                    res = IRInterpreter(
                        module, layout=layout, max_steps=max_steps,
                        dispatch="naive", fault_model=fm,
                    ).run(inject_index=idx, inject_bit=bit)
                else:
                    res = AsmMachine(
                        program, layout, max_steps=max_steps,
                        dispatch="naive", fault_model=fm,
                    ).run(inject_index=idx, inject_bit=bit)
                naive["steps"] += res.dyn_total
                emit(tag, res)

    budget = config.n_campaigns
    pilot_n = {n: min(pilot, max(1, budget // (2 * len(names))))
               for n in names}
    with _phase(observer, "pilot", layer=layer,
                n=sum(pilot_n.values())):
        execute([((name, i), idx, bit)
                 for name in names
                 for i, (idx, bit) in enumerate(draw(name, pilot_n[name]))])

    # Neyman allocation of the remaining budget on pilot SDC spread
    sds = []
    for name in names:
        c = per_stratum[name]
        n_h = sum(c.values())
        p_h = c.get(Outcome.SDC, 0) / n_h if n_h else 0.0
        sds.append((p_h * (1 - p_h)) ** 0.5)
    remaining = max(0, budget - sum(pilot_n.values()))
    extra = neyman_allocation(weights, sds, remaining)
    with _phase(observer, "inject", layer=layer, n=sum(extra)):
        execute([((name, pilot_n[name] + i), idx, bit)
                 for name, k in zip(names, extra)
                 for i, (idx, bit) in enumerate(draw(name, k))])

    strata_out = [
        StratumSummary(
            name=name,
            weight=w,
            sites=len(strata[name]),
            n=sum(per_stratum[name].values()),
            counts=per_stratum[name],
        )
        for name, w in zip(names, weights)
    ]
    _record_outcomes(observer, layer, counts)
    return StratifiedResult(
        layer=layer,
        n=sum(s.n for s in strata_out),
        counts=counts,
        records=records,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
        simulated_steps=(
            golden.dyn_total
            + engine_steps.get("golden_steps", 0)
            + engine_steps.get("suffix_steps", 0)
            + naive["steps"]),
        strata=strata_out,
    )
