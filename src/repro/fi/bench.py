"""Campaign throughput benchmark: naive re-execution vs the engine.

Measures end-to-end fault-injection campaign time at both layers for
one benchmark/scale, twice each: once on the pre-engine path (naive
dispatch, full golden-prefix re-execution per injection) and once
through the checkpoint-replay engine with pre-decoded dispatch.  The
two runs must produce bit-identical :class:`CampaignResult`s — the
speedup is only meaningful if the engine changes nothing but time — so
the harness asserts record-level equality before reporting.

The emitted document (``BENCH_campaign.json``) is the PR's performance
artifact; ``repro bench`` and ``scripts/bench_campaign.py`` are thin
wrappers, and ``benchmarks/test_perf_simulators.py`` enforces the
speedup floor on the CI smoke workload.

Since bench_campaign/2 the document also carries a ``containment``
section: the same engine campaign timed with the fault containment
sandbox (DESIGN §11) disabled (``REPRO_CONTAIN=0``) and enabled,
proving the budgets-and-boundary machinery costs a few percent at most
and changes no result.

Since bench_campaign/4 each layer carries a ``codegen`` section: the
same engine campaign timed warm on the decoded tier and on the
template-generated codegen tier (``dispatch="codegen"``, DESIGN §13),
asserting record-level bit-identity, plus warm single golden-run
timings of both tiers (best of 3).  The campaign-level speedup is
diluted by the golden checkpointing pass (which always streams from
the decoded core); the ``run_speedup`` figures measure the generated
code itself and carry the >= 2x acceptance floor.

Since bench_campaign/5 each layer carries an ``incremental`` section
(DESIGN §15): the section-level compositional campaign run cold (empty
profile store — every section simulates, plus the one traced golden
pass that enumerates sites) and warm (identical program — every
section is a store hit, zero injections simulated).  The cold run must
stay within the 1.3x acceptance ratio of the plain engine campaign;
the warm run is the "plan re-evaluation" path and carries the >= 10x
floor enforced by ``benchmarks/test_perf_simulators.py``.

Since bench_campaign/6 it carries a ``pruning`` section (DESIGN §17):
the same fully-duplicated program measured under the two smart-sampling
mechanisms.  A pruned+stratified campaign (bit-liveness site classes,
pilot + Neyman allocation) must reproduce the 3000-injection uniform
campaign's SDC estimate — estimate inside the uniform CI, intervals
overlapping, equal-or-narrower width — at >= 2x fewer simulated steps
(the floor ``benchmarks/test_perf_simulators.py`` enforces); and a
pruned campaign over the *identical* uniform draw must return
bit-identical outcome estimates while skipping the simulation of every
statically-benign draw.

Since bench_campaign/3 it additionally carries a ``testgen`` section
(DESIGN §12): a differential-oracle smoke over a handful of generated
programs timed against a 60 s budget, plus the
``campaign_imports_testgen`` flag — recorded *before* the smoke pulls
the package in — proving the campaigns above executed without ever
importing :mod:`repro.testgen` (its runtime cost to campaigns is
exactly zero, not merely small).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..fi.campaign import CampaignConfig, CampaignResult
from ..pipeline import build

__all__ = ["run_campaign_bench", "render_bench", "campaign_signature"]

BENCH_SCHEMA = "bench_campaign/6"

#: wall-clock budget for the testgen oracle-matrix smoke
TESTGEN_BUDGET_SECONDS = 60.0
#: seeds the smoke sweeps (each runs one MiniC and one direct-IR matrix)
TESTGEN_SMOKE_SEEDS = (0, 1, 2)

#: CI smoke workload: long enough traces (golden IR ~54k / asm ~121k
#: dynamic steps at medium scale) that checkpoint-replay amortization
#: dominates the fixed snapshot/restore cost per injection
DEFAULT_BENCHMARK = "pathfinder"
DEFAULT_SCALE = "medium"
DEFAULT_N = 40
DEFAULT_SEED = 2023

#: pruning-section workload: fully duplicated so the bit-liveness
#: analysis has a checker-shadowed stratum to allocate away from; tiny
#: scale keeps the 3000-injection uniform reference CI-affordable
PRUNING_BENCHMARK = "pathfinder"
PRUNING_SCALE = "tiny"
PRUNING_LEVEL = 100
#: the uniform reference budget (the paper-scale per-cell campaign)
PRUNING_UNIFORM_N = 3000
#: stratified budget sized for the same CI width as the uniform
#: reference — the >= 2x steps floor is measured at equal precision
PRUNING_STRATIFIED_N = 1000
#: budget of the prune bit-identity check (asm layer, same draw)
PRUNING_PRUNE_N = 1000


def campaign_signature(result: CampaignResult) -> Tuple:
    """Everything observable about a campaign, as a comparable value."""
    return (
        result.layer,
        result.n,
        tuple(sorted((o.value, c) for o, c in result.counts.items())),
        tuple(
            (r.dyn_index, r.bit, r.outcome.value, r.iid, r.asm_index,
             r.asm_role, r.asm_opcode, r.trap_kind)
            for r in result.records
        ),
        result.golden_output,
        result.golden_dyn_total,
        result.golden_dyn_injectable,
    )


def _time_campaign(run, *args, **kwargs) -> Tuple[float, CampaignResult]:
    t0 = time.perf_counter()
    result = run(*args, **kwargs)
    return time.perf_counter() - t0, result


def _time_golden(built, layer: str, dispatch: str,
                 rounds: int = 3) -> float:
    """Best-of-``rounds`` wall time of one full golden run (warm —
    callers must have executed the tier once already so decode/codegen
    caches are primed)."""
    from ..interp.interpreter import IRInterpreter
    from ..machine.machine import AsmMachine

    best = float("inf")
    for _ in range(rounds):
        if layer == "ir":
            sim = IRInterpreter(built.module, layout=built.layout,
                                dispatch=dispatch)
        else:
            sim = AsmMachine(built.compiled, built.layout,
                             dispatch=dispatch)
        t0 = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - t0)
    return best


def _run_pruning_section() -> Dict:
    """The smart-sampling benchmark (DESIGN §17), as a JSON-safe doc.

    IR layer: pruned+stratified vs the 3000-injection uniform reference
    at equal CI width — the estimate must land inside the uniform CI
    with >= 2x fewer simulated steps.  Asm layer: pruning alone over the
    identical uniform draw — estimates must be bit-identical with every
    statically-benign draw's simulation skipped.  All step counts are
    deterministic for the fixed (benchmark, scale, seed), so the ratios
    below are reproducible figures, not wall-clock noise.
    """
    from .campaign import run_asm_campaign, run_ir_campaign

    built = build(PRUNING_BENCHMARK, scale=PRUNING_SCALE,
                  level=PRUNING_LEVEL)
    uni_s, uniform = _time_campaign(
        run_ir_campaign, built.module,
        CampaignConfig(n_campaigns=PRUNING_UNIFORM_N, seed=DEFAULT_SEED),
        built.layout, dispatch="codegen")
    strat_s, strat = _time_campaign(
        run_ir_campaign, built.module,
        CampaignConfig(n_campaigns=PRUNING_STRATIFIED_N,
                       seed=DEFAULT_SEED, prune=True, stratify=True),
        built.layout, dispatch="codegen")
    us, ss = uniform.summary(), strat.summary()
    u_lo, u_hi = us["sdc_ci"]
    s_lo, s_hi = ss["sdc_ci"]
    steps_ratio = (uniform.simulated_steps / strat.simulated_steps
                   if strat.simulated_steps else float("inf"))

    asm_uni_s, asm_uni = _time_campaign(
        run_asm_campaign, built.compiled, built.layout,
        CampaignConfig(n_campaigns=PRUNING_PRUNE_N, seed=DEFAULT_SEED),
        dispatch="codegen")
    asm_pr_s, asm_pr = _time_campaign(
        run_asm_campaign, built.compiled, built.layout,
        CampaignConfig(n_campaigns=PRUNING_PRUNE_N, seed=DEFAULT_SEED,
                       prune=True),
        dispatch="codegen")
    au, ap = asm_uni.summary(), asm_pr.summary()
    prune_identical = all(
        au[k] == ap[k] for k in ("sdc", "due", "detected", "benign"))
    prune_ratio = (asm_uni.simulated_steps / asm_pr.simulated_steps
                   if asm_pr.simulated_steps else float("inf"))
    return {
        "benchmark": PRUNING_BENCHMARK,
        "scale": PRUNING_SCALE,
        "level": PRUNING_LEVEL,
        "stratified": {
            "layer": "ir",
            "uniform_n": PRUNING_UNIFORM_N,
            "stratified_n": PRUNING_STRATIFIED_N,
            "uniform_sdc": us["sdc"],
            "uniform_sdc_ci": [u_lo, u_hi],
            "stratified_sdc": ss["sdc"],
            "stratified_sdc_ci": [s_lo, s_hi],
            "uniform_steps": uniform.simulated_steps,
            "stratified_steps": strat.simulated_steps,
            "steps_ratio": steps_ratio,
            "uniform_seconds": uni_s,
            "stratified_seconds": strat_s,
            "within_uniform_ci": u_lo <= ss["sdc"] <= u_hi,
            "ci_overlap": s_lo <= u_hi and u_lo <= s_hi,
            "width_ok": (s_hi - s_lo) <= (u_hi - u_lo),
        },
        "prune": {
            "layer": "asm",
            "n": PRUNING_PRUNE_N,
            "pruned": asm_pr.pruned,
            "uniform_steps": asm_uni.simulated_steps,
            "pruned_steps": asm_pr.simulated_steps,
            "steps_ratio": prune_ratio,
            "uniform_seconds": asm_uni_s,
            "pruned_seconds": asm_pr_s,
            "estimates_identical": prune_identical,
        },
        "sound": (u_lo <= ss["sdc"] <= u_hi and prune_identical
                  and steps_ratio >= 2.0),
    }


@contextmanager
def _contain_env(value: str):
    """Temporarily pin ``REPRO_CONTAIN`` (the sandbox on/off switch)."""
    prev = os.environ.get("REPRO_CONTAIN")
    os.environ["REPRO_CONTAIN"] = value
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_CONTAIN", None)
        else:
            os.environ["REPRO_CONTAIN"] = prev


def run_campaign_bench(
    benchmark: str = DEFAULT_BENCHMARK,
    scale: str = DEFAULT_SCALE,
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    level: Optional[int] = None,
    flowery: bool = False,
) -> Dict:
    """Benchmark naive vs engine campaign execution at both layers.

    Returns a JSON-safe document; see :data:`BENCH_SCHEMA`.  The
    ``steps_per_sec`` figures are *nominal*: golden dynamic steps × n
    divided by wall time, i.e. the rate at which naive-equivalent work
    is retired — the engine's value exceeds its real executed-step rate
    exactly because it skips redundant golden prefixes.
    """
    from .campaign import run_asm_campaign, run_ir_campaign

    built = build(benchmark, scale=scale, level=level, flowery=flowery)
    cfg = CampaignConfig(n_campaigns=n, seed=seed)

    layers: Dict[str, Dict] = {}
    for layer in ("ir", "asm"):
        if layer == "ir":
            args = (built.module, cfg, built.layout)
            run = run_ir_campaign
        else:
            args = (built.compiled, built.layout, cfg)
            run = run_asm_campaign
        naive_s, naive_res = _time_campaign(run, *args, engine=False)
        engine_s, engine_res = _time_campaign(run, *args, engine=True)
        # containment overhead: the same engine campaign with the fault
        # containment sandbox off vs on (both warm — the run above
        # already primed decode caches and allocator pools)
        with _contain_env("0"):
            off_s, off_res = _time_campaign(run, *args, engine=True)
        with _contain_env("1"):
            on_s, on_res = _time_campaign(run, *args, engine=True)
        # dispatch tiers on the engine path: decoded vs generated code,
        # both warm (the first codegen run below builds and caches the
        # generated source; only the second is timed)
        _time_campaign(run, *args, engine=True, dispatch="codegen")
        dec_s, dec_res = _time_campaign(run, *args, engine=True,
                                        dispatch="decoded")
        cg_s, cg_res = _time_campaign(run, *args, engine=True,
                                      dispatch="codegen")
        identical = campaign_signature(naive_res) == \
            campaign_signature(engine_res)
        contain_identical = campaign_signature(off_res) == \
            campaign_signature(on_res)
        codegen_identical = campaign_signature(dec_res) == \
            campaign_signature(cg_res)
        # raw tier throughput: one full golden run per tier, warm
        run_dec_s = _time_golden(built, layer, "decoded")
        run_cg_s = _time_golden(built, layer, "codegen")
        # compositional incremental campaign: cold (empty store, every
        # section simulates + one traced site-enumeration pass) vs warm
        # (same program — pure store lookups, the plan-re-evaluation
        # path).  Timed against the plain engine campaign above.
        from .compose import SectionProfileStore, run_incremental_campaign

        store_path = os.path.join(
            tempfile.mkdtemp(prefix="repro-bench-store-"), "store.jsonl")
        with SectionProfileStore(store_path) as inc_store:
            inc_cold_s, inc_cold = _time_campaign(
                run_incremental_campaign, built, layer, cfg, inc_store)
        with SectionProfileStore(store_path) as inc_store:
            inc_warm_s, inc_warm = _time_campaign(
                run_incremental_campaign, built, layer, cfg, inc_store)
        work = naive_res.golden_dyn_total * n
        layers[layer] = {
            "naive_seconds": naive_s,
            "engine_seconds": engine_s,
            "speedup": naive_s / engine_s if engine_s > 0 else float("inf"),
            "naive_campaigns_per_sec": n / naive_s,
            "engine_campaigns_per_sec": n / engine_s,
            "naive_steps_per_sec": work / naive_s,
            "engine_steps_per_sec": work / engine_s,
            "golden_dyn_total": naive_res.golden_dyn_total,
            "golden_dyn_injectable": naive_res.golden_dyn_injectable,
            "results_identical": identical,
            "containment": {
                "off_seconds": off_s,
                "on_seconds": on_s,
                "overhead_pct": (on_s - off_s) / off_s * 100.0
                if off_s > 0 else 0.0,
                "results_identical": contain_identical,
            },
            "codegen": {
                "decoded_seconds": dec_s,
                "codegen_seconds": cg_s,
                "speedup": dec_s / cg_s if cg_s > 0 else float("inf"),
                "run_decoded_seconds": run_dec_s,
                "run_codegen_seconds": run_cg_s,
                "run_speedup": run_dec_s / run_cg_s
                if run_cg_s > 0 else float("inf"),
                "results_identical": codegen_identical,
            },
            "incremental": {
                "sections": len(inc_cold.sections),
                "cold_seconds": inc_cold_s,
                "warm_seconds": inc_warm_s,
                "cold_simulated": inc_cold.simulated,
                "warm_simulated": inc_warm.simulated,
                "cold_ratio_vs_engine": inc_cold_s / engine_s
                if engine_s > 0 else float("inf"),
                "warm_speedup_vs_engine": engine_s / inc_warm_s
                if inc_warm_s > 0 else float("inf"),
                "warm_pure_hits": inc_warm.simulated == 0,
            },
        }

    pruning = _run_pruning_section()

    # zero-runtime-cost proof: nothing the campaigns above executed may
    # have imported the validation tooling.  Snapshot the flag *before*
    # the oracle smoke imports it.
    campaign_imports_testgen = any(
        name == "repro.testgen" or name.startswith("repro.testgen.")
        for name in sys.modules
    )
    from ..frontend.codegen import compile_source
    from ..testgen import generate_ir, generate_minic, run_differential_oracle

    t0 = time.perf_counter()
    oracle_runs = 0
    oracle_ok = True
    for s in TESTGEN_SMOKE_SEEDS:
        prog = generate_minic(s)
        for name, make in (
            (f"minic-{s}", lambda p=prog, s=s: compile_source(
                p.source, f"bench-minic{s}")),
            (f"ir-{s}", lambda s=s: generate_ir(s)),
        ):
            report = run_differential_oracle(make, name=name)
            oracle_runs += report.runs
            oracle_ok = oracle_ok and report.ok
    oracle_s = time.perf_counter() - t0
    testgen = {
        "oracle_seeds": list(TESTGEN_SMOKE_SEEDS),
        "oracle_programs": 2 * len(TESTGEN_SMOKE_SEEDS),
        "oracle_matrix_runs": oracle_runs,
        "oracle_seconds": oracle_s,
        "budget_seconds": TESTGEN_BUDGET_SECONDS,
        "within_budget": oracle_s < TESTGEN_BUDGET_SECONDS,
        "oracle_ok": oracle_ok,
        "campaign_imports_testgen": campaign_imports_testgen,
    }

    naive_total = sum(d["naive_seconds"] for d in layers.values())
    engine_total = sum(d["engine_seconds"] for d in layers.values())
    contain_off_total = sum(
        d["containment"]["off_seconds"] for d in layers.values())
    contain_on_total = sum(
        d["containment"]["on_seconds"] for d in layers.values())
    codegen_dec_total = sum(
        d["codegen"]["decoded_seconds"] for d in layers.values())
    codegen_cg_total = sum(
        d["codegen"]["codegen_seconds"] for d in layers.values())
    inc_cold_total = sum(
        d["incremental"]["cold_seconds"] for d in layers.values())
    inc_warm_total = sum(
        d["incremental"]["warm_seconds"] for d in layers.values())
    run_dec_total = sum(
        d["codegen"]["run_decoded_seconds"] for d in layers.values())
    run_cg_total = sum(
        d["codegen"]["run_codegen_seconds"] for d in layers.values())
    return {
        "schema": BENCH_SCHEMA,
        "params": {
            "benchmark": benchmark,
            "scale": scale,
            "n_campaigns": n,
            "seed": seed,
            "level": level,
            "flowery": flowery,
        },
        "layers": layers,
        "pruning": pruning,
        "testgen": testgen,
        "overall": {
            "naive_seconds": naive_total,
            "engine_seconds": engine_total,
            "speedup": naive_total / engine_total
            if engine_total > 0 else float("inf"),
            "results_identical": all(
                d["results_identical"] for d in layers.values()),
            "containment": {
                "off_seconds": contain_off_total,
                "on_seconds": contain_on_total,
                "overhead_pct": (contain_on_total - contain_off_total)
                / contain_off_total * 100.0
                if contain_off_total > 0 else 0.0,
                "results_identical": all(
                    d["containment"]["results_identical"]
                    for d in layers.values()),
            },
            "codegen": {
                "decoded_seconds": codegen_dec_total,
                "codegen_seconds": codegen_cg_total,
                "speedup": codegen_dec_total / codegen_cg_total
                if codegen_cg_total > 0 else float("inf"),
                "run_decoded_seconds": run_dec_total,
                "run_codegen_seconds": run_cg_total,
                "run_speedup": run_dec_total / run_cg_total
                if run_cg_total > 0 else float("inf"),
                "results_identical": all(
                    d["codegen"]["results_identical"]
                    for d in layers.values()),
            },
            "incremental": {
                "cold_seconds": inc_cold_total,
                "warm_seconds": inc_warm_total,
                "cold_ratio_vs_engine": inc_cold_total / engine_total
                if engine_total > 0 else float("inf"),
                "warm_speedup_vs_engine": engine_total / inc_warm_total
                if inc_warm_total > 0 else float("inf"),
                "warm_pure_hits": all(
                    d["incremental"]["warm_pure_hits"]
                    for d in layers.values()),
            },
        },
    }


def render_bench(doc: Dict) -> str:
    """Human-readable table for one bench document."""
    p = doc["params"]
    lines: List[str] = [
        f"campaign bench: {p['benchmark']}/{p['scale']} "
        f"n={p['n_campaigns']} seed={p['seed']} "
        f"level={p['level']} flowery={p['flowery']}",
        f"{'layer':6s} {'naive':>9s} {'engine':>9s} {'speedup':>8s} "
        f"{'camp/s':>8s} {'identical':>9s}",
    ]
    for layer, d in doc["layers"].items():
        lines.append(
            f"{layer:6s} {d['naive_seconds']:8.3f}s {d['engine_seconds']:8.3f}s "
            f"{d['speedup']:7.2f}x {d['engine_campaigns_per_sec']:8.1f} "
            f"{str(d['results_identical']):>9s}"
        )
    o = doc["overall"]
    lines.append(
        f"{'all':6s} {o['naive_seconds']:8.3f}s {o['engine_seconds']:8.3f}s "
        f"{o['speedup']:7.2f}x {'':8s} {str(o['results_identical']):>9s}"
    )
    lines.append("containment sandbox (engine campaigns, off vs on):")
    lines.append(
        f"{'layer':6s} {'off':>9s} {'on':>9s} {'overhead':>9s} "
        f"{'identical':>9s}")
    for layer, d in doc["layers"].items():
        c = d["containment"]
        lines.append(
            f"{layer:6s} {c['off_seconds']:8.3f}s {c['on_seconds']:8.3f}s "
            f"{c['overhead_pct']:+8.2f}% {str(c['results_identical']):>9s}"
        )
    oc = o["containment"]
    lines.append(
        f"{'all':6s} {oc['off_seconds']:8.3f}s {oc['on_seconds']:8.3f}s "
        f"{oc['overhead_pct']:+8.2f}% {str(oc['results_identical']):>9s}"
    )
    lines.append("dispatch tiers, decoded vs codegen (campaign = engine "
                 "path incl. decoded golden pass; run = one golden run):")
    lines.append(
        f"{'layer':6s} {'campaign-dec':>12s} {'campaign-cg':>12s} "
        f"{'speedup':>8s} {'run-speedup':>11s} {'identical':>9s}")
    for layer, d in doc["layers"].items():
        g = d["codegen"]
        lines.append(
            f"{layer:6s} {g['decoded_seconds']:11.3f}s "
            f"{g['codegen_seconds']:11.3f}s {g['speedup']:7.2f}x "
            f"{g['run_speedup']:10.2f}x "
            f"{str(g['results_identical']):>9s}"
        )
    og = o["codegen"]
    lines.append(
        f"{'all':6s} {og['decoded_seconds']:11.3f}s "
        f"{og['codegen_seconds']:11.3f}s {og['speedup']:7.2f}x "
        f"{og['run_speedup']:10.2f}x "
        f"{str(og['results_identical']):>9s}"
    )
    lines.append("incremental campaigns, cold (empty store) vs warm "
                 "(pure cache hits), vs the plain engine campaign:")
    lines.append(
        f"{'layer':6s} {'cold':>9s} {'warm':>9s} {'cold-ratio':>10s} "
        f"{'warm-speedup':>12s} {'warm-sim':>8s}")
    for layer, d in doc["layers"].items():
        i = d["incremental"]
        lines.append(
            f"{layer:6s} {i['cold_seconds']:8.3f}s {i['warm_seconds']:8.3f}s "
            f"{i['cold_ratio_vs_engine']:9.2f}x "
            f"{i['warm_speedup_vs_engine']:11.1f}x "
            f"{i['warm_simulated']:8d}"
        )
    oi = o["incremental"]
    lines.append(
        f"{'all':6s} {oi['cold_seconds']:8.3f}s {oi['warm_seconds']:8.3f}s "
        f"{oi['cold_ratio_vs_engine']:9.2f}x "
        f"{oi['warm_speedup_vs_engine']:11.1f}x "
        f"{'0' if oi['warm_pure_hits'] else '!':>8s}"
    )
    pr = doc.get("pruning")
    if pr:
        st, pu = pr["stratified"], pr["prune"]
        lines.append(
            f"smart sampling ({pr['benchmark']}/{pr['scale']} "
            f"level={pr['level']}, DESIGN §17):")
        lines.append(
            f"  stratified ir: sdc {st['stratified_sdc']:.4f} "
            f"[{st['stratified_sdc_ci'][0]:.4f},"
            f"{st['stratified_sdc_ci'][1]:.4f}] n={st['stratified_n']} "
            f"vs uniform {st['uniform_sdc']:.4f} "
            f"[{st['uniform_sdc_ci'][0]:.4f},"
            f"{st['uniform_sdc_ci'][1]:.4f}] n={st['uniform_n']}: "
            f"{st['steps_ratio']:.2f}x fewer steps "
            f"(within-ci={st['within_uniform_ci']}, "
            f"width-ok={st['width_ok']})"
        )
        lines.append(
            f"  pruned asm: {pu['pruned']}/{pu['n']} draws resolved "
            f"statically, {pu['steps_ratio']:.2f}x fewer steps, "
            f"estimates identical: {pu['estimates_identical']}"
        )
        lines.append(f"  sound: {pr['sound']}")
    tg = doc.get("testgen")
    if tg:
        lines.append(
            f"testgen oracle smoke: {tg['oracle_programs']} programs / "
            f"{tg['oracle_matrix_runs']} matrix runs in "
            f"{tg['oracle_seconds']:.2f}s (budget {tg['budget_seconds']:.0f}s, "
            f"ok={tg['oracle_ok']}); campaigns imported repro.testgen: "
            f"{tg['campaign_imports_testgen']}"
        )
    return "\n".join(lines) + "\n"
