"""Checkpoint-replay execution engine for fault-injection campaigns.

The naive campaign loop re-executes the *entire* golden prefix for
every injection: O(n_campaigns × trace_len) dynamic steps.  Because the
fault model perturbs nothing before the targeted dynamic instruction,
every injection at dynamic index ``k`` shares the first ``k`` golden
steps exactly.  This engine amortizes them (the FastFlip idea applied
to replay structure):

1. sort the distinct drawn injection indices ascending;
2. execute the golden trace **once** with ``checkpoints=`` set, letting
   the decoded simulator stream out an immutable snapshot of machine
   state at each index (taken just before the targeted instruction
   executes — the flip lands after it writes its destination);
3. for each injection at that index, resume a fresh simulator from the
   snapshot and run only the post-injection *suffix*.

Total cost drops to O(trace_len + Σ suffix lengths).  Determinism: both
simulators are sequential and single-threaded, a snapshot captures the
complete machine state (memory image, registers/frames, flags, program
counter, step/injection counters, output buffer), and the replayed
suffix executes the same closures over the same state — so every replay
is bit-identical to the corresponding full run, and campaign results
are bit-identical to the naive path (asserted by
``tests/test_engine_equivalence.py``).

The engine holds one snapshot at a time: replays for an index happen
inside the checkpoint callback, before the golden pass moves on, so
peak memory is one machine image regardless of campaign size.

``REPRO_ENGINE=0`` disables the engine globally (campaigns fall back to
the naive re-execution path with naive dispatch — the exact pre-engine
code path), which is also the baseline the benchmark harness measures
against.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..contain import host_escape_result
from ..errors import CampaignError
from ..execresult import ExecResult
from ..faultmodel import validate_fault_model
from ..interp.interpreter import IRInterpreter
from ..interp.layout import GlobalLayout
from ..ir.module import Module
from ..machine.machine import AsmMachine, CompiledProgram

__all__ = ["engine_dispatch", "engine_enabled", "run_injection_suite"]


def engine_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the engine on/off switch.

    An explicit ``flag`` wins; otherwise the ``REPRO_ENGINE``
    environment variable decides (default on; ``"0"`` disables).
    """
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_ENGINE", "1") != "0"


def engine_dispatch(dispatch: Optional[str] = None) -> str:
    """Resolve the dispatch tier used on the engine path.

    An explicit ``dispatch`` wins; otherwise ``REPRO_DISPATCH`` decides,
    defaulting to ``"decoded"`` (campaign results are bit-identical
    across tiers, so the default stays conservative and journal hashes
    stay stable).  Only the snapshot-capable tiers are legal here —
    ``"naive"`` cannot resume from checkpoints.  A typo (``"codgen"``)
    raises :class:`CampaignError` rather than silently falling back.
    """
    resolved = (dispatch if dispatch is not None
                else os.environ.get("REPRO_DISPATCH", "decoded"))
    if resolved not in ("decoded", "codegen"):
        raise CampaignError(
            f"engine dispatch must be 'decoded' or 'codegen', "
            f"got {resolved!r}")
    return resolved


def run_injection_suite(
    layer: str,
    samples: Iterable[Tuple[object, int, int]],
    max_steps: int,
    *,
    module: Optional[Module] = None,
    layout: Optional[GlobalLayout] = None,
    program: Optional[CompiledProgram] = None,
    emit: Callable[[object, ExecResult], None],
    dispatch: Optional[str] = None,
    fault_model: Optional[str] = None,
    stats: Optional[Dict[str, int]] = None,
) -> None:
    """Run every ``(tag, dyn_index, bit)`` injection with checkpoint-replay.

    ``emit(tag, result)`` is called once per sample, in ascending
    ``dyn_index`` order (callers that need the original sample order key
    their own structures by ``tag``).  Indices beyond the end of the
    golden trace — impossible when drawn below the injectable count, but
    guarded anyway — fall back to plain full executions.

    ``dispatch`` selects the replay tier (see :func:`engine_dispatch`);
    suffix replays run on it, while the golden checkpointing pass always
    streams snapshots from the decoded core (the codegen tier delegates
    internally when checkpoints are requested).  ``fault_model``
    (default SEU) selects what the injection corrupts — the simulators
    watch/checkpoint at that model's injectable sites.

    ``stats``, when given, accumulates the engine's simulated-step
    accounting in place: ``golden_steps`` (the shared checkpointing
    pass), ``suffix_steps`` (dynamic steps actually re-executed across
    every replay — a resumed run's ``dyn_total`` is full-run-equivalent,
    so the suffix is its total minus the snapshot's step counter) and
    ``replays``.  This is the denominator behind the pruning benchmark's
    "fewer simulated steps" claim (:mod:`repro.fi.prune`).
    """
    tier = engine_dispatch(dispatch)
    fm = validate_fault_model(fault_model)
    if layer == "ir":
        def fresh():
            return IRInterpreter(module, layout=layout, max_steps=max_steps,
                                 dispatch=tier, fault_model=fm)
    elif layer == "asm":
        def fresh():
            return AsmMachine(program, layout, max_steps=max_steps,
                              dispatch=tier, fault_model=fm)
    else:
        raise ValueError(f"unknown layer {layer!r}")

    by_idx: Dict[int, List[Tuple[object, int]]] = {}
    for tag, idx, bit in samples:
        by_idx.setdefault(idx, []).append((tag, bit))
    if not by_idx:
        return
    targets = sorted(by_idx)
    done = set()

    # One long-lived replay simulator: resuming from a snapshot resets
    # the complete machine state, so reusing the instance (rather than
    # constructing a fresh ~MB memory image per injection, only to
    # overwrite it immediately) is safe and saves the dominant
    # allocation cost on short traces.
    replay_sim = fresh()

    def account(suffix: int) -> None:
        if stats is not None:
            stats["suffix_steps"] = stats.get("suffix_steps", 0) + suffix
            stats["replays"] = stats.get("replays", 0) + 1

    def replay(idx: int, snap) -> None:
        # IRSnapshot carries ``dyn_total``, AsmSnapshot ``steps`` — both
        # are the golden step count at the checkpoint
        prefix = getattr(snap, "steps", None)
        if prefix is None:
            prefix = snap.dyn_total
        for tag, bit in by_idx[idx]:
            try:
                res = replay_sim.run(
                    inject_index=idx, inject_bit=bit, resume_from=snap
                )
            except (MemoryError, RecursionError) as exc:
                # resource exhaustion outside the simulator's own
                # containment boundary (e.g. during snapshot restore):
                # classify this one injection as a trap instead of
                # letting the worker die and burn split-retry budget
                res = host_escape_result(exc, layer=layer)
            account(max(0, res.dyn_total - prefix))
            emit(tag, res)
        done.add(idx)

    golden = fresh().run(checkpoints=targets, checkpoint_cb=replay)
    if stats is not None:
        stats["golden_steps"] = (
            stats.get("golden_steps", 0) + golden.dyn_total)
    for idx in targets:
        if idx not in done:  # pragma: no cover - defensive
            for tag, bit in by_idx[idx]:
                try:
                    res = fresh().run(inject_index=idx, inject_bit=bit)
                except (MemoryError, RecursionError) as exc:
                    res = host_escape_result(exc, layer=layer)
                account(res.dyn_total)
                emit(tag, res)
