"""Shared fsync'd-JSONL journal primitives for multi-process stores.

:class:`~repro.fi.resilience.InjectionJournal` (§9) and
:class:`~repro.fi.compose.SectionProfileStore` (§15) independently
grew the same on-disk discipline: append-only JSONL, one flushed and
fsync'd line per event, a torn-tail-tolerant loader that discards an
unterminated final line (the expected artifact of ``SIGKILL`` mid
``write``).  This module extracts that discipline once and hardens it
for *shared* files that many campaign processes read and write
concurrently (DESIGN §16):

* **Per-line CRC32 checksums** — every appended document carries a
  ``"c"`` field: the CRC32 of its canonical JSON serialization without
  that field.  Documents written before checksums existed simply lack
  the field and load as before, so v1 journals and stores remain
  readable.

* **Corrupt-line quarantine** — a *complete* line (newline-terminated)
  that fails to parse or fails its checksum is not a torn tail: it is
  corruption (bitrot, a non-advisory writer, a partial overwrite).
  The scanner skips it, logs it to a sidecar ``<path>.quarantine``
  file, and keeps going — a corrupt row must never crash a campaign
  nor silently end the scan and shadow every later, valid row.  Only
  an unterminated final line is treated as a torn tail and silently
  discarded.

* **Advisory cross-process locking** — :class:`FileLock` wraps
  ``fcntl.flock`` on a sidecar ``<path>.lock`` file (the data file's
  fd cannot be used: compaction atomically replaces the data inode)
  with bounded retry and exponential backoff.  Exhausting the budget
  raises a loud :class:`~repro.errors.StoreLockTimeout` naming the
  path, mode, and how long was waited — callers decide whether that
  is fatal or a reason to degrade to a private store.

Scans run in binary mode and report byte offsets, so a long-lived
reader can cheaply re-scan only the tail another process appended
since its last look (the refresh path of the shared store).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..errors import StoreLockTimeout

try:  # pragma: no cover - exercised only on platforms without fcntl
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = [
    "CRC_FIELD",
    "FileLock",
    "QuarantineLog",
    "ScanStats",
    "append_doc",
    "canonical_crc",
    "fsync_dir",
    "scan_jsonl",
    "seal_doc",
]

#: reserved top-level key carrying a document's own checksum
CRC_FIELD = "c"

#: default lock-acquisition budget (seconds); override per-lock or via
#: the environment for slow shared filesystems
DEFAULT_LOCK_TIMEOUT = 30.0
_LOCK_TIMEOUT_ENV = "REPRO_STORE_LOCK_TIMEOUT"


def _env_lock_timeout() -> float:
    raw = os.environ.get(_LOCK_TIMEOUT_ENV)
    if not raw:
        return DEFAULT_LOCK_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise StoreLockTimeout(
            f"{_LOCK_TIMEOUT_ENV} must be a number of seconds, "
            f"got {raw!r}") from None
    if value <= 0:
        raise StoreLockTimeout(
            f"{_LOCK_TIMEOUT_ENV} must be positive, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# checksummed documents
# ---------------------------------------------------------------------------

def canonical_crc(doc: dict) -> int:
    """CRC32 of a document's canonical JSON form (sans ``"c"``).

    Canonical means sorted keys and compact separators, so the checksum
    is independent of the key order and whitespace the writer happened
    to serialize with — a reloaded-and-rewritten document (compaction)
    keeps its checksum.
    """
    if CRC_FIELD in doc:
        doc = {k: v for k, v in doc.items() if k != CRC_FIELD}
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def seal_doc(doc: dict) -> dict:
    """Return ``doc`` with its checksum field appended (last, so the
    leading ``{"ev": ...`` prefix stays greppable)."""
    sealed = {k: v for k, v in doc.items() if k != CRC_FIELD}
    sealed[CRC_FIELD] = canonical_crc(sealed)
    return sealed


def append_doc(fh, doc: dict, *, crc: bool = True) -> None:
    """Append one JSONL line durably: write, flush, fsync."""
    fh.write(json.dumps(seal_doc(doc) if crc else doc) + "\n")
    fh.flush()
    os.fsync(fh.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# quarantine sidecar
# ---------------------------------------------------------------------------

class QuarantineLog:
    """Sidecar log of corrupt lines skipped while scanning a journal.

    Best-effort by design: quarantining exists so a corrupt row cannot
    crash a campaign, so the quarantine write itself must never raise.
    """

    def __init__(self, journal_path: str):
        self.path = journal_path + ".quarantine"

    def record(self, *, offset: int, line: bytes, reason: str) -> None:
        entry = {
            "ts": time.time(),
            "offset": offset,
            "reason": reason,
            "line": line.decode("utf-8", errors="replace")[:4096],
        }
        try:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            pass


# ---------------------------------------------------------------------------
# torn-tail-tolerant, quarantining scanner
# ---------------------------------------------------------------------------

@dataclass
class ScanStats:
    """Outcome of one :func:`scan_jsonl` pass."""

    #: valid documents delivered to the handler
    docs: int = 0
    #: complete lines skipped as corrupt (parse or checksum failure)
    corrupt: int = 0
    #: documents that carried and passed a checksum
    crc_checked: int = 0
    #: documents accepted without a checksum field (legacy writers)
    crc_missing: int = 0
    #: an unterminated final line was discarded
    torn_tail: bool = False
    #: byte offset just past the last complete line examined — the
    #: resume point for an incremental tail re-scan
    offset: int = 0


def scan_jsonl(
    path: str,
    on_doc: Callable[[dict], None],
    *,
    start: int = 0,
    quarantine: Optional[QuarantineLog] = None,
    verify_crc: bool = True,
) -> ScanStats:
    """Scan ``path`` from byte ``start``, delivering valid documents.

    Every *complete* line (newline-terminated) either parses, passes
    its checksum (when present), and reaches ``on_doc`` — or is
    quarantined and skipped.  An unterminated final line is the torn
    tail of a killed writer: discarded, scan ends.  ``on_doc``
    receives the parsed dict with the checksum field already removed.
    """
    stats = ScanStats(offset=start)
    with open(path, "rb") as fh:
        if start:
            fh.seek(start)
        while True:
            line = fh.readline()
            if not line:
                break
            if not line.endswith(b"\n"):
                stats.torn_tail = True
                break
            line_offset = stats.offset
            stats.offset += len(line)
            reason = None
            doc = None
            try:
                doc = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                reason = f"unparseable JSON: {exc}"
            else:
                if not isinstance(doc, dict):
                    reason = f"not a JSON object: {type(doc).__name__}"
                elif CRC_FIELD in doc:
                    claimed = doc.pop(CRC_FIELD)
                    actual = canonical_crc(doc)
                    if claimed != actual:
                        reason = (f"checksum mismatch: line claims "
                                  f"{claimed!r}, content is {actual}")
                    else:
                        stats.crc_checked += 1
                else:
                    stats.crc_missing += 1
            if reason is not None:
                stats.corrupt += 1
                if quarantine is not None:
                    quarantine.record(offset=line_offset, line=line,
                                      reason=reason)
                continue
            stats.docs += 1
            on_doc(doc)
    return stats


# ---------------------------------------------------------------------------
# advisory cross-process locking
# ---------------------------------------------------------------------------

class FileLock:
    """``fcntl.flock`` advisory lock with bounded exponential backoff.

    The lock lives on its own sidecar file so it survives atomic
    replacement of the data file (compaction renames a fresh journal
    over the old inode; an flock on the old inode would guard
    nothing).  Acquisition polls with ``LOCK_NB`` and sleeps with
    exponential backoff up to ``timeout`` seconds, then raises
    :class:`~repro.errors.StoreLockTimeout` — loudly, with the path
    and wait budget, never a silent hang.  On platforms without
    ``fcntl`` the lock degrades to a no-op (single-process semantics).
    """

    def __init__(self, path: str, *, timeout: Optional[float] = None,
                 initial_delay: float = 0.002, max_delay: float = 0.1):
        self.path = path
        self.timeout = timeout if timeout is not None else _env_lock_timeout()
        self.initial_delay = initial_delay
        self.max_delay = max_delay
        self._fd: Optional[int] = None
        #: acquisitions that had to wait at least one backoff round
        self.contended = 0
        #: total acquisitions (for stats reporting)
        self.acquisitions = 0

    @property
    def supported(self) -> bool:
        return fcntl is not None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, *, shared: bool = False) -> None:
        if self._fd is not None:
            raise StoreLockTimeout(
                f"lock {self.path!r} is already held by this handle "
                f"(non-reentrant)")
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._fd = fd
            self.acquisitions += 1
            return
        mode = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        deadline = time.monotonic() + self.timeout
        delay = self.initial_delay
        waited = False
        while True:
            try:
                fcntl.flock(fd, mode | fcntl.LOCK_NB)
                break
            except (BlockingIOError, PermissionError):
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise StoreLockTimeout(
                        f"could not acquire {'shared' if shared else 'exclusive'} "
                        f"lock on {self.path!r} within {self.timeout:g}s; "
                        f"another campaign holds it (set "
                        f"{_LOCK_TIMEOUT_ENV} to wait longer)") from None
                waited = True
                time.sleep(delay)
                delay = min(delay * 2, self.max_delay)
        self._fd = fd
        self.acquisitions += 1
        if waited:
            self.contended += 1

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        self.acquire(shared=False)
        try:
            yield
        finally:
            self.release()

    @contextmanager
    def shared(self) -> Iterator[None]:
        self.acquire(shared=True)
        try:
            yield
        finally:
            self.release()
