"""Section partitioning + exact dynamic injectable-site enumeration.

The compositional campaign engine (FastFlip-style, DESIGN §15) needs
two facts about a program, at both execution layers:

1. a **partition** of the static code into sections — IR functions at
   the IR layer, uop regions between synchronization points at the
   assembly layer — each carrying a *content hash* that is a pure
   function of the section's own code (function-local numbering, no
   global iids/pcs), so editing one function never perturbs another
   section's hash;

2. the exact **dynamic injectable-site sequence** of one golden run,
   attributed to sections, so per-section sub-campaigns draw from
   precisely the sites a whole-program campaign would have drawn from.

Site enumeration rides the simulators' existing per-step trace hook
(:mod:`repro.trace.tap`): a minimal tracer subclass records, for every
dynamic step that the fault model treats as injectable, the static id
it executes.  The predicates mirror the simulators' own site
accounting exactly — IR: ``inst.is_ir_injection_site`` (SEU/SET) or
``br``/``condbr`` (CF); asm: ``CompiledProgram.inj_kind`` (SEU/SET) or
``cf_kind`` (CF) — and the result is validated against the golden
run's ``dyn_injectable`` counter, so any drift between the predicate
and the simulator is a loud :class:`CampaignError`, never a silently
mis-partitioned campaign.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CampaignError
from ..execresult import ExecResult, RunStatus
from ..faultmodel import validate_fault_model
from ..interp.layout import GlobalLayout
from ..ir.instructions import (
    Alloca,
    Br,
    Call,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Store,
)
from ..ir.module import Function, Module
from ..ir.values import Argument, Constant, GlobalVariable
from ..machine.machine import CompiledProgram
from ..trace.tap import IRTracer, MachineTracer

__all__ = [
    "Section",
    "SiteMap",
    "partition_ir",
    "partition_asm",
    "ir_function_hash",
    "asm_region_hash",
    "module_env_hash",
    "map_sites",
    "MIN_ASM_REGION",
]

#: minimum uops per assembly section: sync points inside a region this
#: small do not end it, bounding section count (and store size) on
#: branch-dense code
MIN_ASM_REGION = 32


@dataclass(frozen=True)
class Section:
    """One unit of the partition at one layer."""

    layer: str                  # 'ir' | 'asm'
    #: stable human name: the function (plus ``#k`` for asm regions)
    name: str
    #: position in partition order (section ids are per-program)
    index: int
    #: sha256 of the section's canonical, function-local serialization
    content_hash: str
    #: static ids covered: IR iids / asm flat-program pcs
    static_ids: Tuple[int, ...]


# ---------------------------------------------------------------------------
# canonical serialization — IR
# ---------------------------------------------------------------------------

def _canon_value(v, local: Dict[int, int]) -> str:
    """Function-local spelling of one operand.

    Instruction results use the *local* instruction index (module iids
    shift when other functions change size), arguments their position,
    globals and callees their names — every cross-section reference is
    by name, every intra-section reference by local offset.
    """
    if isinstance(v, Instruction):
        return f"%{local[id(v)]}"
    if isinstance(v, Constant):
        return f"c:{v.type}:{v.value!r}"
    if isinstance(v, Argument):
        return f"a:{v.index}"
    if isinstance(v, GlobalVariable):
        return f"g:{v.name}"
    if isinstance(v, Function):
        return f"f:{v.name}"
    return f"?:{v.short()}"          # pragma: no cover - defensive


def _canon_inst(inst: Instruction, local: Dict[int, int],
                blocks: Dict[int, int]) -> str:
    parts: List[str] = [inst.opcode, str(inst.type)]
    if isinstance(inst, (ICmp, FCmp)):
        parts.append(inst.pred)
    elif isinstance(inst, Alloca):
        parts.append(str(inst.allocated_type))
    elif isinstance(inst, Gep):
        parts.append(str(inst.element_size))
    elif isinstance(inst, (Load, Store)):
        parts.append("v" if inst.volatile else "-")
    elif isinstance(inst, Call):
        parts.append(inst.callee_name)
    elif isinstance(inst, Br):
        parts.append(f"b{blocks[id(inst.target)]}")
    elif isinstance(inst, CondBr):
        parts.append(f"b{blocks[id(inst.then_block)]}")
        parts.append(f"b{blocks[id(inst.else_block)]}")
    parts.extend(_canon_value(op, local) for op in inst.operands)
    return "|".join(parts)


def ir_function_hash(fn: Function) -> str:
    """Content hash of one IR function, insensitive to everything
    outside it (including its own name and its module-global iids)."""
    local: Dict[int, int] = {}
    for i, inst in enumerate(fn.instructions()):
        local[id(inst)] = i
    blocks = {id(b): i for i, b in enumerate(fn.blocks)}
    lines = [f"fn|{len(fn.args)}|{fn.return_type}"]
    for bi, block in enumerate(fn.blocks):
        lines.append(f"b{bi}")
        lines.extend(
            _canon_inst(inst, local, blocks) for inst in block.instructions
        )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def partition_ir(module: Module) -> List[Section]:
    """One section per defined function, in module order."""
    sections: List[Section] = []
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        ids = tuple(inst.iid for inst in fn.instructions())
        sections.append(Section(
            layer="ir",
            name=fn.name,
            index=len(sections),
            content_hash=ir_function_hash(fn),
            static_ids=ids,
        ))
    return sections


def module_env_hash(module: Module) -> str:
    """Hash of the shared execution environment: global variables.

    Globals are referenced by *name* in the section hashes, so a
    changed initializer (same name) would otherwise be invisible; the
    environment hash closes that hole — it participates in every
    section's profile key (:mod:`repro.fi.compose`).
    """
    lines: List[str] = []
    for name, gv in sorted(module.globals.items()):
        init = gv.initializer
        if isinstance(init, list):
            init_c = ",".join(repr(x) for x in init)
        else:
            init_c = repr(init)
        lines.append(f"{name}|{gv.value_type}|{init_c}|"
                     f"{int(gv.is_const)}|{int(gv.volatile)}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# ---------------------------------------------------------------------------
# canonical serialization — asm
# ---------------------------------------------------------------------------

def _canon_operand(op) -> str:
    from ..backend.isa import Imm, Label, Mem, Reg

    if isinstance(op, Reg):
        return f"r:{op.name}"
    if isinstance(op, Imm):
        return f"i:{op.value!r}"
    if isinstance(op, Mem):
        base = op.base.name if op.base is not None else ""
        return f"m:{base}:{op.disp}"
    if isinstance(op, Label):
        return f"l:{op.name}"
    return f"?:{op}"                 # pragma: no cover - defensive


def asm_region_hash(insts: Sequence) -> str:
    """Content hash of one uop region.

    ``prov_iid`` is deliberately excluded (module-global numbering —
    editing any earlier function would shift it); label operands are
    already function-local names, and absolute global addresses depend
    only on the data layout, which :func:`module_env_hash` covers.
    """
    lines = []
    for inst in insts:
        ops = "|".join(_canon_operand(o) for o in inst.operands)
        lines.append(f"{inst.opcode}{inst.cc or ''}|{inst.size}|"
                     f"{inst.role}|{ops}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def partition_asm(program: CompiledProgram,
                  min_region: int = MIN_ASM_REGION) -> List[Section]:
    """Uop regions between sync points, within function boundaries.

    Each defined function's contiguous pc range is split after
    control-transfer uops (``cf_kind`` — jmp/jcc/call), but only once
    the open region holds at least ``min_region`` uops; region
    boundaries are therefore a pure function of the *function's own*
    instruction list, never of neighbouring functions.
    """
    flat = program.flat
    cf_kind = program.cf_kind
    sections: List[Section] = []
    n = len(flat.insts)
    fn_start = 0
    while fn_start < n:
        fn = flat.inst_fn[fn_start]
        fn_end = fn_start
        while fn_end < n and flat.inst_fn[fn_end] == fn:
            fn_end += 1
        # split [fn_start, fn_end) at sync points
        region = 0
        start = fn_start
        for pc in range(fn_start, fn_end):
            last = pc == fn_end - 1
            if last or (cf_kind[pc] and pc - start + 1 >= min_region):
                sections.append(Section(
                    layer="asm",
                    name=f"{fn}#{region}",
                    index=len(sections),
                    content_hash=asm_region_hash(
                        flat.insts[start:pc + 1]),
                    static_ids=tuple(range(start, pc + 1)),
                ))
                region += 1
                start = pc + 1
        fn_start = fn_end
    return sections


# ---------------------------------------------------------------------------
# site-enumeration taps
# ---------------------------------------------------------------------------

class _IRSiteTap(IRTracer):
    """Records the static iid of every injectable dynamic site, in
    allocation order.  Subclasses :class:`IRTracer` only so the
    interpreter's ``isinstance`` coercion accepts it; all base
    machinery is bypassed."""

    def __init__(self, predicate: Callable[[Instruction], bool]):
        self._pred = predicate
        self.seq: List[int] = []
        self.trace = None

    def attach(self, interp) -> None:
        pass

    def hook(self, inst, frame) -> None:
        if self._pred(inst):
            self.seq.append(inst.iid)

    def finish(self) -> None:
        pass


class _AsmSiteTap(MachineTracer):
    """Asm counterpart: records the pc of every injectable site."""

    def __init__(self, kinds: Sequence[int]):
        self._kinds = kinds
        self.seq: List[int] = []
        self.trace = None

    def attach(self, machine) -> None:
        pass

    def hook(self, pc, regs, xmm) -> None:
        if self._kinds[pc]:
            self.seq.append(pc)

    def finish(self, regs, xmm) -> None:
        pass


def _ir_site_predicate(fault_model: str) -> Callable[[Instruction], bool]:
    if fault_model == "cf":
        return lambda inst: inst.opcode in ("br", "condbr")
    return lambda inst: inst.is_ir_injection_site


# ---------------------------------------------------------------------------
# the site map
# ---------------------------------------------------------------------------

@dataclass
class SiteMap:
    """Partition + exact per-section dynamic injectable-site lists for
    one (program, layer, fault model)."""

    layer: str
    fault_model: str
    sections: List[Section]
    #: per-section ascending global dynamic injectable indices
    dyn_indices: List[List[int]]
    #: per-section dynamic signature: hash of the section's dynamic
    #: site profile (count per *local* static slot) — the staleness
    #: guard for cached profiles (DESIGN §15)
    dyn_signatures: List[str]
    golden_output: str
    golden_dyn_total: int
    golden_dyn_injectable: int
    env_hash: str

    @property
    def site_counts(self) -> List[int]:
        return [len(d) for d in self.dyn_indices]

    def section_of_static(self, static_id: int) -> Optional[int]:
        return self._static_index().get(static_id)

    def _static_index(self) -> Dict[int, int]:
        cached = getattr(self, "_static_idx", None)
        if cached is None:
            cached = {}
            for s in self.sections:
                for sid in s.static_ids:
                    cached[sid] = s.index
            object.__setattr__(self, "_static_idx", cached)
        return cached


def _dyn_signature(section: Section, hits: Dict[int, int]) -> str:
    """Hash of {local static slot: dynamic site count} for one section."""
    local = {sid: i for i, sid in enumerate(section.static_ids)}
    pairs = sorted((local[sid], c) for sid, c in hits.items())
    body = ";".join(f"{p}:{c}" for p, c in pairs)
    return hashlib.sha256(
        f"{len(section.static_ids)}|{body}".encode()).hexdigest()


def map_sites(
    built,
    layer: str,
    fault_model: Optional[str] = None,
) -> SiteMap:
    """One traced golden run -> validated :class:`SiteMap`.

    ``built`` is a :class:`~repro.pipeline.BuiltProgram` (anything with
    ``module``/``layout``/``compiled``).  The traced run uses decoded
    dispatch (tracing forces it anyway); its site sequence must match
    the golden ``dyn_injectable`` count exactly or this raises
    :class:`CampaignError`.
    """
    fm = validate_fault_model(fault_model)
    if layer == "ir":
        from ..interp.interpreter import IRInterpreter

        sections = partition_ir(built.module)
        tap = _IRSiteTap(_ir_site_predicate(fm))
        golden = IRInterpreter(
            built.module, layout=built.layout, trace=tap, fault_model=fm,
        ).run()
        env = module_env_hash(built.module)
    elif layer == "asm":
        from ..machine.machine import AsmMachine

        program = built.compiled
        sections = partition_asm(program)
        kinds = program.cf_kind if fm == "cf" else program.inj_kind
        tap = _AsmSiteTap(kinds)
        golden = AsmMachine(
            program, built.layout, trace=tap, fault_model=fm,
        ).run()
        env = module_env_hash(built.module)
    else:
        raise CampaignError(f"unknown layer {layer!r}")

    if golden.status is not RunStatus.OK:
        raise CampaignError(
            f"golden {layer} run failed: "
            f"{golden.status.value}/{golden.trap_kind}")
    if len(tap.seq) != golden.dyn_injectable:
        raise CampaignError(
            f"site enumeration drift at layer {layer!r} model {fm!r}: "
            f"tap saw {len(tap.seq)} sites, simulator counted "
            f"{golden.dyn_injectable}")

    static_to_section: Dict[int, int] = {}
    for s in sections:
        for sid in s.static_ids:
            static_to_section[sid] = s.index
    dyn_indices: List[List[int]] = [[] for _ in sections]
    hits: List[Dict[int, int]] = [dict() for _ in sections]
    for dyn, sid in enumerate(tap.seq):
        pos = static_to_section.get(sid)
        if pos is None:
            raise CampaignError(
                f"dynamic site {dyn} executes static id {sid} outside "
                f"every section (layer {layer!r})")
        dyn_indices[pos].append(dyn)
        hits[pos][sid] = hits[pos].get(sid, 0) + 1
    signatures = [
        _dyn_signature(s, hits[s.index]) for s in sections
    ]
    return SiteMap(
        layer=layer,
        fault_model=fm,
        sections=sections,
        dyn_indices=dyn_indices,
        dyn_signatures=signatures,
        golden_output=golden.output,
        golden_dyn_total=golden.dyn_total,
        golden_dyn_injectable=golden.dyn_injectable,
        env_hash=env,
    )
