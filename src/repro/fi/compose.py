"""Compositional incremental campaigns over a section-profile store.

The whole-program campaign (:mod:`repro.fi.campaign`) answers "what is
this program's SDC rate" by re-injecting the entire program.  This
module answers the same question *compositionally* (FastFlip, DESIGN
§15): partition the program into sections (:mod:`repro.fi.sections`),
run one injection sub-campaign per section through the checkpoint-
replay engine, and compose the per-section SDC/DUE/detected profiles —
weighted by each section's share of the dynamic injectable-site space —
into whole-program estimates with confidence intervals
(:mod:`repro.fi.stats`).

Each section profile is cached in a :class:`SectionProfileStore`, an
append-only fsync'd JSONL journal built on the shared primitives of
:mod:`repro.fi.journal`, keyed by a content hash over (section code,
layer, dispatch tier, fault model, execution environment, dynamic
signature, protection config, sampling plan).  Re-running an unchanged
program is therefore pure cache hits — zero simulated injections — and
editing one function (or flipping one function's protection)
re-simulates only the sections whose hashes changed.  A killed run
resumes bit-identically: every classified injection was fsync'd as a
row before the profile commit, so the next run replays journaled rows
and simulates only the remainder.

**Multi-tenant sharing (DESIGN §16).**  One store file may be written
by many concurrent campaign processes.  Every append happens under a
short-lived exclusive :class:`~repro.fi.journal.FileLock` lease that
first catches up on lines other writers appended; loads and refreshes
run under the shared mode of the same lock.  Rows carry CRC32
checksums; a complete-but-corrupt line is quarantined to a sidecar
``.quarantine`` log and skipped, never fatal.  In-flight sections are
announced with *claim* rows (owner ``host:pid:token`` plus a TTL kept
alive by heartbeats) so concurrent campaigns dedupe work: a campaign
that finds a live foreign claim waits for that owner's profile instead
of re-simulating, and takes the section over if the claim expires or
its owner is provably dead.  When the store is unreachable or lock
acquisition exhausts its budget, the store *degrades to private mode*
— in-memory only, a single loud warning — and the campaign keeps
going; only a schema mismatch is a hard error.

**Approximation contract.** For an unchanged program the composed
result is exact (the per-section oracle test proves outcome counts
bit-match an exhaustive whole-program campaign).  After an edit, reused
profiles of *unchanged* sections carry the FastFlip independence
approximation: the section's injections were classified against the
old program's golden output and executed in its context.  The dynamic
signature in the key rejects reuse whenever the edit changed the
section's dynamic site profile, which catches the common cross-section
couplings (trip counts, call counts); residual error is the documented
cost of not re-simulating the world.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import warnings
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CampaignError, StoreLockTimeout
from .campaign import CampaignConfig, _phase, _record_outcomes
from .engine import engine_dispatch, run_injection_suite
from .journal import (
    FileLock,
    QuarantineLog,
    append_doc,
    fsync_dir,
    scan_jsonl,
    seal_doc,
)
from .outcomes import Outcome
from .resilience import (
    ROW_FIELDS,
    _row_from_result,
    pruned_row,
    record_from_row,
)
from .sections import SiteMap, map_sites
from .stats import DEFAULT_Z, composed_interval
from ..faultmodel import fault_bit_range, validate_fault_model

__all__ = [
    "STORE_SCHEMA",
    "SectionProfile",
    "SectionProfileStore",
    "SectionOutcome",
    "ComposedResult",
    "profile_key",
    "profile_key_doc",
    "key_from_doc",
    "run_incremental_campaign",
    "cached_site_map",
    "compact_store",
    "verify_store",
    "store_stats",
]

#: bump when the store document layout changes (JOURNAL_VERSION-style).
#: v2 adds per-line CRC32 checksums, claim/release coordination rows and
#: the ``kd`` key-preimage on profile commits; v1 files load unchanged.
STORE_SCHEMA = "section-profile/1"
STORE_VERSION = 2

#: default lifetime of a section claim without a heartbeat (seconds)
CLAIM_TTL = 30.0
_CLAIM_TTL_ENV = "REPRO_STORE_CLAIM_TTL"
#: how long a campaign waits on foreign claims before force-simulating
_WAIT_BUDGET_ENV = "REPRO_STORE_WAIT"
DEFAULT_WAIT_BUDGET = 600.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise CampaignError(
            f"{name} must be a number of seconds, got {raw!r}") from None
    if value <= 0:
        raise CampaignError(f"{name} must be positive, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# profile identity
# ---------------------------------------------------------------------------

def _protection_doc(built) -> Dict:
    """Protection configuration of a built program, canonically.

    The section content hash already encodes the protected code; this
    doc is the belt-and-braces identity the ISSUE's key demands (and
    what makes store files self-describing).
    """
    doc: Dict = {}
    prot = getattr(built, "protection", None)
    if prot is not None:
        doc["level"] = prot.level
        if getattr(prot, "flowery", False):
            doc["flowery"] = True
    if getattr(built, "cfc_info", None) is not None:
        doc["cfc"] = True
    return doc


def profile_key_doc(
    section,
    site_map: SiteMap,
    *,
    dispatch: str,
    protection: Dict,
    seed: int,
    exhaustive_bits: Optional[Tuple[int, ...]] = None,
    prune: bool = False,
) -> Dict:
    """The preimage document a profile key hashes (see
    :func:`profile_key`).  Stored alongside profile commits as ``kd``
    so ``repro store verify`` can recompute every key hash.

    ``prune`` marks profiles whose rows may contain statically-resolved
    :data:`~repro.fi.outcomes.Outcome.PRUNE_BENIGN` entries.  It enters
    the doc only when True — unpruned campaigns keep the exact keys
    they hashed before the pruner existed, so a store populated by an
    older binary stays warm."""
    doc = {
        "schema": STORE_SCHEMA,
        "content": section.content_hash,
        "layer": section.layer,
        "dispatch": dispatch,
        "fault_model": site_map.fault_model,
        "env": site_map.env_hash,
        "dyn_sig": site_map.dyn_signatures[section.index],
        "protection": protection,
    }
    if exhaustive_bits is not None:
        doc["exhaustive_bits"] = list(exhaustive_bits)
    else:
        doc["seed"] = seed
    if prune:
        doc["prune"] = True
    return doc


def key_from_doc(doc: Dict) -> str:
    """Hash a key-preimage doc into the store key."""
    canon = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


def profile_key(
    section,
    site_map: SiteMap,
    *,
    dispatch: str,
    protection: Dict,
    seed: int,
    exhaustive_bits: Optional[Tuple[int, ...]] = None,
    prune: bool = False,
) -> str:
    """Content hash identifying one cached section profile.

    Two lookups share a key iff the section's code, execution layer,
    replay tier, fault model, environment (globals), dynamic site
    profile, protection config and sampling *stream* (the seed, or the
    exhaustive bit plan) all match.  The per-run sample *count* is
    deliberately NOT part of the key: it is derived from the whole
    program's site totals, so baking it in would invalidate every
    unchanged section whenever any other section was edited.  A cached
    profile is served when it holds at least as many samples as the
    current plan asks for (it is at least as precise); a plan that
    needs more samples re-simulates the section and commits the larger
    profile over the old one.
    """
    return key_from_doc(profile_key_doc(
        section, site_map, dispatch=dispatch, protection=protection,
        seed=seed, exhaustive_bits=exhaustive_bits, prune=prune,
    ))


def _section_seed(seed: int, section, fault_model: str) -> int:
    """Deterministic per-section RNG stream, independent of every other
    section (so an edit elsewhere never perturbs this section's draw)."""
    digest = hashlib.sha256(
        f"{seed}|{section.layer}|{fault_model}|{section.content_hash}"
        .encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------

@dataclass
class SectionProfile:
    """Aggregated sub-campaign outcome for one section."""

    key: str
    name: str
    content_hash: str
    n: int
    counts: Dict[Outcome, int]
    #: dynamic injectable sites the section owned at profiling time
    site_count: int

    def to_doc(self) -> Dict:
        return {
            "name": self.name,
            "content": self.content_hash,
            "n": self.n,
            "counts": {o.value: c for o, c in self.counts.items() if c},
            "sites": self.site_count,
        }

    @classmethod
    def from_doc(cls, key: str, doc: Dict) -> "SectionProfile":
        return cls(
            key=key,
            name=doc["name"],
            content_hash=doc["content"],
            n=doc["n"],
            counts={o: doc["counts"].get(o.value, 0) for o in Outcome},
            site_count=doc["sites"],
        )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class SectionProfileStore:
    """Journal-backed content-addressed section-profile cache, safe for
    concurrent multi-process use.

    Schema (one JSON object per line; shared by many campaigns)::

        {"ev": "header", "version": 2, "schema": "section-profile/1", "c": …}
        {"ev": "row", "k": <profile key>, "n": <plan sample count>,
         "i": <local sample index>,
         "row": [idx, bit, status, output, iid, asm_index, asm_role,
                 asm_opcode, trap_kind, fault_model], "c": …}
        {"ev": "profile", "k": <key>, "kd": <key preimage>,
         "profile": {...}, "c": …}
        {"ev": "claim", "k": <key>, "n": <plan n>,
         "owner": "host:pid:token", "ts": <epoch>, "ttl": <sec>, "c": …}
        {"ev": "release", "k": <key>, "owner": "host:pid:token", "c": …}

    Rows are fsync'd per append (the InjectionJournal discipline), so a
    ``SIGKILL`` at any point leaves all fully classified injections on
    disk plus at most one torn trailing line, which the loader
    discards.  Every line carries a CRC32 checksum (``"c"``, appended
    last so the ``{"ev": …`` prefix stays greppable); a complete line
    that fails its checksum or does not parse is quarantined to
    ``<path>.quarantine`` and skipped — corruption never crashes a
    campaign and never shadows later valid lines.  Legacy v1 lines
    without a checksum load as before.

    A ``profile`` line marks the section complete; rows without one are
    a partial sub-campaign the next run resumes.  Rows carry the plan's
    sample count because the seed-derived draw is a single RNG stream
    per (section, seed): the i-th sample of an n=30 plan and of an n=40
    plan differ, so rows only replay into a plan of the same size.
    Profile lines are latest-wins — committing a larger re-simulated
    profile supersedes the old one; byte-identical recommits are
    skipped (counted in :meth:`stats`).

    Writes take a short exclusive flock lease on ``<path>.lock`` (a
    sidecar, so the lease survives compaction's atomic rename) and
    first ingest any lines other processes appended; loads take the
    shared mode.  If the store is unreachable or the lock budget is
    exhausted the store degrades to *private mode*: in-memory only,
    one ``RuntimeWarning``, campaign continues.  A schema mismatch is
    always a loud :class:`~repro.errors.CampaignError`.
    """

    def __init__(self, path: str, *, lock_timeout: Optional[float] = None,
                 claim_ttl: Optional[float] = None):
        self.path = path
        self.profiles: Dict[str, SectionProfile] = {}
        #: partial (uncommitted) rows: key -> {(plan n, local i): row}
        self.partial: Dict[str, Dict[Tuple[int, int], Tuple]] = {}
        #: live claim docs by key (latest wins; profile/release clears)
        self.claims: Dict[str, Dict] = {}
        self.claim_ttl = (claim_ttl if claim_ttl is not None
                          else _env_float(_CLAIM_TTL_ENV, CLAIM_TTL))
        self.noop_commits_skipped = 0
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        #: cumulative corruption/CRC statistics from every scan
        self.scan_corrupt = 0
        self.scan_crc_checked = 0
        self.scan_crc_missing = 0
        self._host = socket.gethostname()
        self._token = os.urandom(4).hex()
        self._owner = f"{self._host}:{os.getpid()}:{self._token}"
        #: claims held by this handle: key -> last heartbeat time
        self._my_claims: Dict[str, float] = {}
        self._header_seen = False
        self._offset = 0
        self._fh = None
        self._quarantine = QuarantineLog(path)
        self._lock = FileLock(path + ".lock", timeout=lock_timeout)
        try:
            with self._lock.exclusive():
                exists = os.path.exists(path) and os.path.getsize(path) > 0
                if exists:
                    self._scan_from(0)
                    if not self._header_seen:
                        raise CampaignError(
                            f"store {self.path!r} has no readable header")
                else:
                    parent = os.path.dirname(os.path.abspath(path))
                    os.makedirs(parent, exist_ok=True)
                # the append handle opens only after a successful load,
                # so an unreadable/mismatched store cannot leak the fd
                self._fh = open(path, "a", encoding="utf-8")
                if not exists:
                    append_doc(self._fh, {
                        "ev": "header", "version": STORE_VERSION,
                        "schema": STORE_SCHEMA,
                    })
                    self._header_seen = True
                    self._offset = os.fstat(self._fh.fileno()).st_size
        except StoreLockTimeout as exc:
            self._degrade(f"lock acquisition failed: {exc}")
        except OSError as exc:
            self._degrade(f"store unreachable: {exc}")

    # -- degradation ----------------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Switch to private (in-memory) mode: warn once, keep going."""
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._lock.held:
            self._lock.release()
        self._my_claims.clear()
        self.claims.clear()
        warnings.warn(
            f"shared profile store {self.path!r} degraded to private "
            f"(in-memory) mode: {reason}; results of this campaign will "
            f"not be shared", RuntimeWarning, stacklevel=3)

    # -- scanning / ingest ----------------------------------------------

    def _ingest(self, doc: Dict) -> None:
        ev = doc.get("ev")
        if ev == "header":
            if doc.get("schema") != STORE_SCHEMA:
                raise CampaignError(
                    f"store {self.path!r} has schema "
                    f"{doc.get('schema')!r}, expected {STORE_SCHEMA!r}")
            self._header_seen = True
        elif ev == "row":
            row = doc.get("row")
            if isinstance(doc.get("i"), int) and \
                    isinstance(doc.get("n"), int) and \
                    isinstance(row, list) and \
                    len(row) == len(ROW_FIELDS):
                self.partial.setdefault(
                    doc["k"], {})[(doc["n"], doc["i"])] = tuple(row)
        elif ev == "profile":
            try:
                self.profiles[doc["k"]] = SectionProfile.from_doc(
                    doc["k"], doc["profile"])
            except (KeyError, TypeError):
                return              # malformed entry: treat as absent
            self.partial.pop(doc["k"], None)
            self.claims.pop(doc["k"], None)
        elif ev == "claim":
            if isinstance(doc.get("k"), str):
                self.claims[doc["k"]] = doc
        elif ev == "release":
            claim = self.claims.get(doc.get("k"))
            if claim is not None and claim.get("owner") == doc.get("owner"):
                del self.claims[doc["k"]]

    def _scan_from(self, start: int) -> None:
        stats = scan_jsonl(self.path, self._ingest, start=start,
                           quarantine=self._quarantine)
        self._offset = stats.offset
        self.scan_corrupt += stats.corrupt
        self.scan_crc_checked += stats.crc_checked
        self.scan_crc_missing += stats.crc_missing

    def _reopen_if_rotated(self) -> None:
        """After a concurrent compaction atomically replaced the data
        file, our append handle points at the unlinked old inode:
        reopen and rebuild in-memory state from the fresh journal."""
        if self._fh is None:
            return
        st = os.stat(self.path)
        if os.fstat(self._fh.fileno()).st_ino == st.st_ino:
            return
        self._fh.close()
        self._fh = open(self.path, "a", encoding="utf-8")
        self.profiles.clear()
        self.partial.clear()
        self.claims.clear()
        self._header_seen = False
        self._offset = 0
        self._scan_from(0)

    def _catch_up_locked(self) -> None:
        """Ingest lines other writers appended since our last look.
        Caller must hold the lock (either mode)."""
        self._reopen_if_rotated()
        size = os.fstat(self._fh.fileno()).st_size
        if size > self._offset:
            self._scan_from(self._offset)

    def refresh(self) -> None:
        """Pick up other processes' commits (shared lock, tail scan)."""
        if self.degraded:
            return
        try:
            with self._lock.shared():
                self._catch_up_locked()
        except StoreLockTimeout as exc:
            self._degrade(f"lock acquisition failed: {exc}")
        except OSError as exc:
            self._degrade(f"store unreachable: {exc}")

    def _append(self, doc: Dict) -> None:
        """Durably append one event under a short exclusive lease.

        The lease first catches up on foreign appends (so our byte
        offset never skips over them) and re-targets the journal if a
        compaction rotated it.  Lock or I/O failure degrades to
        private mode — the in-memory effect of the event is applied by
        the caller either way.
        """
        if self.degraded:
            return
        try:
            with self._lock.exclusive():
                self._catch_up_locked()
                append_doc(self._fh, doc)
                self._offset = os.fstat(self._fh.fileno()).st_size
        except StoreLockTimeout as exc:
            self._degrade(f"lock acquisition failed: {exc}")
        except OSError as exc:
            self._degrade(f"store unreachable: {exc}")

    # -- reads ----------------------------------------------------------

    def get(self, key: str) -> Optional[SectionProfile]:
        return self.profiles.get(key)

    def partial_rows(self, key: str, n: int) -> Dict[int, Tuple]:
        """Journaled rows for ``key`` drawn under a plan of size ``n``."""
        return {i: row
                for (rn, i), row in self.partial.get(key, {}).items()
                if rn == n}

    # -- claims (multi-writer work dedup) --------------------------------

    def claim_of(self, key: str) -> Optional[Dict]:
        """The live foreign claim on ``key``, if any (stale claims and
        our own claims read as absent)."""
        claim = self.claims.get(key)
        if claim is None or claim.get("owner") == self._owner:
            return None
        if self.claim_is_stale(claim):
            return None
        return claim

    def claim_is_stale(self, claim: Dict) -> bool:
        """A claim is stale when its TTL expired without a heartbeat,
        or its owner is provably gone (dead pid on this host, or a
        previous incarnation of this very process)."""
        now = time.time()
        ts = claim.get("ts", 0)
        ttl = claim.get("ttl", self.claim_ttl)
        if not isinstance(ts, (int, float)) or \
                not isinstance(ttl, (int, float)) or now > ts + ttl:
            return True
        owner = claim.get("owner", "")
        try:
            host, pid_s, token = owner.rsplit(":", 2)
            pid = int(pid_s)
        except (ValueError, AttributeError):
            return True
        if host != self._host:
            return False            # cross-host: only the TTL can tell
        if pid == os.getpid():
            # same pid, different token: an earlier, dead incarnation
            return token != self._token
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except (PermissionError, OSError):
            pass
        return False

    def try_claim(self, key: str, n: int) -> str:
        """Attempt to claim ``key`` for a plan of ``n`` samples.

        Returns ``"mine"`` (claimed: simulate it), ``"busy"`` (a live
        foreign claim with a plan at least as large is in flight: wait
        for its profile), or ``"served"`` (catching up revealed a
        committed profile that already satisfies the plan).
        """
        if self.degraded:
            return "mine"
        claimed = {"ev": "claim", "k": key, "n": n, "owner": self._owner,
                   "ts": time.time(), "ttl": self.claim_ttl}
        try:
            with self._lock.exclusive():
                self._catch_up_locked()
                cached = self.profiles.get(key)
                if cached is not None and cached.n >= n:
                    return "served"
                foreign = self.claim_of(key)
                if foreign is not None and foreign.get("n", 0) >= n:
                    return "busy"
                # no claim, a stale one, or a smaller foreign plan that
                # cannot serve us: announce ours (latest claim wins)
                append_doc(self._fh, claimed)
                self._offset = os.fstat(self._fh.fileno()).st_size
        except StoreLockTimeout as exc:
            self._degrade(f"lock acquisition failed: {exc}")
            return "mine"
        except OSError as exc:
            self._degrade(f"store unreachable: {exc}")
            return "mine"
        self.claims[key] = claimed
        self._my_claims[key] = claimed["ts"]
        return "mine"

    def _heartbeat(self, key: str) -> None:
        """Refresh our claim's TTL when half of it has elapsed."""
        last = self._my_claims.get(key)
        if last is None or self.degraded:
            return
        now = time.time()
        if now - last < self.claim_ttl / 2:
            return
        doc = {"ev": "claim", "k": key,
               "n": self.claims.get(key, {}).get("n", 0),
               "owner": self._owner, "ts": now, "ttl": self.claim_ttl}
        self._append(doc)
        if not self.degraded:
            self.claims[key] = doc
            self._my_claims[key] = now

    def release(self, key: str) -> None:
        """Drop our claim on ``key`` without committing a profile."""
        if key not in self._my_claims:
            return
        del self._my_claims[key]
        claim = self.claims.get(key)
        if claim is not None and claim.get("owner") == self._owner:
            del self.claims[key]
        self._append({"ev": "release", "k": key, "owner": self._owner})

    def release_all(self) -> None:
        """Drop every claim this handle still holds (abort path)."""
        for key in list(self._my_claims):
            self.release(key)

    # -- writes ----------------------------------------------------------

    def record_row(self, key: str, n: int, i: int, row: Tuple) -> None:
        """Durably checkpoint one classified injection."""
        self._append({"ev": "row", "k": key, "n": n, "i": i,
                      "row": list(row)})
        self.partial.setdefault(key, {})[(n, i)] = tuple(row)
        self._heartbeat(key)

    def commit_profile(self, profile: SectionProfile,
                       key_doc: Optional[Dict] = None) -> None:
        """Mark one section's sub-campaign complete.

        A byte-identical recommit (same key, same payload as the
        profile already on record) is skipped — warm runs must not
        bloat a shared journal — but still releases any claim we hold,
        since no profile event will do it for us.
        """
        existing = self.profiles.get(profile.key)
        if existing is not None and existing.to_doc() == profile.to_doc():
            self.noop_commits_skipped += 1
            self.profiles[profile.key] = profile
            self.partial.pop(profile.key, None)
            self.release(profile.key)
            return
        doc = {"ev": "profile", "k": profile.key,
               "profile": profile.to_doc()}
        if key_doc is not None:
            doc["kd"] = key_doc
        self._append(doc)
        self.profiles[profile.key] = profile
        self.partial.pop(profile.key, None)
        # the profile event itself clears the claim for every reader
        self._my_claims.pop(profile.key, None)
        self.claims.pop(profile.key, None)

    # -- stats / lifecycle ----------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational counters for ``repro store stats`` and tests."""
        return {
            "path": self.path,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "profiles": len(self.profiles),
            "partial_keys": len(self.partial),
            "partial_rows": sum(len(v) for v in self.partial.values()),
            "claims": len(self.claims),
            "noop_commits_skipped": self.noop_commits_skipped,
            "quarantined": self.scan_corrupt,
            "crc_checked": self.scan_crc_checked,
            "crc_missing": self.scan_crc_missing,
            "lock_acquisitions": self._lock.acquisitions,
            "lock_contended": self._lock.contended,
        }

    def close(self) -> None:
        self.release_all()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SectionProfileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# store maintenance (repro store compact|verify|stats)
# ---------------------------------------------------------------------------

def _scan_state(path: str, *, quarantine: Optional[QuarantineLog] = None):
    """One read-only pass over a store file: returns (state, ScanStats).

    ``state`` mirrors the store's in-memory maps plus verification
    extras (header doc, per-key latest profile doc with its ``kd``,
    raw event counts).
    """
    state = {
        "header": None,
        "profiles": {},         # key -> profile event doc
        "partial": {},          # key -> {(n, i): row doc}
        "claims": {},           # key -> claim doc
        "events": {"header": 0, "row": 0, "profile": 0,
                   "claim": 0, "release": 0, "other": 0},
    }

    def ingest(doc: Dict) -> None:
        ev = doc.get("ev")
        if ev == "header":
            state["events"]["header"] += 1
            if state["header"] is None:
                state["header"] = doc
        elif ev == "row":
            state["events"]["row"] += 1
            row = doc.get("row")
            if isinstance(doc.get("i"), int) and \
                    isinstance(doc.get("n"), int) and isinstance(row, list):
                state["partial"].setdefault(
                    doc.get("k"), {})[(doc["n"], doc["i"])] = doc
        elif ev == "profile":
            state["events"]["profile"] += 1
            if isinstance(doc.get("k"), str):
                state["profiles"][doc["k"]] = doc
                state["partial"].pop(doc["k"], None)
                state["claims"].pop(doc["k"], None)
        elif ev == "claim":
            state["events"]["claim"] += 1
            if isinstance(doc.get("k"), str):
                state["claims"][doc["k"]] = doc
        elif ev == "release":
            state["events"]["release"] += 1
            claim = state["claims"].get(doc.get("k"))
            if claim is not None and \
                    claim.get("owner") == doc.get("owner"):
                del state["claims"][doc["k"]]
        else:
            state["events"]["other"] += 1

    stats = scan_jsonl(path, ingest, quarantine=quarantine)
    return state, stats


def _claim_live(claim: Dict) -> bool:
    ts = claim.get("ts", 0)
    ttl = claim.get("ttl", CLAIM_TTL)
    if not isinstance(ts, (int, float)) or not isinstance(ttl, (int, float)):
        return False
    return time.time() <= ts + ttl


def verify_store(path: str) -> Dict[str, object]:
    """Recompute every line's CRC and every profile's key hash.

    Returns a report dict; ``report["ok"]`` is True iff no corrupt
    lines, no checksum failures and no key-hash mismatches were found.
    (Lines without a checksum are legacy v1 writers — reported, not
    errors.)  Never raises on corruption: corruption is the condition
    being reported.
    """
    if not os.path.exists(path):
        raise CampaignError(f"store {path!r} does not exist")
    state, stats = _scan_state(path)
    key_mismatches = []
    keys_checked = 0
    for key, doc in state["profiles"].items():
        kd = doc.get("kd")
        if kd is None:
            continue            # pre-v2 commit: no preimage to check
        keys_checked += 1
        if key_from_doc(kd) != key:
            key_mismatches.append(key)
    header = state["header"]
    schema_ok = bool(header) and header.get("schema") == STORE_SCHEMA
    report = {
        "path": path,
        "bytes": os.path.getsize(path),
        "docs": stats.docs,
        "corrupt": stats.corrupt,
        "crc_checked": stats.crc_checked,
        "crc_missing": stats.crc_missing,
        "torn_tail": stats.torn_tail,
        "schema_ok": schema_ok,
        "profiles": len(state["profiles"]),
        "partial_keys": len(state["partial"]),
        "keys_checked": keys_checked,
        "key_mismatches": key_mismatches,
        "ok": (stats.corrupt == 0 and not key_mismatches and schema_ok),
    }
    return report


def store_stats(path: str) -> Dict[str, object]:
    """Event and liveness counters for one store file (read-only)."""
    if not os.path.exists(path):
        raise CampaignError(f"store {path!r} does not exist")
    state, stats = _scan_state(path)
    live = {k: c for k, c in state["claims"].items() if _claim_live(c)}
    return {
        "path": path,
        "bytes": os.path.getsize(path),
        "docs": stats.docs,
        "corrupt": stats.corrupt,
        "crc_missing": stats.crc_missing,
        "events": state["events"],
        "profiles": len(state["profiles"]),
        "partial_keys": len(state["partial"]),
        "partial_rows": sum(len(v) for v in state["partial"].values()),
        "claims_live": len(live),
        "claims_stale": len(state["claims"]) - len(live),
    }


def compact_store(path: str, *,
                  lock_timeout: Optional[float] = None) -> Dict[str, object]:
    """Rewrite a store to its live content, atomically, under the lock.

    Keeps: one fresh header, the latest profile per key, partial rows
    of keys without a committed profile, and live (unexpired) claims.
    Drops: superseded profiles, rows shadowed by commits, released and
    expired claims, corrupt lines (already quarantined by the scan).
    The new journal is written to a temp file, fsync'd and renamed over
    the old one while holding the exclusive lock, so concurrent stores
    never observe a partial rewrite — their next locked append detects
    the rotated inode and rescans.
    """
    if not os.path.exists(path):
        raise CampaignError(f"store {path!r} does not exist")
    lock = FileLock(path + ".lock", timeout=lock_timeout)
    with lock.exclusive():
        before = os.path.getsize(path)
        state, stats = _scan_state(path, quarantine=QuarantineLog(path))
        header = state["header"]
        if header is None or header.get("schema") != STORE_SCHEMA:
            raise CampaignError(
                f"store {path!r} has no valid header; refusing to compact")
        tmp = path + ".compact.tmp"
        live_claims = {k: c for k, c in state["claims"].items()
                       if _claim_live(c)}
        kept = 0
        with open(tmp, "w", encoding="utf-8") as fh:
            def put(doc: Dict) -> None:
                nonlocal kept
                fh.write(json.dumps(seal_doc(doc)) + "\n")
                kept += 1

            put({"ev": "header", "version": STORE_VERSION,
                 "schema": STORE_SCHEMA})
            for key in sorted(state["profiles"]):
                put(state["profiles"][key])
            for key in sorted(state["partial"]):
                rows = state["partial"][key]
                for (_n, _i) in sorted(rows):
                    put(rows[(_n, _i)])
            for key in sorted(live_claims):
                put(live_claims[key])
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(os.path.dirname(os.path.abspath(path)) or ".")
        after = os.path.getsize(path)
    return {
        "path": path,
        "bytes_before": before,
        "bytes_after": after,
        "docs_before": stats.docs,
        "docs_after": kept,
        "dropped": stats.docs - kept,
        "corrupt_dropped": stats.corrupt,
        "profiles": len(state["profiles"]),
        "partial_keys": len(state["partial"]),
        "claims_kept": len(live_claims),
    }


# ---------------------------------------------------------------------------
# composed results
# ---------------------------------------------------------------------------

@dataclass
class SectionOutcome:
    """One section's contribution to a composed campaign."""

    section: object                 # sections.Section
    profile: SectionProfile
    #: served entirely from a committed store profile
    cached: bool
    #: injections actually executed by *this* run
    simulated: int
    #: journaled rows replayed from a prior interrupted run
    replayed: int


@dataclass
class ComposedResult:
    """Whole-program estimate composed from section profiles."""

    layer: str
    fault_model: str
    dispatch: str
    sections: List[SectionOutcome]
    golden_output: str
    golden_dyn_total: int
    golden_dyn_injectable: int

    @property
    def n_total(self) -> int:
        return sum(s.profile.n for s in self.sections)

    @property
    def simulated(self) -> int:
        return sum(s.simulated for s in self.sections)

    @property
    def replayed(self) -> int:
        return sum(s.replayed for s in self.sections)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.sections if s.cached)

    @property
    def counts(self) -> Dict[Outcome, int]:
        total = {o: 0 for o in Outcome}
        for s in self.sections:
            for o, c in s.profile.counts.items():
                total[o] += c
        return total

    def _weights(self) -> List[float]:
        total = sum(s.profile.site_count for s in self.sections)
        if total == 0:
            return [0.0] * len(self.sections)
        return [s.profile.site_count / total for s in self.sections]

    def summary(self, z: float = DEFAULT_Z) -> Dict[str, object]:
        """Composed rates with confidence intervals.

        Rates are site-weighted compositions ``sum(w_s * k_s / n_s)``
        — the estimate a whole-program uniform campaign converges to —
        with intervals from the per-section binomial variances
        (:func:`repro.fi.stats.composed_interval`).  Sections with
        zero dynamic sites carry zero weight and drop out.  Statically
        pruned draws are benign by construction, so the benign rate
        folds :data:`~repro.fi.outcomes.Outcome.PRUNE_BENIGN` in —
        pruned composed estimates stay bit-identical to unpruned ones.
        """
        weights = self._weights()
        contributing = [
            (w, s) for w, s in zip(weights, self.sections) if w > 0
        ]
        out: Dict[str, object] = {}
        for outcome in (Outcome.SDC, Outcome.DUE, Outcome.DETECTED,
                        Outcome.BENIGN):
            def k_of(s) -> int:
                k = s.profile.counts.get(outcome, 0)
                if outcome is Outcome.BENIGN:
                    k += s.profile.counts.get(Outcome.PRUNE_BENIGN, 0)
                return k

            p, lo, hi = composed_interval(
                [w for w, _ in contributing],
                [k_of(s) for _, s in contributing],
                [s.profile.n for _, s in contributing],
                z=z,
            )
            out[outcome.value] = p
            out[f"{outcome.value}_ci"] = (lo, hi)
        out["pruned"] = self.counts.get(Outcome.PRUNE_BENIGN, 0)
        return out


# ---------------------------------------------------------------------------
# site-map memoization (the warm-path enabler)
# ---------------------------------------------------------------------------

_SITE_MAPS: "weakref.WeakKeyDictionary[object, Dict]" = \
    weakref.WeakKeyDictionary()


def _module_fingerprint(module) -> Tuple[int, int]:
    n = 0
    h = 0
    for fn in module.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                n += 1
                h ^= id(inst) ^ (inst.iid * 0x9E3779B1)
    return n, h


def cached_site_map(built, layer: str, fault_model: str) -> SiteMap:
    """Per-process memo of :func:`repro.fi.sections.map_sites`.

    Keyed by the module object plus the same cheap structural
    fingerprint the decode caches use, so in-place pass mutation
    re-enumerates while repeated plan evaluation over one build (the
    warm path) pays the traced golden run exactly once.
    """
    module = built.module
    fp = _module_fingerprint(module)
    per_module = _SITE_MAPS.get(module)
    if per_module is None:
        per_module = {}
        _SITE_MAPS[module] = per_module
    cached = per_module.get((layer, fault_model))
    if cached is not None and cached[0] == fp:
        return cached[1]
    sm = map_sites(built, layer, fault_model)
    per_module[(layer, fault_model)] = (fp, sm)
    return sm


# ---------------------------------------------------------------------------
# the incremental campaign
# ---------------------------------------------------------------------------

def _allocate(n: int, site_counts: Sequence[int]) -> List[int]:
    """Largest-remainder proportional allocation of ``n`` injections.

    Sections without dynamic sites get zero.  When the budget allows,
    every live section gets at least one injection (stealing from the
    largest allocation) so no composed term degenerates to the
    maximum-variance prior.
    """
    total = sum(site_counts)
    if total == 0:
        raise CampaignError(
            "program has no injectable dynamic sites in any section")
    quotas = [n * c / total for c in site_counts]
    alloc = [int(q) for q in quotas]
    remainders = sorted(
        range(len(quotas)),
        key=lambda i: (alloc[i] - quotas[i], i),
    )
    short = n - sum(alloc)
    for i in remainders[:short]:
        alloc[i] += 1
    live = [i for i, c in enumerate(site_counts) if c > 0]
    if n >= len(live):
        for i in live:
            if alloc[i] == 0:
                donor = max(
                    (j for j in live if alloc[j] > 1),
                    key=lambda j: alloc[j],
                    default=None,
                )
                if donor is None:
                    break
                alloc[donor] -= 1
                alloc[i] += 1
    return alloc


def _draw_section(
    seed: int, n: int, dyn_indices: Sequence[int], fault_model: str,
) -> List[Tuple[int, int]]:
    """Draw ``n`` (global dynamic index, fault coordinate) pairs
    uniformly over one section's dynamic site list."""
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(dyn_indices), size=n)
    bits = rng.integers(0, fault_bit_range(fault_model), size=n)
    return [(dyn_indices[p], int(b))
            for p, b in zip(positions.tolist(), bits.tolist())]


def run_incremental_campaign(
    built,
    layer: str,
    config: CampaignConfig = CampaignConfig(),
    store: Optional[SectionProfileStore] = None,
    *,
    fault_model: Optional[str] = None,
    dispatch: Optional[str] = None,
    observer=None,
    exhaustive_bits: Optional[Sequence[int]] = None,
    site_map: Optional[SiteMap] = None,
    spec=None,
    workers: int = 0,
    policy=None,
) -> ComposedResult:
    """Section-level campaign with store-served cache hits.

    ``config.n_campaigns`` injections are allocated across sections
    proportionally to their dynamic injectable-site counts, each
    section drawing from its own seed-derived RNG stream (so edits
    elsewhere never change this section's samples).  With
    ``exhaustive_bits`` the sampling plan is instead *every* (site,
    bit) pair per section — the statistical-oracle mode the
    equivalence tests compose against whole-program exhaustive
    campaigns.

    ``store=None`` runs storeless (every section simulates).  With
    ``spec`` (a :class:`~repro.fi.resilience.WorkSpec`) and
    ``workers > 1`` the pending injections run under the chunked crash-
    tolerant supervisor; otherwise they run in-process through the
    checkpoint-replay engine.

    Against a *shared* store, sections another live campaign already
    claimed are not re-simulated: after executing and committing its
    own claims, this campaign polls (``coordinate`` phase) for the
    foreign profiles, taking a section over if its claim goes stale or
    the ``REPRO_STORE_WAIT`` budget expires.
    """
    fm = validate_fault_model(fault_model)
    tier = engine_dispatch(dispatch)
    if config.stratify:
        raise CampaignError(
            "stratified sampling replaces the section allocator; use "
            "run_ir_campaign/run_asm_campaign with config.stratify")
    with _phase(observer, "sections", layer=layer):
        sm = site_map or cached_site_map(built, layer, fm)
    protection = _protection_doc(built)
    prune_plan = None
    if config.prune:
        from .prune import build_prune_plan

        with _phase(observer, "prune", layer=layer):
            prune_plan = build_prune_plan(
                layer,
                module=getattr(built, "module", None),
                layout=built.layout,
                program=getattr(built, "compiled", None),
                fault_model=fm)
    max_steps = max(
        config.min_max_steps, sm.golden_dyn_total * config.max_steps_factor
    )
    bits_plan = (tuple(int(b) for b in exhaustive_bits)
                 if exhaustive_bits is not None else None)

    site_counts = sm.site_counts
    if bits_plan is None:
        alloc = _allocate(config.n_campaigns, site_counts)
    else:
        alloc = [c * len(bits_plan) for c in site_counts]

    if store is not None:
        store.refresh()
        if store.degraded and observer is not None:
            observer.degrade("store-private",
                             detail=store.degraded_reason, path=store.path)

    # -- plan: per-section sample lists, cache lookups, claims, resume --
    keys: List[str] = []
    key_docs: List[Dict] = []
    plans: List[List[Tuple[int, int]]] = []      # (dyn index, bit) per section
    outcomes: List[Optional[SectionOutcome]] = [None] * len(sm.sections)
    # pending execution: flat (tag, idx, bit) with tag -> (section, i)
    flat_samples: List[Tuple[Tuple[int, int], int, int]] = []
    replayed_rows: Dict[int, Dict[int, Tuple]] = {}
    live_rows: Dict[int, Dict[int, Tuple]] = {}
    waiting: List[int] = []          # positions parked behind foreign claims
    total_counts: Dict[Outcome, int] = {o: 0 for o in Outcome}

    def serve_cached(pos: int, sec, cached: SectionProfile) -> None:
        outcomes[pos] = SectionOutcome(
            section=sec, profile=cached, cached=True,
            simulated=0, replayed=0,
        )
        for o, c in cached.counts.items():
            total_counts[o] += c

    def statically_benign_row(idx: int, bit: int) -> Tuple:
        if layer == "asm":
            pc = prune_plan.static_id(idx)
            inst = built.compiled.inst_at(pc)
            return pruned_row(
                "asm", idx, bit, sm.golden_output, pc, fm,
                asm_role=inst.role, asm_opcode=inst.opcode,
                iid=inst.prov_iid)
        return pruned_row("ir", idx, bit, sm.golden_output,
                          prune_plan.static_id(idx), fm)

    def stage_for_execution(pos: int) -> None:
        """Queue the section's unserved samples for simulation.

        Statically-benign draws short-circuit here: their rows go
        straight into the section's live set (and the store, so a
        resumed run replays them like executed rows) without ever
        reaching the simulator.
        """
        key = keys[pos]
        samples = plans[pos]
        done = (store.partial_rows(key, len(samples))
                if store is not None else {})
        replayed_rows[pos] = {i: r for i, r in done.items()
                              if i < len(samples)}
        live_rows.setdefault(pos, {})
        for i, (idx, bit) in enumerate(samples):
            if i in replayed_rows[pos]:
                continue
            if prune_plan is not None and prune_plan.is_benign(idx, bit):
                row = statically_benign_row(idx, bit)
                if store is not None:
                    store.record_row(key, len(samples), i, row)
                live_rows[pos][i] = row
            else:
                flat_samples.append(((pos, i), idx, bit))

    for sec in sm.sections:
        pos = sec.index
        key_doc = profile_key_doc(
            sec, sm, dispatch=tier, protection=protection,
            seed=config.seed, exhaustive_bits=bits_plan,
            prune=config.prune,
        )
        key = key_from_doc(key_doc)
        keys.append(key)
        key_docs.append(key_doc)
        if bits_plan is None:
            samples = (
                _draw_section(_section_seed(config.seed, sec, fm),
                              alloc[pos], sm.dyn_indices[pos], fm)
                if alloc[pos] > 0 and site_counts[pos] > 0 else []
            )
        else:
            samples = [(dyn, b)
                       for dyn in sm.dyn_indices[pos] for b in bits_plan]
        plans.append(samples)
        cached = store.get(key) if store is not None else None
        # a cached profile with at least as many samples as this plan
        # wants is at least as precise — serve it (sample counts float
        # with the whole program's site totals, so demanding an exact
        # match would evict every unchanged section on any edit)
        if cached is not None and cached.n >= len(samples):
            serve_cached(pos, sec, cached)
            continue
        if store is not None and samples:
            status = store.try_claim(key, len(samples))
            if status == "served":
                cached = store.get(key)
                if cached is not None and cached.n >= len(samples):
                    serve_cached(pos, sec, cached)
                    continue
                # a racing commit of a smaller plan: simulate after all
            elif status == "busy":
                waiting.append(pos)
                continue
        stage_for_execution(pos)

    # -- execute whatever the store could not serve ---------------------

    def execute_flat(flat: List[Tuple[Tuple[int, int], int, int]],
                     *, supervised_ok: bool) -> None:
        if not flat:
            return
        with _phase(observer, "inject", layer=layer, n=len(flat)):
            if supervised_ok and workers > 1 and spec is not None:
                from .resilience import run_supervised

                tag_of = {}
                supervised = []
                for orig, (tag, idx, bit) in enumerate(flat):
                    tag_of[orig] = tag
                    supervised.append((orig, idx, bit))
                # index-sorted chunks keep each chunk's golden replay
                # window narrow (same trick as run_parallel_campaign)
                supervised.sort(key=lambda s: (s[1], s[0]))

                class _StoreJournal:
                    """Duck-typed journal: routes supervisor rows into
                    the section store under their profile keys."""

                    def record(self, orig: int, row: Tuple) -> None:
                        pos, i = tag_of[orig]
                        if store is not None:
                            store.record_row(keys[pos], len(plans[pos]),
                                             i, row)
                        live_rows[pos][i] = tuple(row)

                run_supervised(
                    spec, supervised, max_steps, workers=workers,
                    policy=policy, observer=observer,
                    journal=_StoreJournal(), built=built,
                )
            else:
                def emit(tag, res):
                    pos, i = tag
                    idx, bit = plans[pos][i]
                    row = _row_from_result(layer, idx, bit, res, fm)
                    if store is not None:
                        store.record_row(keys[pos], len(plans[pos]),
                                         i, row)
                    live_rows[pos][i] = row

                run_injection_suite(
                    layer,
                    flat,
                    max_steps,
                    module=getattr(built, "module", None),
                    layout=built.layout,
                    program=getattr(built, "compiled", None),
                    emit=emit,
                    dispatch=tier,
                    fault_model=fm,
                )

    def finalize_section(sec) -> None:
        """Aggregate one executed section's rows and commit its profile."""
        pos = sec.index
        counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
        replay = replayed_rows.get(pos, {})
        fresh = live_rows.get(pos, {})
        n_planned = len(plans[pos])
        missing = [i for i in range(n_planned)
                   if i not in replay and i not in fresh]
        if missing:
            raise CampaignError(
                f"section {sec.name!r} lost {len(missing)} samples "
                f"(e.g. #{missing[0]}); store and execution disagree")
        statically_resolved = 0
        for i in range(n_planned):
            row = replay.get(i) or fresh[i]
            outcome, _rec = record_from_row(row, sm.golden_output)
            counts[outcome] += 1
            if i in fresh and outcome is Outcome.PRUNE_BENIGN:
                statically_resolved += 1
        profile = SectionProfile(
            key=keys[pos],
            name=sec.name,
            content_hash=sec.content_hash,
            n=n_planned,
            counts=counts,
            site_count=site_counts[pos],
        )
        if store is not None:
            store.commit_profile(profile, key_doc=key_docs[pos])
        outcomes[pos] = SectionOutcome(
            section=sec, profile=profile, cached=False,
            simulated=len(fresh) - statically_resolved,
            replayed=len(replay),
        )
        for o, c in counts.items():
            total_counts[o] += c

    try:
        execute_flat(flat_samples, supervised_ok=True)

        # -- aggregate + commit our own sections ------------------------
        for sec in sm.sections:
            if outcomes[sec.index] is None and sec.index not in waiting:
                finalize_section(sec)

        # -- coordinate: wait for foreign claims, take over stale ones --
        if waiting:
            deadline = time.monotonic() + _env_float(
                _WAIT_BUDGET_ENV, DEFAULT_WAIT_BUDGET)
            poll = 0.02
            with _phase(observer, "coordinate", layer=layer,
                        waiting=len(waiting)):
                while waiting:
                    store.refresh()
                    takeover: List[int] = []
                    for pos in list(waiting):
                        sec = sm.sections[pos]
                        cached = store.get(keys[pos])
                        if cached is not None and \
                                cached.n >= len(plans[pos]):
                            waiting.remove(pos)
                            serve_cached(pos, sec, cached)
                            continue
                        expired = time.monotonic() >= deadline
                        if store.degraded or expired or \
                                store.claim_of(keys[pos]) is None:
                            # owner gone (stale claim), store gone, or
                            # we are done being polite: take it over
                            status = (store.try_claim(
                                keys[pos], len(plans[pos]))
                                if not store.degraded else "mine")
                            if status == "served":
                                cached = store.get(keys[pos])
                                if cached is not None and \
                                        cached.n >= len(plans[pos]):
                                    waiting.remove(pos)
                                    serve_cached(pos, sec, cached)
                                    continue
                            if status != "busy" or expired:
                                waiting.remove(pos)
                                takeover.append(pos)
                    if takeover:
                        flat: List[Tuple[Tuple[int, int], int, int]] = []
                        before = len(flat_samples)
                        for pos in takeover:
                            stage_for_execution(pos)
                        flat = flat_samples[before:]
                        execute_flat(flat, supervised_ok=False)
                        for pos in takeover:
                            finalize_section(sm.sections[pos])
                    if waiting:
                        time.sleep(poll)
                        poll = min(poll * 2, 0.25)
    finally:
        if store is not None:
            store.release_all()

    _record_outcomes(observer, layer, total_counts)
    return ComposedResult(
        layer=layer,
        fault_model=fm,
        dispatch=tier,
        sections=[s for s in outcomes if s is not None],
        golden_output=sm.golden_output,
        golden_dyn_total=sm.golden_dyn_total,
        golden_dyn_injectable=sm.golden_dyn_injectable,
    )
