"""Compositional incremental campaigns over a section-profile store.

The whole-program campaign (:mod:`repro.fi.campaign`) answers "what is
this program's SDC rate" by re-injecting the entire program.  This
module answers the same question *compositionally* (FastFlip, DESIGN
§15): partition the program into sections (:mod:`repro.fi.sections`),
run one injection sub-campaign per section through the checkpoint-
replay engine, and compose the per-section SDC/DUE/detected profiles —
weighted by each section's share of the dynamic injectable-site space —
into whole-program estimates with confidence intervals
(:mod:`repro.fi.stats`).

Each section profile is cached in a :class:`SectionProfileStore`, an
append-only fsync'd JSONL journal in the style of
:class:`repro.fi.resilience.InjectionJournal`, keyed by a content hash
over (section code, layer, dispatch tier, fault model, execution
environment, dynamic signature, protection config, sampling plan).
Re-running an unchanged program is therefore pure cache hits — zero
simulated injections — and editing one function (or flipping one
function's protection) re-simulates only the sections whose hashes
changed.  A killed run resumes bit-identically: every classified
injection was fsync'd as a row before the profile commit, so the next
run replays journaled rows and simulates only the remainder.

**Approximation contract.** For an unchanged program the composed
result is exact (the per-section oracle test proves outcome counts
bit-match an exhaustive whole-program campaign).  After an edit, reused
profiles of *unchanged* sections carry the FastFlip independence
approximation: the section's injections were classified against the
old program's golden output and executed in its context.  The dynamic
signature in the key rejects reuse whenever the edit changed the
section's dynamic site profile, which catches the common cross-section
couplings (trip counts, call counts); residual error is the documented
cost of not re-simulating the world.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CampaignError
from .campaign import CampaignConfig, _phase, _record_outcomes
from .engine import engine_dispatch, run_injection_suite
from .outcomes import Outcome
from .resilience import ROW_FIELDS, _row_from_result, record_from_row
from .sections import SiteMap, map_sites
from .stats import DEFAULT_Z, composed_interval
from ..faultmodel import fault_bit_range, validate_fault_model

__all__ = [
    "STORE_SCHEMA",
    "SectionProfile",
    "SectionProfileStore",
    "SectionOutcome",
    "ComposedResult",
    "profile_key",
    "run_incremental_campaign",
    "cached_site_map",
]

#: bump when the store document layout changes (JOURNAL_VERSION-style)
STORE_SCHEMA = "section-profile/1"
STORE_VERSION = 1


# ---------------------------------------------------------------------------
# profile identity
# ---------------------------------------------------------------------------

def _protection_doc(built) -> Dict:
    """Protection configuration of a built program, canonically.

    The section content hash already encodes the protected code; this
    doc is the belt-and-braces identity the ISSUE's key demands (and
    what makes store files self-describing).
    """
    doc: Dict = {}
    prot = getattr(built, "protection", None)
    if prot is not None:
        doc["level"] = prot.level
        if getattr(prot, "flowery", False):
            doc["flowery"] = True
    if getattr(built, "cfc_info", None) is not None:
        doc["cfc"] = True
    return doc


def profile_key(
    section,
    site_map: SiteMap,
    *,
    dispatch: str,
    protection: Dict,
    seed: int,
    exhaustive_bits: Optional[Tuple[int, ...]] = None,
) -> str:
    """Content hash identifying one cached section profile.

    Two lookups share a key iff the section's code, execution layer,
    replay tier, fault model, environment (globals), dynamic site
    profile, protection config and sampling *stream* (the seed, or the
    exhaustive bit plan) all match.  The per-run sample *count* is
    deliberately NOT part of the key: it is derived from the whole
    program's site totals, so baking it in would invalidate every
    unchanged section whenever any other section was edited.  A cached
    profile is served when it holds at least as many samples as the
    current plan asks for (it is at least as precise); a plan that
    needs more samples re-simulates the section and commits the larger
    profile over the old one.
    """
    doc = {
        "schema": STORE_SCHEMA,
        "content": section.content_hash,
        "layer": section.layer,
        "dispatch": dispatch,
        "fault_model": site_map.fault_model,
        "env": site_map.env_hash,
        "dyn_sig": site_map.dyn_signatures[section.index],
        "protection": protection,
    }
    if exhaustive_bits is not None:
        doc["exhaustive_bits"] = list(exhaustive_bits)
    else:
        doc["seed"] = seed
    canon = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


def _section_seed(seed: int, section, fault_model: str) -> int:
    """Deterministic per-section RNG stream, independent of every other
    section (so an edit elsewhere never perturbs this section's draw)."""
    digest = hashlib.sha256(
        f"{seed}|{section.layer}|{fault_model}|{section.content_hash}"
        .encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------

@dataclass
class SectionProfile:
    """Aggregated sub-campaign outcome for one section."""

    key: str
    name: str
    content_hash: str
    n: int
    counts: Dict[Outcome, int]
    #: dynamic injectable sites the section owned at profiling time
    site_count: int

    def to_doc(self) -> Dict:
        return {
            "name": self.name,
            "content": self.content_hash,
            "n": self.n,
            "counts": {o.value: c for o, c in self.counts.items() if c},
            "sites": self.site_count,
        }

    @classmethod
    def from_doc(cls, key: str, doc: Dict) -> "SectionProfile":
        return cls(
            key=key,
            name=doc["name"],
            content_hash=doc["content"],
            n=doc["n"],
            counts={o: doc["counts"].get(o.value, 0) for o in Outcome},
            site_count=doc["sites"],
        )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class SectionProfileStore:
    """Journal-backed content-addressed section-profile cache.

    Schema (one JSON object per line; shared by many campaigns)::

        {"ev": "header", "version": 1, "schema": "section-profile/1"}
        {"ev": "row", "k": <profile key>, "n": <plan sample count>,
         "i": <local sample index>,
         "row": [idx, bit, status, output, iid, asm_index, asm_role,
                 asm_opcode, trap_kind, fault_model]}
        {"ev": "profile", "k": <profile key>, "profile": {...}}

    Rows are fsync'd per append (the InjectionJournal discipline), so a
    ``SIGKILL`` at any point leaves all fully classified injections on
    disk plus at most one torn trailing line, which the loader
    discards.  A ``profile`` line marks the section complete; rows
    without one are a partial sub-campaign the next run resumes.  Rows
    carry the plan's sample count because the seed-derived draw is a
    single RNG stream per (section, seed): the i-th sample of an
    n=30 plan and of an n=40 plan differ, so rows only replay into a
    plan of the same size.  Profile lines are latest-wins — committing
    a larger re-simulated profile supersedes the old one.
    """

    def __init__(self, path: str):
        self.path = path
        self.profiles: Dict[str, SectionProfile] = {}
        #: partial (uncommitted) rows: key -> {(plan n, local i): row}
        self.partial: Dict[str, Dict[Tuple[int, int], Tuple]] = {}
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if exists:
            self._load()
        else:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        if not exists:
            self._append({
                "ev": "header", "version": STORE_VERSION,
                "schema": STORE_SCHEMA,
            })

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            header_seen = False
            for line in fh:
                if not line.endswith("\n"):
                    break               # torn tail of a killed writer
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    break
                ev = doc.get("ev")
                if ev == "header":
                    if doc.get("schema") != STORE_SCHEMA:
                        raise CampaignError(
                            f"store {self.path!r} has schema "
                            f"{doc.get('schema')!r}, expected "
                            f"{STORE_SCHEMA!r}")
                    header_seen = True
                elif ev == "row":
                    row = doc.get("row")
                    if isinstance(doc.get("i"), int) and \
                            isinstance(doc.get("n"), int) and \
                            isinstance(row, list) and \
                            len(row) == len(ROW_FIELDS):
                        self.partial.setdefault(
                            doc["k"], {})[(doc["n"], doc["i"])] = tuple(row)
                elif ev == "profile":
                    try:
                        self.profiles[doc["k"]] = SectionProfile.from_doc(
                            doc["k"], doc["profile"])
                    except (KeyError, TypeError):
                        continue        # malformed entry: treat as absent
                    self.partial.pop(doc["k"], None)
            if not header_seen:
                raise CampaignError(
                    f"store {self.path!r} has no readable header")

    def _append(self, doc: Dict) -> None:
        self._fh.write(json.dumps(doc) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def get(self, key: str) -> Optional[SectionProfile]:
        return self.profiles.get(key)

    def partial_rows(self, key: str, n: int) -> Dict[int, Tuple]:
        """Journaled rows for ``key`` drawn under a plan of size ``n``."""
        return {i: row
                for (rn, i), row in self.partial.get(key, {}).items()
                if rn == n}

    def record_row(self, key: str, n: int, i: int, row: Tuple) -> None:
        """Durably checkpoint one classified injection."""
        self._append({"ev": "row", "k": key, "n": n, "i": i,
                      "row": list(row)})
        self.partial.setdefault(key, {})[(n, i)] = tuple(row)

    def commit_profile(self, profile: SectionProfile) -> None:
        """Mark one section's sub-campaign complete."""
        self._append({"ev": "profile", "k": profile.key,
                      "profile": profile.to_doc()})
        self.profiles[profile.key] = profile
        self.partial.pop(profile.key, None)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SectionProfileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# composed results
# ---------------------------------------------------------------------------

@dataclass
class SectionOutcome:
    """One section's contribution to a composed campaign."""

    section: object                 # sections.Section
    profile: SectionProfile
    #: served entirely from a committed store profile
    cached: bool
    #: injections actually executed by *this* run
    simulated: int
    #: journaled rows replayed from a prior interrupted run
    replayed: int


@dataclass
class ComposedResult:
    """Whole-program estimate composed from section profiles."""

    layer: str
    fault_model: str
    dispatch: str
    sections: List[SectionOutcome]
    golden_output: str
    golden_dyn_total: int
    golden_dyn_injectable: int

    @property
    def n_total(self) -> int:
        return sum(s.profile.n for s in self.sections)

    @property
    def simulated(self) -> int:
        return sum(s.simulated for s in self.sections)

    @property
    def replayed(self) -> int:
        return sum(s.replayed for s in self.sections)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.sections if s.cached)

    @property
    def counts(self) -> Dict[Outcome, int]:
        total = {o: 0 for o in Outcome}
        for s in self.sections:
            for o, c in s.profile.counts.items():
                total[o] += c
        return total

    def _weights(self) -> List[float]:
        total = sum(s.profile.site_count for s in self.sections)
        if total == 0:
            return [0.0] * len(self.sections)
        return [s.profile.site_count / total for s in self.sections]

    def summary(self, z: float = DEFAULT_Z) -> Dict[str, object]:
        """Composed rates with confidence intervals.

        Rates are site-weighted compositions ``sum(w_s * k_s / n_s)``
        — the estimate a whole-program uniform campaign converges to —
        with intervals from the per-section binomial variances
        (:func:`repro.fi.stats.composed_interval`).  Sections with
        zero dynamic sites carry zero weight and drop out.
        """
        weights = self._weights()
        contributing = [
            (w, s) for w, s in zip(weights, self.sections) if w > 0
        ]
        out: Dict[str, object] = {}
        for outcome in (Outcome.SDC, Outcome.DUE, Outcome.DETECTED,
                        Outcome.BENIGN):
            p, lo, hi = composed_interval(
                [w for w, _ in contributing],
                [s.profile.counts.get(outcome, 0) for _, s in contributing],
                [s.profile.n for _, s in contributing],
                z=z,
            )
            out[outcome.value] = p
            out[f"{outcome.value}_ci"] = (lo, hi)
        return out


# ---------------------------------------------------------------------------
# site-map memoization (the warm-path enabler)
# ---------------------------------------------------------------------------

_SITE_MAPS: "weakref.WeakKeyDictionary[object, Dict]" = \
    weakref.WeakKeyDictionary()


def _module_fingerprint(module) -> Tuple[int, int]:
    n = 0
    h = 0
    for fn in module.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                n += 1
                h ^= id(inst) ^ (inst.iid * 0x9E3779B1)
    return n, h


def cached_site_map(built, layer: str, fault_model: str) -> SiteMap:
    """Per-process memo of :func:`repro.fi.sections.map_sites`.

    Keyed by the module object plus the same cheap structural
    fingerprint the decode caches use, so in-place pass mutation
    re-enumerates while repeated plan evaluation over one build (the
    warm path) pays the traced golden run exactly once.
    """
    module = built.module
    fp = _module_fingerprint(module)
    per_module = _SITE_MAPS.get(module)
    if per_module is None:
        per_module = {}
        _SITE_MAPS[module] = per_module
    cached = per_module.get((layer, fault_model))
    if cached is not None and cached[0] == fp:
        return cached[1]
    sm = map_sites(built, layer, fault_model)
    per_module[(layer, fault_model)] = (fp, sm)
    return sm


# ---------------------------------------------------------------------------
# the incremental campaign
# ---------------------------------------------------------------------------

def _allocate(n: int, site_counts: Sequence[int]) -> List[int]:
    """Largest-remainder proportional allocation of ``n`` injections.

    Sections without dynamic sites get zero.  When the budget allows,
    every live section gets at least one injection (stealing from the
    largest allocation) so no composed term degenerates to the
    maximum-variance prior.
    """
    total = sum(site_counts)
    if total == 0:
        raise CampaignError(
            "program has no injectable dynamic sites in any section")
    quotas = [n * c / total for c in site_counts]
    alloc = [int(q) for q in quotas]
    remainders = sorted(
        range(len(quotas)),
        key=lambda i: (alloc[i] - quotas[i], i),
    )
    short = n - sum(alloc)
    for i in remainders[:short]:
        alloc[i] += 1
    live = [i for i, c in enumerate(site_counts) if c > 0]
    if n >= len(live):
        for i in live:
            if alloc[i] == 0:
                donor = max(
                    (j for j in live if alloc[j] > 1),
                    key=lambda j: alloc[j],
                    default=None,
                )
                if donor is None:
                    break
                alloc[donor] -= 1
                alloc[i] += 1
    return alloc


def _draw_section(
    seed: int, n: int, dyn_indices: Sequence[int], fault_model: str,
) -> List[Tuple[int, int]]:
    """Draw ``n`` (global dynamic index, fault coordinate) pairs
    uniformly over one section's dynamic site list."""
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(dyn_indices), size=n)
    bits = rng.integers(0, fault_bit_range(fault_model), size=n)
    return [(dyn_indices[p], int(b))
            for p, b in zip(positions.tolist(), bits.tolist())]


def run_incremental_campaign(
    built,
    layer: str,
    config: CampaignConfig = CampaignConfig(),
    store: Optional[SectionProfileStore] = None,
    *,
    fault_model: Optional[str] = None,
    dispatch: Optional[str] = None,
    observer=None,
    exhaustive_bits: Optional[Sequence[int]] = None,
    site_map: Optional[SiteMap] = None,
    spec=None,
    workers: int = 0,
    policy=None,
) -> ComposedResult:
    """Section-level campaign with store-served cache hits.

    ``config.n_campaigns`` injections are allocated across sections
    proportionally to their dynamic injectable-site counts, each
    section drawing from its own seed-derived RNG stream (so edits
    elsewhere never change this section's samples).  With
    ``exhaustive_bits`` the sampling plan is instead *every* (site,
    bit) pair per section — the statistical-oracle mode the
    equivalence tests compose against whole-program exhaustive
    campaigns.

    ``store=None`` runs storeless (every section simulates).  With
    ``spec`` (a :class:`~repro.fi.resilience.WorkSpec`) and
    ``workers > 1`` the pending injections run under the chunked crash-
    tolerant supervisor; otherwise they run in-process through the
    checkpoint-replay engine.
    """
    fm = validate_fault_model(fault_model)
    tier = engine_dispatch(dispatch)
    with _phase(observer, "sections", layer=layer):
        sm = site_map or cached_site_map(built, layer, fm)
    protection = _protection_doc(built)
    max_steps = max(
        config.min_max_steps, sm.golden_dyn_total * config.max_steps_factor
    )
    bits_plan = (tuple(int(b) for b in exhaustive_bits)
                 if exhaustive_bits is not None else None)

    site_counts = sm.site_counts
    if bits_plan is None:
        alloc = _allocate(config.n_campaigns, site_counts)
    else:
        alloc = [c * len(bits_plan) for c in site_counts]

    # -- plan: per-section sample lists, cache lookups, resume ----------
    keys: List[str] = []
    plans: List[List[Tuple[int, int]]] = []      # (dyn index, bit) per section
    outcomes: List[Optional[SectionOutcome]] = [None] * len(sm.sections)
    # pending execution: flat (tag, idx, bit) with tag -> (section, i)
    flat_samples: List[Tuple[Tuple[int, int], int, int]] = []
    replayed_rows: Dict[int, Dict[int, Tuple]] = {}
    for sec in sm.sections:
        pos = sec.index
        key = profile_key(
            sec, sm, dispatch=tier, protection=protection,
            seed=config.seed, exhaustive_bits=bits_plan,
        )
        keys.append(key)
        if bits_plan is None:
            samples = (
                _draw_section(_section_seed(config.seed, sec, fm),
                              alloc[pos], sm.dyn_indices[pos], fm)
                if alloc[pos] > 0 and site_counts[pos] > 0 else []
            )
        else:
            samples = [(dyn, b)
                       for dyn in sm.dyn_indices[pos] for b in bits_plan]
        plans.append(samples)
        cached = store.get(key) if store is not None else None
        # a cached profile with at least as many samples as this plan
        # wants is at least as precise — serve it (sample counts float
        # with the whole program's site totals, so demanding an exact
        # match would evict every unchanged section on any edit)
        if cached is not None and cached.n >= len(samples):
            outcomes[pos] = SectionOutcome(
                section=sec, profile=cached, cached=True,
                simulated=0, replayed=0,
            )
            continue
        done = (store.partial_rows(key, len(samples))
                if store is not None else {})
        replayed_rows[pos] = {i: r for i, r in done.items()
                              if i < len(samples)}
        for i, (idx, bit) in enumerate(samples):
            if i not in replayed_rows[pos]:
                flat_samples.append(((pos, i), idx, bit))

    # -- execute whatever the store could not serve ---------------------
    live_rows: Dict[int, Dict[int, Tuple]] = {
        pos: {} for pos in replayed_rows
    }

    if flat_samples:
        with _phase(observer, "inject", layer=layer, n=len(flat_samples)):
            if workers > 1 and spec is not None:
                from .resilience import run_supervised

                tag_of = {}
                supervised = []
                for orig, (tag, idx, bit) in enumerate(flat_samples):
                    tag_of[orig] = tag
                    supervised.append((orig, idx, bit))
                # index-sorted chunks keep each chunk's golden replay
                # window narrow (same trick as run_parallel_campaign)
                supervised.sort(key=lambda s: (s[1], s[0]))

                class _StoreJournal:
                    """Duck-typed journal: routes supervisor rows into
                    the section store under their profile keys."""

                    def record(self, orig: int, row: Tuple) -> None:
                        pos, i = tag_of[orig]
                        if store is not None:
                            store.record_row(keys[pos], len(plans[pos]),
                                             i, row)
                        live_rows[pos][i] = tuple(row)

                run_supervised(
                    spec, supervised, max_steps, workers=workers,
                    policy=policy, observer=observer,
                    journal=_StoreJournal(), built=built,
                )
            else:
                def emit(tag, res):
                    pos, i = tag
                    idx, bit = plans[pos][i]
                    row = _row_from_result(layer, idx, bit, res, fm)
                    if store is not None:
                        store.record_row(keys[pos], len(plans[pos]),
                                         i, row)
                    live_rows[pos][i] = row

                run_injection_suite(
                    layer,
                    flat_samples,
                    max_steps,
                    module=getattr(built, "module", None),
                    layout=built.layout,
                    program=getattr(built, "compiled", None),
                    emit=emit,
                    dispatch=tier,
                    fault_model=fm,
                )

    # -- aggregate + commit ---------------------------------------------
    total_counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    for sec in sm.sections:
        pos = sec.index
        if outcomes[pos] is not None:          # cache hit
            for o, c in outcomes[pos].profile.counts.items():
                total_counts[o] += c
            continue
        counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
        replay = replayed_rows.get(pos, {})
        fresh = live_rows.get(pos, {})
        n_planned = len(plans[pos])
        missing = [i for i in range(n_planned)
                   if i not in replay and i not in fresh]
        if missing:
            raise CampaignError(
                f"section {sec.name!r} lost {len(missing)} samples "
                f"(e.g. #{missing[0]}); store and execution disagree")
        for i in range(n_planned):
            row = replay.get(i) or fresh[i]
            outcome, _rec = record_from_row(row, sm.golden_output)
            counts[outcome] += 1
        profile = SectionProfile(
            key=keys[pos],
            name=sec.name,
            content_hash=sec.content_hash,
            n=n_planned,
            counts=counts,
            site_count=site_counts[pos],
        )
        if store is not None:
            store.commit_profile(profile)
        outcomes[pos] = SectionOutcome(
            section=sec, profile=profile, cached=False,
            simulated=len(fresh), replayed=len(replay),
        )
        for o, c in counts.items():
            total_counts[o] += c

    _record_outcomes(observer, layer, total_counts)
    return ComposedResult(
        layer=layer,
        fault_model=fm,
        dispatch=tier,
        sections=[s for s in outcomes if s is not None],
        golden_output=sm.golden_output,
        golden_dyn_total=sm.golden_dyn_total,
        golden_dyn_injectable=sm.golden_dyn_injectable,
    )
