"""Bit-level liveness / mask dataflow over both execution layers.

BEC-style static pruning (PAPERS.md): most injected bit flips are
provably benign because the flipped bit is *dead* (the destination is
never read again before being overwritten), *masked* (an ``and``/
shift/truncation/narrow store discards it before any observable use),
or lands in a value whose every observable use is a checker compare
(in which case the flip is detected, not silent — and therefore still
**not** Benign: the oracle contract is bit-identical output).

This module computes, per static injection site, the set of fault
*coordinates* (the ``bit`` values a campaign draws in
``[0, fault_bit_range)``) whose flip provably cannot change program
behaviour — status, trap kind, and output all identical to golden.
Soundness is the only hard requirement; precision is best-effort.
``tests/test_bitlive_oracle.py`` enforces the contract exhaustively on
generated programs, and :mod:`repro.testgen.mutants` carries weakened
variants of the transfer functions that the oracle must kill.

Two layer-specific analyses share one report shape:

* **IR** (:func:`analyze_ir`) — a backward observed-bits pass over the
  SSA def-use graph of each function.  A value's *observed mask* is the
  union over its uses of the bits that can influence anything
  observable (memory, control flow, calls, traps, output).  Transfer
  functions follow :data:`repro.ir.instructions.BIT_SEMANTICS`: bitwise
  ops propagate per-bit, constant ``and``/``or`` masks drop forced
  bits, shifts translate the mask, ``add``/``sub``/``mul`` close over
  carry propagation (a low bit can flip every higher bit), and
  division/compares/calls/stores observe operands fully.  Values with
  no bit model (floats, pointers used as data) are fully observed.

* **asm** (:func:`analyze_asm`) — a classic backward liveness fixpoint
  over the uop CFG, at bit granularity for GPRs and flag granularity
  for the five-flag word (:data:`repro.machine.machine.FLAG_BITS`),
  with conditional-code read sets from
  :data:`repro.backend.isa.CC_READS`.  Calls and returns are
  everything-live boundaries; runtime print calls read ``rdi``;
  ``ud2``/``__detect`` terminate unconditionally, so nothing is live
  across them.  XMM destinations are conservatively never benign.

The dataflow facts double as the stratification signal: every site is
classified ``protected`` (checker/shadow provenance — a flip there is
caught or harmless before it can reach output), ``unknown`` (no bit
model: XMM/float/pointer payloads), or ``live``.  Stratified sampling
(:mod:`repro.fi.prune`) is unbiased for *any* partition, so the class
labels carry no soundness burden — only the benign masks do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..backend.isa import CC_READS, Role
from ..faultmodel import validate_fault_model
from ..ir.instructions import BIT_SEMANTICS, Instruction
from ..machine.machine import FLAG_BITS
from ..utils import bits

__all__ = [
    "BitliveConfig",
    "BitliveReport",
    "WEAKENINGS",
    "analyze",
    "analyze_ir",
    "analyze_asm",
]

_M64 = (1 << 64) - 1
_SIGN = 1 << 63
_ALL_FLAGS = 31

#: documented analysis weakenings, exercised by the mutation harness —
#: each names a hook below that :mod:`repro.testgen.mutants` patches
WEAKENINGS = (
    "masked-high-dead",      # drop carry closure on add/sub/mul
    "ignore-call-clobbers",  # calls/returns no longer all-live boundaries
    "flags-always-dead",     # condition codes read no flags
    "skip-checker-shadow",   # checker compares observe nothing
)


# ---------------------------------------------------------------------------
# patchable transfer hooks (the mutation surface)
# ---------------------------------------------------------------------------

def _carry_close(m: int) -> int:
    """Bits an operand can influence through carry-propagating
    arithmetic when ``m`` result bits are observed: everything at or
    below the highest observed bit."""
    return (1 << m.bit_length()) - 1 if m else 0


def _call_boundary() -> Optional[int]:
    """Liveness at a call/return boundary.  ``None`` means *everything
    is live* (the sound default: callee/caller behaviour is opaque)."""
    return None


def _cc_reads(cc: str) -> int:
    """Flag mask a condition code reads (zf=1, sf=2, of=4, cf=8, uf=16)."""
    m = 0
    for name in CC_READS[cc]:
        m |= FLAG_BITS[name]
    return m


def _checker_observes(user: Instruction) -> bool:
    """Does a compare instruction observe its operands?  Always true in
    the sound analysis: a checker compare that sees a flipped shadow
    raises a detection, which is *not* a benign outcome.  The
    ``skip-checker-shadow`` weakening returns False for checker
    compares, classifying checker-shadowed bits Benign — unsound, and
    killed by the exhaustive oracle."""
    return True


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

@dataclass
class BitliveReport:
    """Per-static-site benign fault coordinates for one (layer, model).

    ``benign`` maps static id (IR iid / asm pc) to a 64-bit mask over
    the campaign's fault-coordinate space: bit ``b`` set means drawing
    ``bit=b`` at that site is provably benign.  Sites absent from the
    map have no benign coordinates.  ``site_class`` labels every
    injectable static site for stratification.
    """

    layer: str
    fault_model: str
    #: static id -> benign coordinate mask (over drawn ``bit`` values)
    benign: Dict[int, int] = field(default_factory=dict)
    #: static id -> 'protected' | 'live' | 'unknown'
    site_class: Dict[int, str] = field(default_factory=dict)
    #: static id -> dead/masked destination bits in width space (debug)
    dead_bits: Dict[int, int] = field(default_factory=dict)

    def benign_pair(self, static_id: int, bit: int) -> bool:
        m = self.benign.get(static_id)
        return bool(m is not None and (m >> (bit & 63)) & 1)

    def benign_coords(self, static_id: int) -> List[int]:
        m = self.benign.get(static_id, 0)
        return [b for b in range(64) if (m >> b) & 1]

    def stats(self) -> Dict[str, object]:
        sites = len(self.site_class)
        with_benign = sum(1 for m in self.benign.values() if m)
        coords = sum(bin(m).count("1") for m in self.benign.values())
        classes: Dict[str, int] = {}
        for c in self.site_class.values():
            classes[c] = classes.get(c, 0) + 1
        return {
            "layer": self.layer,
            "fault_model": self.fault_model,
            "sites": sites,
            "sites_with_benign": with_benign,
            "benign_coords": coords,
            "benign_fraction": coords / (64 * sites) if sites else 0.0,
            "classes": classes,
        }


@dataclass(frozen=True)
class BitliveConfig:
    """Analysis configuration.  ``enabled=False`` yields an empty
    report (no pruning, uniform behaviour); the flag exists so the
    pruning switch can participate in journal specs and profile keys
    as one canonical document (:func:`config_doc`)."""

    enabled: bool = True

    def doc(self) -> Dict[str, object]:
        return {"bitlive": 1, "enabled": bool(self.enabled)}


def _width_of(ty) -> Optional[int]:
    """Bit width of a value's flip space, or None when the type has no
    sound bit model here (floats: any mantissa/exponent flip can change
    printed output; pointers: addresses feed trap checks)."""
    if ty.is_integer:
        return ty.bits
    return None


def _coord_mask(dead: int, width: int, fault_model: str,
                dead_flags: int = _ALL_FLAGS) -> int:
    """Width-space dead mask -> benign mask over drawn coordinates.

    A drawn coordinate ``b`` flips bit ``b % width`` (SEU) or the
    adjacent pair ``b % width``/``(b+1) % width`` (SET).  At asm GPR
    sites a SET additionally flips flag ``b % 5`` — callers pass the
    dead-flag set; IR and asm FLAGS/XMM sites pass all-dead.
    """
    cm = 0
    for b in range(64):
        b1 = b % width
        ok = (dead >> b1) & 1
        if ok and fault_model == "set":
            b2 = (b + 1) % width
            ok = (dead >> b2) & 1 and (dead_flags >> (b % 5)) & 1
        if ok:
            cm |= 1 << b
    return cm


# ---------------------------------------------------------------------------
# IR: backward observed-bits over def-use
# ---------------------------------------------------------------------------

def _const_uns(v, width: int) -> Optional[int]:
    """Unsigned bit pattern of a Constant operand, else None."""
    from ..ir.values import Constant

    if isinstance(v, Constant) and isinstance(v.value, int) \
            and not isinstance(v.value, bool):
        return bits.to_unsigned(v.value, width)
    if isinstance(v, Constant) and isinstance(v.value, bool):
        return int(v.value)
    return None


def _shift_amount(user: Instruction, width: int) -> Optional[int]:
    amt = _const_uns(user.operands[1], width)
    if amt is None:
        return None
    return amt & (width - 1)


def _observe_ir(user: Instruction, pos: int, obs_user: int,
                operand: Instruction) -> int:
    """Bits of ``operand`` observed through one use.

    Returns a mask in the *operand's* width space.  ``obs_user`` is the
    currently-known observed mask of the user's own result.
    """
    w = _width_of(operand.type)
    if w is None:
        w = 64
    full = bits.mask(w)
    kind = BIT_SEMANTICS.get(user.opcode, "opaque")

    if kind == "carry":
        return _carry_close(obs_user) & full
    if kind == "bitwise":                      # xor
        return obs_user & full
    if kind == "mask-and":
        other = _const_uns(user.operands[1 - pos], w)
        if other is None:
            return obs_user & full
        return obs_user & other & full
    if kind == "mask-or":
        other = _const_uns(user.operands[1 - pos], w)
        if other is None:
            return obs_user & full
        return obs_user & ~other & full
    if kind in ("shift-l", "shift-r", "shift-ar"):
        if pos == 1:
            # the amount: only bits below log2(width) participate
            return (w - 1) if obs_user else 0
        sh = _shift_amount(user, w)
        if sh is None:
            return full if obs_user else 0
        if kind == "shift-l":
            return (obs_user >> sh) & full
        shifted = (obs_user << sh) & full
        if kind == "shift-ar" and sh and (obs_user >> (w - sh)):
            shifted |= 1 << (w - 1)
        return shifted
    if kind == "opaque-trap":                  # sdiv/srem: traps observe all
        return full
    if kind == "compare":                      # icmp/fcmp
        if not _checker_observes(user):
            return 0
        return full
    if kind == "cast":
        op = user.opcode
        if op == "sext":
            tm = obs_user
            low = tm & (bits.mask(w - 1) if w > 1 else 0)
            if tm >> (w - 1):
                low |= 1 << (w - 1)
            return low & full
        if op == "zext":
            return obs_user & full
        if op == "trunc":
            tw = user.type.bits
            return obs_user & bits.mask(tw) & full
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            return obs_user & full
        return full                            # sitofp / fptosi
    if kind == "select":
        if pos == 0:
            return full if obs_user else 0
        return obs_user & full
    if kind == "addr":                         # gep operands: address math
        return full if obs_user else 0
    if kind == "load":                         # the pointer: trap-relevant
        return full
    # stores, calls, branches, returns, float arithmetic, unknown:
    # fully observable side effects
    return full


def analyze_ir(module, fault_model: Optional[str] = None,
               config: BitliveConfig = BitliveConfig()) -> BitliveReport:
    """Backward observed-bits pass over every defined function."""
    fm = validate_fault_model(fault_model)
    report = BitliveReport(layer="ir", fault_model=fm)
    if not config.enabled or fm == "cf":
        return report

    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        insts = list(fn.instructions())
        obs: Dict[int, int] = {id(i): 0 for i in insts}
        users: Dict[int, List[Tuple[Instruction, int]]] = {
            id(i): [] for i in insts
        }
        for inst in insts:
            for pos, op in enumerate(inst.operands):
                if isinstance(op, Instruction):
                    u = users.get(id(op))
                    if u is not None:
                        u.append((inst, pos))
        # def-use is acyclic (no phi), so reverse program order converges
        # in one pass; iterate defensively until stable anyway
        changed = True
        while changed:
            changed = False
            for inst in reversed(insts):
                m = 0
                for user, pos in users[id(inst)]:
                    m |= _observe_ir(user, pos, obs[id(user)], inst)
                if m != obs[id(inst)]:
                    obs[id(inst)] = m
                    changed = True

        for inst in insts:
            if not inst.is_ir_injection_site:
                continue
            if inst.is_shadow or inst.is_checker:
                cls = "protected"
            else:
                cls = "live"
            w = _width_of(inst.type)
            if w is None:
                report.site_class[inst.iid] = (
                    "protected" if cls == "protected" else "unknown")
                continue
            report.site_class[inst.iid] = cls
            dead = bits.mask(w) & ~obs[id(inst)]
            if dead:
                report.dead_bits[inst.iid] = dead
                cm = _coord_mask(dead, w, fm)
                if cm:
                    report.benign[inst.iid] = cm
    return report


# ---------------------------------------------------------------------------
# asm: backward bit-level liveness over the uop CFG
# ---------------------------------------------------------------------------

def _asm_analysis(program, config: BitliveConfig):
    """Fixpoint live-bits state per uop: (regs: 16 masks, flags mask)."""
    from ..machine import machine as M

    uops = program.uops
    n = len(uops)
    succ: List[Tuple[int, ...]] = []
    for i, u in enumerate(uops):
        code = u[0]
        if code == M.JMP:
            succ.append((u[1],))
        elif code == M.JCC:
            succ.append((u[1], i + 1) if i + 1 < n else (u[1],))
        elif code == M.CALL:
            succ.append((u[1], i + 1) if i + 1 < n else (u[1],))
        elif code in (M.RET, M.UD2):
            succ.append(())
        else:
            succ.append((i + 1,) if i + 1 < n else ())

    # live-in per uop
    in_regs = [[0] * 16 for _ in range(n)]
    in_fl = [0] * n

    rcx = M._RCX
    rax = M._RAX
    rdx = M._RDX
    rdi = M._RDI
    cc_mask = _cc_read_masks()

    def transfer(i: int, u, oregs: List[int], ofl: int):
        code = u[0]
        regs = list(oregs)
        fl = ofl
        if code == M.MOV_RR:
            rd = regs[u[1]]
            regs[u[1]] = 0
            regs[u[2]] |= rd
        elif code == M.MOV_RI:
            regs[u[1]] = 0
        elif code == M.MOV_RM:
            regs[u[1]] = 0
            if u[2] >= 0:
                regs[u[2]] = _M64
        elif code == M.MOV_MR:
            if u[1] >= 0:
                regs[u[1]] = _M64
            regs[u[3]] |= bits.mask(8 * u[4])
        elif code == M.MOV_MI:
            if u[1] >= 0:
                regs[u[1]] = _M64
        elif code in (M.MOVSD_XM,):
            if u[2] >= 0:
                regs[u[2]] = _M64
        elif code in (M.MOVSD_MX,):
            if u[1] >= 0:
                regs[u[1]] = _M64
        elif code in (M.MOVSD_XX, M.MOVSD_XI, M.ADDSD, M.SUBSD,
                      M.MULSD, M.DIVSD):
            pass
        elif code == M.LEA:
            rd = regs[u[1]]
            regs[u[1]] = 0
            if u[2] >= 0:
                regs[u[2]] |= _carry_close(rd)
        elif code in (M.ADD_RR, M.ADD_RI, M.SUB_RR, M.SUB_RI):
            rd = regs[u[1]]
            gen = _M64 if (fl & 15) else _carry_close(rd)
            regs[u[1]] = gen
            if code in (M.ADD_RR, M.SUB_RR):
                regs[u[2]] |= gen
            fl = 0
        elif code in (M.IMUL_RR, M.IMUL_RI):
            rd = regs[u[1]]
            gen = _M64 if (fl & 3) else _carry_close(rd)
            regs[u[1]] = gen
            if code == M.IMUL_RR:
                regs[u[2]] |= gen
            fl = 0
        elif code == M.AND_RR:
            rd = regs[u[1]]
            gen = _M64 if (fl & 3) else rd
            regs[u[1]] = gen
            regs[u[2]] |= gen
            fl = 0
        elif code == M.AND_RI:
            rd = regs[u[1]]
            c = u[2]
            regs[u[1]] = (rd | (_M64 if (fl & 3) else 0)) & c
            fl = 0
        elif code == M.OR_RR:
            rd = regs[u[1]]
            gen = _M64 if (fl & 3) else rd
            regs[u[1]] = gen
            regs[u[2]] |= gen
            fl = 0
        elif code == M.OR_RI:
            rd = regs[u[1]]
            c = u[2]
            regs[u[1]] = (rd | (_M64 if (fl & 3) else 0)) & ~c & _M64
            fl = 0
        elif code == M.XOR_RR:
            if u[1] == u[2]:
                regs[u[1]] = 0
            else:
                rd = regs[u[1]]
                gen = _M64 if (fl & 3) else rd
                regs[u[1]] = gen
                regs[u[2]] |= gen
            fl = 0
        elif code == M.XOR_RI:
            rd = regs[u[1]]
            regs[u[1]] = _M64 if (fl & 3) else rd
            fl = 0
        elif code in (M.SHL_RI, M.SAR_RI, M.SHR_RI):
            rd = regs[u[1]]
            sh = u[2]
            flg = fl & 3
            if code == M.SHL_RI:
                gen = rd >> sh
                if flg:
                    gen |= _M64 >> sh
            else:
                gen = (rd << sh) & _M64
                if flg:
                    gen |= (_M64 << sh) & _M64
                if code == M.SAR_RI and sh and \
                        ((rd >> (64 - sh)) or flg):
                    gen |= _SIGN
            regs[u[1]] = gen
            fl = 0
        elif code in (M.SHL_RC, M.SAR_RC, M.SHR_RC):
            rd = regs[u[1]]
            if rd or (fl & 3):
                regs[u[1]] = _M64
                regs[rcx] |= 63
            else:
                regs[u[1]] = 0
                regs[rcx] |= 63 if (fl & 3) else 0
            fl = 0
        elif code == M.IDIV:
            regs[rax] = 0
            regs[rdx] = 0
            regs[rax] |= _M64
            regs[u[1]] |= _M64
            fl = 0
        elif code in (M.CMP_RR, M.CMP_RI, M.TEST_RR):
            gen = _M64 if (fl & 15) else 0
            regs[u[1]] |= gen
            if code in (M.CMP_RR, M.TEST_RR):
                regs[u[2]] |= gen
            fl = 0
        elif code == M.SETCC:
            rd = regs[u[1]]
            regs[u[1]] = 0
            if rd:
                fl |= cc_mask[u[2]]
        elif code == M.CMOV:
            rd = regs[u[1]]
            regs[u[2]] |= rd
            if rd:
                fl |= cc_mask[u[3]]
        elif code == M.JMP:
            pass
        elif code == M.JCC:
            fl |= cc_mask[u[2]]
        elif code in (M.CALL, M.RET):
            b = _call_boundary()
            if b is None:
                regs = [_M64] * 16
                fl = _ALL_FLAGS
            else:
                regs = [b] * 16
                fl = b & _ALL_FLAGS
        elif code == M.CALLRT:
            if u[1] == M._RT_DETECT:
                regs = [0] * 16
                fl = 0
            elif u[1] in (M._RT_PRINT_I64, M._RT_PRINT_CHAR):
                regs[rdi] = _M64
        elif code == M.PUSH:
            regs[u[1]] |= _M64
            regs[M._RSP] = _M64
        elif code == M.POP:
            regs[u[1]] = 0
            regs[M._RSP] = _M64
        elif code == M.UCOMISD:
            fl = 0
        elif code == M.CVTSI2SD:
            regs[u[2]] |= _M64
        elif code == M.CVTTSD2SI:
            regs[u[1]] = 0
        elif code == M.UD2:
            regs = [0] * 16
            fl = 0
        else:                                   # pragma: no cover
            regs = [_M64] * 16
            fl = _ALL_FLAGS
        return regs, fl

    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            oregs = [0] * 16
            ofl = 0
            for s in succ[i]:
                sr = in_regs[s]
                for k in range(16):
                    oregs[k] |= sr[k]
                ofl |= in_fl[s]
            nregs, nfl = transfer(i, uops[i], oregs, ofl)
            if nfl != in_fl[i] or nregs != in_regs[i]:
                in_regs[i] = nregs
                in_fl[i] = nfl
                changed = True

    # out-states (the flip point: after the uop, before its successor)
    out_regs = []
    out_fl = []
    for i in range(n):
        oregs = [0] * 16
        ofl = 0
        for s in succ[i]:
            sr = in_regs[s]
            for k in range(16):
                oregs[k] |= sr[k]
            ofl |= in_fl[s]
        out_regs.append(oregs)
        out_fl.append(ofl)
    return out_regs, out_fl


def _cc_read_masks() -> Dict[int, int]:
    from ..machine.machine import _CC_IDS

    return {cid: _cc_reads(cc) for cc, cid in _CC_IDS.items()}


def _gpr_dest_index(u, code) -> Optional[int]:
    from ..machine import machine as M

    if code == M.IDIV:
        return M._RAX
    if code in (M.MOV_RR, M.MOV_RI, M.MOV_RM, M.LEA, M.ADD_RR, M.ADD_RI,
                M.SUB_RR, M.SUB_RI, M.IMUL_RR, M.IMUL_RI, M.AND_RR,
                M.AND_RI, M.OR_RR, M.OR_RI, M.XOR_RR, M.XOR_RI,
                M.SHL_RC, M.SHL_RI, M.SAR_RC, M.SAR_RI, M.SHR_RC,
                M.SHR_RI, M.SETCC, M.CMOV, M.CVTTSD2SI, M.POP):
        return u[1]
    return None                                  # pragma: no cover


def analyze_asm(program, fault_model: Optional[str] = None,
                config: BitliveConfig = BitliveConfig()) -> BitliveReport:
    """Backward bit-liveness over a :class:`CompiledProgram`."""
    fm = validate_fault_model(fault_model)
    report = BitliveReport(layer="asm", fault_model=fm)
    if not config.enabled or fm == "cf":
        return report

    out_regs, out_fl = _asm_analysis(program, config)
    uops = program.uops
    for pc, kind in enumerate(program.inj_kind):
        if not kind:
            continue
        inst = program.inst_at(pc)
        if inst.role in (Role.CHECKER, Role.FOLDED_CHECKER_JMP):
            cls = "protected"
        elif kind == 2:
            cls = "unknown"
        else:
            cls = "live"
        report.site_class[pc] = cls
        if kind == 2:
            continue                             # XMM: no benign claims
        dead_fl = ~out_fl[pc] & _ALL_FLAGS
        if kind == 3:                            # flags site
            cm = 0
            for b in range(64):
                ok = (dead_fl >> (b % 5)) & 1
                if ok and fm == "set":
                    ok = (dead_fl >> ((b + 1) % 5)) & 1
                if ok:
                    cm |= 1 << b
            if dead_fl:
                report.dead_bits[pc] = dead_fl
            if cm:
                report.benign[pc] = cm
            continue
        d = _gpr_dest_index(uops[pc], uops[pc][0])
        if d is None:                            # pragma: no cover
            continue
        dead = ~out_regs[pc][d] & _M64
        if not dead:
            continue
        report.dead_bits[pc] = dead
        cm = _coord_mask(dead, 64, fm, dead_flags=dead_fl)
        if cm:
            report.benign[pc] = cm
    return report


def analyze(built, layer: str, fault_model: Optional[str] = None,
            config: BitliveConfig = BitliveConfig()) -> BitliveReport:
    """Layer dispatcher over a :class:`~repro.pipeline.BuiltProgram`."""
    if layer == "ir":
        return analyze_ir(built.module, fault_model, config)
    if layer == "asm":
        return analyze_asm(built.compiled, fault_model, config)
    raise ValueError(f"unknown layer {layer!r}")
