"""SDC-coverage computation (§2.1).

``coverage = (SDC_raw - SDC_prot) / SDC_raw`` where the probabilities
come from campaigns against the unprotected and protected binaries at
the *same* layer — the cross-layer comparison then contrasts the IR and
assembly coverages of the same protection plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fi.campaign import CampaignResult

__all__ = ["sdc_coverage", "CoveragePoint"]


def sdc_coverage(raw_sdc_prob: float, prot_sdc_prob: float) -> float:
    """SDC coverage given raw and protected SDC probabilities.

    Clamped to ``[0, 1]``: sampling noise can make the protected
    probability marginally exceed the raw one on tiny campaigns.
    """
    if raw_sdc_prob <= 0.0:
        return 1.0  # nothing to cover
    return max(0.0, min(1.0, (raw_sdc_prob - prot_sdc_prob) / raw_sdc_prob))


@dataclass
class CoveragePoint:
    """One point of a coverage curve (benchmark x level x layer)."""

    benchmark: str
    level: int
    layer: str                 # 'ir' | 'asm'
    technique: str             # 'id' | 'flowery' | 'none'
    raw_sdc: float
    prot_sdc: float

    @property
    def coverage(self) -> float:
        return sdc_coverage(self.raw_sdc, self.prot_sdc)

    @classmethod
    def from_campaigns(
        cls,
        benchmark: str,
        level: int,
        technique: str,
        raw: CampaignResult,
        prot: CampaignResult,
    ) -> "CoveragePoint":
        if raw.layer != prot.layer:
            raise ValueError(
                f"layer mismatch: raw={raw.layer} prot={prot.layer}"
            )
        return cls(
            benchmark=benchmark,
            level=level,
            layer=raw.layer,
            technique=technique,
            raw_sdc=raw.sdc_probability,
            prot_sdc=prot.sdc_probability,
        )
