"""Cross-layer analysis: SDC coverage and penetration root causes."""

from .asmstats import AsmStatics, dynamic_role_histogram, static_stats  # noqa: F401
from .coverage import CoveragePoint, sdc_coverage  # noqa: F401
from .forensics import FaultStory, explain_injection, first_divergence  # noqa: F401
from .report import (  # noqa: F401
    campaign_from_dict,
    campaign_to_dict,
    coverage_point_to_dict,
    penetration_to_dict,
    per_benchmark_shares,
)
from .rootcause import (  # noqa: F401
    Penetration,
    PenetrationReport,
    RootCauseClassifier,
    classify_campaign,
)

__all__ = [
    "sdc_coverage", "CoveragePoint",
    "Penetration", "PenetrationReport", "RootCauseClassifier",
    "classify_campaign", "campaign_to_dict", "campaign_from_dict", "penetration_to_dict", "coverage_point_to_dict", "per_benchmark_shares", "AsmStatics", "static_stats", "dynamic_role_histogram", "FaultStory", "explain_injection", "first_divergence",
]
