"""Static and dynamic statistics over lowered assembly.

Used by the experiments to explain *why* penetration distributions are
application-specific (§5.2: "depending on whether a program is
memory-bound or not", call density, control-flow properties): the
instruction-mix and role histograms quantify exactly those properties.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..backend.isa import Role
from ..backend.program import AsmProgram
from ..machine.machine import CompiledProgram

__all__ = ["AsmStatics", "static_stats", "dynamic_role_histogram"]


@dataclass
class AsmStatics:
    """Static instruction statistics of a lowered program."""

    total: int
    by_opcode: Dict[str, int] = field(default_factory=dict)
    by_role: Dict[str, int] = field(default_factory=dict)
    injectable: int = 0
    #: instructions with no IR provenance (mapping-penetration surface)
    unmapped: int = 0

    @property
    def injectable_fraction(self) -> float:
        return self.injectable / self.total if self.total else 0.0

    def role_fraction(self, role: str) -> float:
        return self.by_role.get(role, 0) / self.total if self.total else 0.0

    def penetration_surface(self) -> Dict[str, int]:
        """Static count of instructions in each penetration-prone role."""
        return {
            "store": (
                self.by_role.get(Role.STORE_RELOAD, 0)
                + self.by_role.get(Role.STORE_ADDR_RELOAD, 0)
            ),
            "branch": (
                self.by_role.get(Role.BR_TEST, 0)
                + self.by_role.get(Role.BR_COND_RELOAD, 0)
            ),
            "call": self.by_role.get(Role.CALL_ARG, 0),
            "mapping": (
                self.by_role.get(Role.FRAME, 0)
                + self.by_role.get(Role.RET_VAL, 0)
            ),
        }


def static_stats(program: AsmProgram) -> AsmStatics:
    opcodes: Counter = Counter()
    roles: Counter = Counter()
    injectable = 0
    unmapped = 0
    total = 0
    for fn in program.functions.values():
        for inst in fn.insts:
            total += 1
            opcodes[inst.opcode] += 1
            roles[inst.role] += 1
            if inst.is_injectable:
                injectable += 1
            if inst.prov_iid is None:
                unmapped += 1
    return AsmStatics(
        total=total,
        by_opcode=dict(opcodes),
        by_role=dict(roles),
        injectable=injectable,
        unmapped=unmapped,
    )


def dynamic_role_histogram(
    compiled: CompiledProgram, per_inst_counts: Dict[int, int]
) -> Dict[str, int]:
    """Dynamic execution counts per role, from a profiling run's
    per-static-instruction counts."""
    hist: Counter = Counter()
    for index, count in per_inst_counts.items():
        inst = compiled.inst_at(index)
        hist[inst.role] += count
    return dict(hist)
