"""Fault forensics: replay one injection and narrate what happened.

Given an :class:`~repro.fi.campaign.InjectionRecord` from a campaign,
:func:`explain_injection` re-executes the program with the same fault
and assembles a :class:`FaultStory`: the faulted instruction at both
layers, the IR provenance chain, the protection state (protected?
checker folded?), the outcome, and the first point where program output
diverged from the golden run.  This is the manual analysis the paper's
authors describe doing for every deficiency case (§5.2), automated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..backend.program import AsmProgram
from ..fi.campaign import InjectionRecord
from ..fi.outcomes import Outcome, classify_outcome
from ..interp.interpreter import IRInterpreter
from ..ir.module import Module
from ..ir.printer import format_instruction
from ..machine.machine import AsmMachine, CompiledProgram
from ..protection.duplication import DuplicationInfo
from .rootcause import Penetration, RootCauseClassifier

__all__ = ["FaultStory", "explain_injection", "first_divergence"]


def first_divergence(golden: str, faulty: str) -> Optional[int]:
    """Index of the first differing output line, or None if equal."""
    g_lines = golden.split("\n")
    f_lines = faulty.split("\n")
    for i, (a, b) in enumerate(zip(g_lines, f_lines)):
        if a != b:
            return i
    if len(g_lines) != len(f_lines):
        return min(len(g_lines), len(f_lines))
    return None


@dataclass
class FaultStory:
    layer: str
    outcome: Outcome
    dyn_index: int
    bit: int
    #: textual form of the faulted instruction (asm or IR)
    site: str
    #: IR instruction the site implements, if any
    ir_site: Optional[str]
    #: asm role tag (asm layer only)
    role: Optional[str]
    #: was the IR instruction covered by the protection plan?
    protected: Optional[bool]
    #: were all its checkers folded away (comparison penetration)?
    checkers_folded: Optional[bool]
    #: root-cause category for SDC escapes on protected binaries
    penetration: Optional[Penetration]
    #: first output line that differs (SDC only)
    diverged_at_line: Optional[int]
    golden_line: Optional[str] = None
    faulty_line: Optional[str] = None
    trap_kind: Optional[str] = None
    #: lockstep cross-layer divergence report (opt-in; see
    #: :func:`explain_injection` ``lockstep=True``)
    lockstep: Optional[object] = None

    def narrate(self) -> str:
        lines = [
            f"fault: {self.layer} dynamic site #{self.dyn_index}, "
            f"bit {self.bit} -> {self.outcome.value.upper()}",
            f"  site: {self.site}",
        ]
        if self.ir_site:
            lines.append(f"  implements IR: {self.ir_site}")
        if self.role:
            lines.append(f"  lowering role: {self.role}")
        if self.protected is not None:
            state = "protected/guarded" if self.protected else "NOT protected"
            if self.checkers_folded:
                state += " (but every covering checker was folded away)"
            lines.append(f"  protection: {state}")
        if self.penetration is not None:
            lines.append(f"  root cause: {self.penetration.value} penetration")
        if self.outcome is Outcome.SDC and self.diverged_at_line is not None:
            lines.append(
                f"  output diverges at line {self.diverged_at_line}: "
                f"{self.golden_line!r} -> {self.faulty_line!r}"
            )
        if self.outcome is Outcome.DUE:
            lines.append(f"  trap: {self.trap_kind}")
        if self.lockstep is not None:
            lines.append("  lockstep divergence:")
            lines.extend("    " + ln
                         for ln in self.lockstep.narrate().split("\n"))
        return "\n".join(lines)


def _line(text: str, index: Optional[int]) -> Optional[str]:
    if index is None:
        return None
    lines = text.split("\n")
    return lines[index] if index < len(lines) else None


def explain_injection(
    record: InjectionRecord,
    module: Module,
    layout,
    compiled: Optional[CompiledProgram] = None,
    asm: Optional[AsmProgram] = None,
    dup_info: Optional[DuplicationInfo] = None,
    layer: str = "asm",
    max_steps_factor: int = 4,
    lockstep: bool = False,
) -> FaultStory:
    """Replay ``record`` and build its :class:`FaultStory`.

    For the assembly layer, pass the ``compiled`` program and (for
    protection/penetration detail) the ``asm`` program and ``dup_info``.
    With ``lockstep=True`` (needs ``compiled``) the story additionally
    carries a cross-layer :class:`~repro.trace.DivergenceReport` that
    pinpoints the first synchronization point where the faulted layer
    departs from the other layer.
    """
    inst_by_iid = {i.iid: i for i in module.instructions()}

    if layer == "asm":
        if compiled is None:
            raise ValueError("asm forensics needs the compiled program")
        golden = AsmMachine(compiled, layout).run()
        budget = max(20_000, golden.dyn_total * max_steps_factor)
        res = AsmMachine(compiled, layout, max_steps=budget).run(
            inject_index=record.dyn_index, inject_bit=record.bit
        )
        outcome = classify_outcome(res, golden.output)
        asm_index = res.extra.get("asm_index")
        site = "<not injected>"
        ir_text = None
        role = None
        if asm_index is not None:
            inst = compiled.inst_at(asm_index)
            site = str(inst).strip()
            role = inst.role
            if inst.prov_iid is not None:
                ir_inst = inst_by_iid.get(inst.prov_iid)
                if ir_inst is not None:
                    ir_text = format_instruction(ir_inst)
    else:
        golden = IRInterpreter(module, layout=layout).run()
        budget = max(20_000, golden.dyn_total * max_steps_factor)
        res = IRInterpreter(module, layout=layout, max_steps=budget).run(
            inject_index=record.dyn_index, inject_bit=record.bit
        )
        outcome = classify_outcome(res, golden.output)
        role = None
        ir_text = None
        site = "<not injected>"
        if res.injected_iid is not None:
            ir_inst = inst_by_iid.get(res.injected_iid)
            if ir_inst is not None:
                site = format_instruction(ir_inst)

    protected = None
    folded = None
    penetration = None
    prov_iid = record.iid if record.iid is not None else (
        res.injected_iid if res.injected_iid else None
    )
    if prov_iid is not None and prov_iid in inst_by_iid:
        ir_inst = inst_by_iid[prov_iid]
        if ir_inst.is_sync_point:
            # sync points are guarded by checkers, not duplicated
            protected = bool(ir_inst.attrs.get("sync_checked"))
        else:
            protected = bool(ir_inst.is_protected or ir_inst.is_shadow)
        if dup_info is not None and asm is not None:
            master = dup_info.shadow_of.get(prov_iid, prov_iid)
            guards = dup_info.guarded_by.get(master, [])
            folded = bool(guards) and all(
                g in asm.folded_checkers for g in guards
            )
            if outcome is Outcome.SDC and layer == "asm":
                clf = RootCauseClassifier(module, asm, dup_info)
                replay_record = InjectionRecord(
                    dyn_index=record.dyn_index,
                    bit=record.bit,
                    outcome=outcome,
                    iid=prov_iid,
                    asm_index=res.extra.get("asm_index"),
                    asm_role=res.extra.get("asm_role"),
                    asm_opcode=res.extra.get("asm_opcode"),
                )
                penetration = clf.classify(replay_record)

    diverged = (
        first_divergence(golden.output, res.output)
        if outcome is Outcome.SDC
        else None
    )
    lockstep_report = None
    if lockstep:
        if compiled is None:
            raise ValueError("lockstep forensics needs the compiled program")
        from ..trace.diff import run_lockstep

        lockstep_report = run_lockstep(
            module, layout, compiled,
            inject_layer=layer,
            inject_index=record.dyn_index,
            inject_bit=record.bit,
        )
    return FaultStory(
        layer=layer,
        outcome=outcome,
        dyn_index=record.dyn_index,
        bit=record.bit,
        site=site,
        ir_site=ir_text,
        role=role,
        protected=protected,
        checkers_folded=folded,
        penetration=penetration,
        diverged_at_line=diverged,
        golden_line=_line(golden.output, diverged),
        faulty_line=_line(res.output, diverged),
        trap_kind=res.trap_kind,
        lockstep=lockstep_report,
    )
