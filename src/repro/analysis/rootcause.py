"""Root-cause classification of assembly-level escapes (§5.2).

Given an SDC record from a protected binary's assembly campaign, the
classifier assigns one of the paper's five penetration categories (or
``unprotected`` for faults in computation the protection plan simply
did not cover — those are expected misses at partial protection levels,
not deficiencies).

The decision procedure is provenance-driven:

* the backend tags every emitted instruction with the IR instruction it
  implements and a *role* (``store-reload``, ``br-test``, ``call-arg``,
  ``frame`` ...);
* the duplication pass records, for every protected instruction, the
  checkers transitively covering it;
* the backend records which checkers it folded away.

Rules (in order):

1. ``store-reload`` / ``store-addr-reload`` on a checker-guarded store
   -> **store penetration**;
2. ``br-test`` / ``br-cond-reload`` on a checker-guarded branch
   -> **branch penetration**;
3. ``call-arg`` on a checker-guarded call -> **call penetration**;
4. ``frame`` / ``ret-val`` roles, or no IR provenance at all
   -> **mapping penetration**;
5. computation roles (``main``, ``main-copy``, ``operand-reload``,
   ``addr``, ``select-test``): if the IR instruction is protected and
   *every* checker covering it was folded -> **comparison penetration**;
   if it is unprotected -> ``unprotected``; otherwise ``other``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..backend.isa import Role
from ..backend.program import AsmProgram
from ..fi.campaign import CampaignResult, InjectionRecord
from ..fi.outcomes import Outcome
from ..ir.module import Module
from ..protection.duplication import DuplicationInfo

__all__ = ["Penetration", "RootCauseClassifier", "PenetrationReport",
           "classify_campaign"]


class Penetration(enum.Enum):
    STORE = "store"
    BRANCH = "branch"
    COMPARISON = "comparison"
    CALL = "call"
    MAPPING = "mapping"
    #: fault hit computation the plan chose not to protect (expected
    #: misses at partial levels — not deficiencies)
    UNPROTECTED = "unprotected"
    #: escaped despite an intact checker (residual noise)
    OTHER = "other"

    @property
    def is_deficiency(self) -> bool:
        return self in (
            Penetration.STORE,
            Penetration.BRANCH,
            Penetration.COMPARISON,
            Penetration.CALL,
            Penetration.MAPPING,
        )


_STORE_ROLES = frozenset([Role.STORE_RELOAD, Role.STORE_ADDR_RELOAD])
_BRANCH_ROLES = frozenset([Role.BR_TEST, Role.BR_COND_RELOAD])
_MAPPING_ROLES = frozenset([Role.FRAME, Role.RET_VAL])


class RootCauseClassifier:
    def __init__(
        self,
        module: Module,
        program: AsmProgram,
        dup_info: DuplicationInfo,
    ):
        self.module = module
        self.program = program
        self.dup_info = dup_info
        self._inst_by_iid = {i.iid: i for i in module.instructions()}
        #: syncs that have at least one checker
        self._guarded_syncs = {
            c.sync_iid for c in dup_info.checkers.values()
        }

    def _sync_category(self, iid, category: Penetration) -> Penetration:
        """A fault in lowering-introduced code around a sync point.

        It counts as the sync's penetration category unless the sync has
        *duplicable but unprotected* operands — then the plan simply did
        not cover this computation and the miss is expected.  Syncs whose
        operands are all constants/globals (nothing IR-level protection
        could ever duplicate) are genuine penetrations even checker-less.
        """
        if iid in self._guarded_syncs:
            return category
        from ..protection.duplication import is_duplicable
        from ..ir.instructions import Instruction

        sync = self._inst_by_iid.get(iid)
        if sync is None:
            return Penetration.MAPPING
        for op in sync.operands:
            if (
                isinstance(op, Instruction)
                and is_duplicable(op)
                and not op.is_protected
            ):
                return Penetration.UNPROTECTED
        return category

    def classify(self, record: InjectionRecord) -> Penetration:
        role = record.asm_role
        iid = record.iid

        if role in _STORE_ROLES:
            return self._sync_category(iid, Penetration.STORE)
        if role in _BRANCH_ROLES:
            return self._sync_category(iid, Penetration.BRANCH)
        if role == Role.CALL_ARG:
            return self._sync_category(iid, Penetration.CALL)
        if iid is None or role in _MAPPING_ROLES:
            return Penetration.MAPPING

        inst = self._inst_by_iid.get(iid)
        if inst is None:
            return Penetration.MAPPING
        if inst.is_checker or "flowery" in inst.attrs:
            return Penetration.OTHER
        if not inst.is_protected and not inst.is_shadow:
            return Penetration.UNPROTECTED
        master = self.dup_info.shadow_of.get(iid, iid)
        guards = self.dup_info.guarded_by.get(master, [])
        if guards and all(
            g in self.program.folded_checkers for g in guards
        ):
            return Penetration.COMPARISON
        return Penetration.OTHER


@dataclass
class PenetrationReport:
    """Distribution of escape causes over a campaign's SDC records."""

    benchmark: str
    level: int
    counts: Dict[Penetration, int] = field(default_factory=dict)

    @property
    def total_escapes(self) -> int:
        return sum(self.counts.values())

    @property
    def total_deficiencies(self) -> int:
        return sum(
            n for p, n in self.counts.items() if p.is_deficiency
        )

    def deficiency_shares(self) -> Dict[Penetration, float]:
        """Fractions of the five deficiency categories (Figure 3)."""
        total = self.total_deficiencies
        if total == 0:
            return {}
        return {
            p: n / total
            for p, n in self.counts.items()
            if p.is_deficiency
        }


def classify_campaign(
    benchmark: str,
    level: int,
    campaign: CampaignResult,
    module: Module,
    program: AsmProgram,
    dup_info: DuplicationInfo,
) -> PenetrationReport:
    """Classify every SDC record of an asm campaign on a protected binary."""
    clf = RootCauseClassifier(module, program, dup_info)
    report = PenetrationReport(benchmark=benchmark, level=level)
    for record in campaign.records:
        if record.outcome is not Outcome.SDC:
            continue
        cause = clf.classify(record)
        report.counts[cause] = report.counts.get(cause, 0) + 1
    return report
