"""Serialisable experiment reports.

Campaign and penetration results convert to plain dicts (JSON-ready) so
long experiment runs can be archived and re-analysed without re-running
the simulators.  The per-benchmark penetration table mirrors the paper's
§5.2 narrative, which quotes per-benchmark category shares (e.g. store
penetration: 15.67% in kNN vs 56.10% in BFS).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional

from ..fi.campaign import CampaignResult, InjectionRecord
from ..fi.outcomes import Outcome
from .coverage import CoveragePoint
from .rootcause import Penetration, PenetrationReport

__all__ = [
    "campaign_to_dict",
    "campaign_from_dict",
    "penetration_to_dict",
    "coverage_point_to_dict",
    "per_benchmark_shares",
    "dump_json",
    "load_json",
]


def campaign_to_dict(result: CampaignResult, keep_records: bool = True) -> Dict:
    data = {
        "layer": result.layer,
        "n": result.n,
        "counts": {o.value: n for o, n in result.counts.items()},
        "golden_output": result.golden_output,
        "golden_dyn_total": result.golden_dyn_total,
        "golden_dyn_injectable": result.golden_dyn_injectable,
    }
    if keep_records:
        data["records"] = [
            {
                "dyn_index": r.dyn_index,
                "bit": r.bit,
                "outcome": r.outcome.value,
                "iid": r.iid,
                "asm_index": r.asm_index,
                "asm_role": r.asm_role,
                "asm_opcode": r.asm_opcode,
                "trap_kind": r.trap_kind,
            }
            for r in result.records
        ]
    return data


def campaign_from_dict(data: Dict) -> CampaignResult:
    counts = {Outcome(k): v for k, v in data["counts"].items()}
    for o in Outcome:
        counts.setdefault(o, 0)
    records = [
        InjectionRecord(
            dyn_index=r["dyn_index"],
            bit=r["bit"],
            outcome=Outcome(r["outcome"]),
            iid=r["iid"],
            asm_index=r.get("asm_index"),
            asm_role=r.get("asm_role"),
            asm_opcode=r.get("asm_opcode"),
            trap_kind=r.get("trap_kind"),
        )
        for r in data.get("records", [])
    ]
    return CampaignResult(
        layer=data["layer"],
        n=data["n"],
        counts=counts,
        records=records,
        golden_output=data["golden_output"],
        golden_dyn_total=data["golden_dyn_total"],
        golden_dyn_injectable=data["golden_dyn_injectable"],
    )


def penetration_to_dict(report: PenetrationReport) -> Dict:
    return {
        "benchmark": report.benchmark,
        "level": report.level,
        "counts": {p.value: n for p, n in report.counts.items()},
        "total_deficiencies": report.total_deficiencies,
        "shares": {
            p.value: s for p, s in report.deficiency_shares().items()
        },
    }


def coverage_point_to_dict(point: CoveragePoint) -> Dict:
    return {
        "benchmark": point.benchmark,
        "level": point.level,
        "layer": point.layer,
        "technique": point.technique,
        "raw_sdc": point.raw_sdc,
        "prot_sdc": point.prot_sdc,
        "coverage": point.coverage,
    }


def per_benchmark_shares(
    reports: List[PenetrationReport],
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark deficiency-category shares (paper §5.2 style)."""
    out: Dict[str, Dict[str, float]] = {}
    for report in reports:
        out[report.benchmark] = {
            p.value: share for p, share in report.deficiency_shares().items()
        }
    return out


def dump_json(path, payload: Dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_json(path) -> Dict:
    with open(path) as fh:
        return json.load(fh)
