"""Trace record types shared by both execution layers.

A trace has two granularities:

* **sync events** — full records at synchronization points (stores,
  resolved control transfers, calls, returns, program output).  Sync
  events are designed to be *comparable across layers*: the IR
  interpreter and the assembly machine emit identical event keys for a
  fault-free run of the same program, which is what makes the lockstep
  differ (:mod:`repro.trace.diff`) possible.
* **step records** — cheap per-instruction records (step counter,
  location, opcode, destination, post-execution value), kept in a ring
  buffer, sampled, or in full depending on :class:`TraceConfig`.

Event-key vocabulary (``SyncEvent.key`` = ``(kind, ref, value)``):

========  =========================  ======================================
kind      ref                        value
========  =========================  ======================================
store     iid of the IR store        ``(address, size, bits)``
jump      iid of the br/condbr       label of the *resolved* successor
call      iid of the call            tuple of normalised argument bits
ret       iid of the ret             return-value bits (None for void)
output    None                       the emitted text chunk
========  =========================  ======================================

Integer/pointer payloads are normalised to unsigned 64-bit (or the
store's byte width); float payloads are raw IEEE-754 bit patterns, so
comparison is always bit-exact.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple, Union

__all__ = ["TraceConfig", "SyncEvent", "StepRecord", "Trace", "f64_bits"]

_MASK64 = (1 << 64) - 1

#: valid trace modes: ``sync`` records sync events only; the other
#: three additionally keep per-step records (last ``capacity`` steps,
#: every ``sample_every``-th step, or all of them).
TRACE_MODES = ("sync", "ring", "sample", "full")


def f64_bits(value: float) -> int:
    """IEEE-754 bit pattern of a double (for bit-exact comparison)."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for a trace tap.  Immutable; shareable across runs."""

    mode: str = "sync"
    #: ring-buffer size for ``ring``/``sample`` step records
    capacity: int = 4096
    #: period for ``sample`` mode (record every k-th step)
    sample_every: int = 64
    #: stop recording sync events past this count (None = unbounded)
    sync_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in TRACE_MODES:
            raise ValueError(
                f"trace mode must be one of {TRACE_MODES}, got {self.mode!r}"
            )
        if self.capacity <= 0:
            raise ValueError("trace capacity must be positive")
        if self.sample_every <= 0:
            raise ValueError("sample_every must be positive")


@dataclass(frozen=True)
class SyncEvent:
    """One synchronization-point record.

    ``ref`` identifies the *static* site (an IR iid for both layers —
    assembly events are mapped through instruction provenance).
    ``loc`` is layer-local: the iid again at the IR layer, the static
    assembly instruction index at the machine layer.
    """

    kind: str
    ref: Union[int, str, None]
    value: object
    step: int = 0
    loc: Optional[int] = None

    @property
    def key(self) -> Tuple[str, Union[int, str, None], object]:
        """Cross-layer comparison key (excludes step/loc metadata)."""
        return (self.kind, self.ref, self.value)

    def describe(self) -> str:
        if self.kind == "store":
            addr, size, bits = self.value  # type: ignore[misc]
            at = addr if isinstance(addr, str) else f"{addr:#x}"
            return f"store @{self.ref}: [{at}] <- {bits:#x} ({size}B)"
        if self.kind == "jump":
            return f"jump @{self.ref} -> {self.value}"
        if self.kind == "call":
            args = ", ".join(f"{a:#x}" for a in self.value)  # type: ignore[union-attr]
            return f"call @{self.ref}({args})"
        if self.kind == "ret":
            v = "void" if self.value is None else f"{self.value:#x}"
            return f"ret @{self.ref} = {v}"
        if self.kind == "output":
            return f"output {self.value!r}"
        return f"{self.kind} @{self.ref} = {self.value!r}"

    def to_json(self) -> dict:
        value = self.value
        if isinstance(value, tuple):
            value = list(value)
        return {
            "ev": "sync",
            "kind": self.kind,
            "ref": self.ref,
            "value": value,
            "step": self.step,
            "loc": self.loc,
        }


@dataclass
class StepRecord:
    """One per-step record: ``value`` is filled in *after* the
    instruction executes (None when it produces no observable value or
    the run ended first)."""

    step: int
    #: IR iid or assembly static index
    loc: int
    opcode: str
    dest: Optional[str] = None
    value: Optional[Union[int, float]] = None

    def describe(self) -> str:
        dest = f" {self.dest}" if self.dest else ""
        if self.value is None:
            val = ""
        elif isinstance(self.value, float):
            val = f" = {self.value!r}"
        else:
            val = f" = {self.value:#x}"
        return f"#{self.step:<8d} {self.opcode:10s}{dest}{val}"


class Trace:
    """Mutable trace container filled by a tracer during one run."""

    def __init__(self, layer: str, config: TraceConfig):
        self.layer = layer
        self.config = config
        self.sync: List[SyncEvent] = []
        self.steps_seen = 0
        #: True when sync_limit cut the sync stream short
        self.truncated = False
        self._steps: Union[Deque[StepRecord], List[StepRecord], None]
        if config.mode == "full":
            self._steps = []
        elif config.mode in ("ring", "sample"):
            self._steps = deque(maxlen=config.capacity)
        else:
            self._steps = None

    def step_records(self) -> List[StepRecord]:
        """Recorded step records in chronological order."""
        return list(self._steps) if self._steps is not None else []

    def sync_keys(self) -> List[Tuple]:
        return [e.key for e in self.sync]

    def to_jsonl(self) -> str:
        import json

        lines = [json.dumps({"ev": "trace", "layer": self.layer,
                             "steps": self.steps_seen,
                             "syncs": len(self.sync),
                             "truncated": self.truncated})]
        lines.extend(json.dumps(e.to_json()) for e in self.sync)
        return "\n".join(lines) + "\n"
