"""Trace taps for the two execution layers.

Both tracers are *observers*: they piggyback on the per-step tracking
hook the simulators already expose for profiling, so a disabled tap
adds zero per-instruction work to the hot loops (the simulators test a
single pre-hoisted local, exactly as they already did for profiling).
This holds for both dispatch modes — the naive opcode ladders and the
pre-decoded closure loops hoist the same ``track``/``hook`` locals, so
attaching a tracer never changes which decoded code runs, only whether
the per-step callback fires.

Both tracers emit the cross-layer-comparable sync events documented in
:mod:`repro.trace.events`:

* the **IR tracer** evaluates sync operands straight from the
  interpreter's value environment, *before* the instruction executes;
* the **machine tracer** precompiles a per-static-instruction plan
  from instruction provenance (``prov_iid``/``role``) once at attach
  time, then reads registers at run time.  Conditional jumps are
  resolved one step later (taken iff the next pc equals the target);
  the ``jmp`` companion that lowering emits after every ``jcc`` covers
  the not-taken direction, so exactly one ``jump`` event is emitted
  per executed IR terminator.

A tracer is single-use: attach it to one simulator instance, run once,
then read ``tracer.trace``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..backend.isa import GPRS, Role
from ..ir.instructions import Call, CondBr, Store
from .events import StepRecord, SyncEvent, Trace, TraceConfig, f64_bits

__all__ = ["IRTracer", "MachineTracer"]

_MASK64 = (1 << 64) - 1
_GPR_INDEX = {name: i for i, name in enumerate(GPRS)}
_XMM_INDEX = {f"xmm{i}": i for i in range(16)}

#: IR opcodes that are synchronization points
_IR_SYNC_OPS = frozenset(["store", "br", "condbr", "call", "ret"])


class _TracerBase:
    """Shared sync/step bookkeeping."""

    def __init__(self, config: Optional[TraceConfig] = None):
        self.config = config or TraceConfig()
        self.trace: Optional[Trace] = None
        self._steps_on = self.config.mode in ("ring", "sample", "full")
        self._every = (
            self.config.sample_every if self.config.mode == "sample" else 1
        )
        self._sync_limit = self.config.sync_limit
        self._n = 0
        self._out_len = 0

    def _make_trace(self, layer: str) -> Trace:
        if self.trace is not None:
            raise RuntimeError("tracer instances are single-use; "
                               "create a fresh one per run")
        self.trace = Trace(layer, self.config)
        return self.trace

    def _emit(self, kind: str, ref, value, step: int,
              loc: Optional[int]) -> None:
        trace = self.trace
        sync = trace.sync
        if self._sync_limit is not None and len(sync) >= self._sync_limit:
            trace.truncated = True
            return
        sync.append(SyncEvent(kind, ref, value, step, loc))

    def _flush_outputs(self, outputs: List[str], step: int,
                       loc: Optional[int]) -> None:
        n = len(outputs)
        if n != self._out_len:
            for item in outputs[self._out_len:n]:
                self._emit("output", None, item, step, loc)
            self._out_len = n


class IRTracer(_TracerBase):
    """Trace tap for :class:`repro.interp.interpreter.IRInterpreter`."""

    def __init__(self, config: Optional[TraceConfig] = None):
        super().__init__(config)
        self._interp = None
        self._stack_limit = 0
        #: (record, frame, iid) awaiting its post-execution value
        self._pending: Optional[Tuple[StepRecord, object, int]] = None

    def attach(self, interp) -> None:
        self._interp = interp
        self._stack_limit = interp.memory.stack_limit
        self._make_trace("ir")

    # called by the interpreter once per dynamic instruction, *before*
    # the instruction executes
    def hook(self, inst, frame) -> None:
        self._n = step = self._n + 1
        pend = self._pending
        if pend is not None:
            rec, pframe, piid = pend
            rec.value = pframe.temps.get(piid)
            self._pending = None
        interp = self._interp
        self._flush_outputs(interp.outputs, step, inst.iid)

        op = inst.opcode
        if op in _IR_SYNC_OPS:
            self._sync_ir(inst, frame, op, step, interp)

        if self._steps_on and step % self._every == 0:
            rec = StepRecord(step, inst.iid, op,
                             inst.short() if inst.has_result else None)
            self.trace._steps.append(rec)
            if inst.has_result:
                self._pending = (rec, frame, inst.iid)

    def _sync_ir(self, inst, frame, op: str, step: int, interp) -> None:
        val = interp._value
        iid = inst.iid
        if op == "store":
            v = val(frame, inst.operands[0])
            p = val(frame, inst.operands[1])
            ty = inst.operands[0].type
            if ty.is_float:
                size, bits = 8, f64_bits(float(v))
            else:
                size = 1 if ty.size == 1 else 8
                bits = int(v) & ((1 << (8 * size)) - 1)
            addr = int(p) & _MASK64
            # stack-slot addresses are layer-local (frame layouts
            # differ); global/heap addresses are shared via the layout
            if addr >= self._stack_limit:
                addr = "stack"
            self._emit("store", iid, (addr, size, bits), step, iid)
        elif op == "condbr":
            taken = val(frame, inst.operands[0])
            label = (inst.then_block.label if taken
                     else inst.else_block.label)
            self._emit("jump", iid, label, step, iid)
        elif op == "br":
            self._emit("jump", iid, inst.target.label, step, iid)
        elif op == "call":
            if not isinstance(inst.callee, str):
                args = []
                for a in inst.operands:
                    av = val(frame, a)
                    if a.type.is_float:
                        args.append(f64_bits(float(av)))
                    else:
                        args.append(int(av) & _MASK64)
                self._emit("call", iid, tuple(args), step, iid)
        else:  # ret
            if inst.operands:
                rv = val(frame, inst.operands[0])
                if frame.fn.return_type.is_float:
                    value = f64_bits(float(rv))
                else:
                    value = int(rv) & _MASK64
            else:
                value = None
            self._emit("ret", iid, value, step, iid)

    def finish(self) -> None:
        pend = self._pending
        if pend is not None:
            rec, pframe, piid = pend
            rec.value = pframe.temps.get(piid)
            self._pending = None
        if self._interp is not None:
            self._flush_outputs(self._interp.outputs, self._n, None)
        self.trace.steps_seen = self._n


# machine sync-plan opcodes
_P_STORE_R, _P_STORE_I, _P_STORE_F, _P_JCC, _P_JMP, _P_CALL, _P_RET = range(7)


class MachineTracer(_TracerBase):
    """Trace tap for :class:`repro.machine.machine.AsmMachine`.

    Pass the IR ``module`` to get full call-argument and return-value
    payloads (required for cross-layer diffing); without it, call and
    ret events carry ``None`` values and are only comparable to other
    module-less assembly traces.
    """

    def __init__(self, config: Optional[TraceConfig] = None, module=None):
        super().__init__(config)
        self.module = module
        self._machine = None
        self._stack_limit = 0
        self._plan: List[Optional[tuple]] = []
        self._dest: List[Optional[Tuple[str, int]]] = []
        self._ops: List[str] = []
        self._outputs: List[str] = []
        #: (iid, target index, label, jcc pc) of an unresolved jcc
        self._pending_jump: Optional[Tuple[int, int, str, int]] = None
        #: (record, pc) awaiting its post-execution value
        self._pending_step: Optional[Tuple[StepRecord, int]] = None

    def attach(self, machine) -> None:
        self._machine = machine
        self._outputs = machine.outputs
        self._stack_limit = machine.memory.stack_limit
        self._compile_plan(machine.program)
        self._make_trace("asm")

    # -- static plan -------------------------------------------------------

    def _compile_plan(self, program) -> None:
        from ..machine.machine import (
            CALL, CALLRT, JCC, JMP, MOVSD_MX, MOV_MI, MOV_MR, RET,
        )

        flat = program.flat
        insts = flat.insts
        uops = program.uops
        module = self.module
        calls: Dict[int, Call] = {}
        ret_kind: Dict[str, Optional[str]] = {}
        if module is not None:
            for inst in module.instructions():
                if isinstance(inst, Call):
                    calls[inst.iid] = inst
            for fn in module.functions.values():
                if not fn.is_declaration:
                    ret_kind[fn.name] = (
                        None if fn.return_type.is_void
                        else "f" if fn.return_type.is_float else "i"
                    )

        plan: List[Optional[tuple]] = [None] * len(uops)
        dest: List[Optional[Tuple[str, int]]] = [None] * len(uops)
        ops: List[str] = [""] * len(uops)
        for i, u in enumerate(uops):
            inst = insts[i]
            code = u[0]
            ops[i] = inst.opcode if inst.cc is None else (
                f"{inst.opcode}{inst.cc}"
            )
            reg = inst.dest_reg()
            if reg is not None:
                if reg.is_xmm:
                    dest[i] = ("x", _XMM_INDEX[reg.name])
                else:
                    dest[i] = ("g", _GPR_INDEX[reg.name])
            prov = inst.prov_iid
            if code in (MOV_MR, MOV_MI, MOVSD_MX):
                # memory writes with role MAIN implement IR stores;
                # every other memory write is a spill or frame traffic
                if prov is None or inst.role != Role.MAIN:
                    continue
                if code == MOV_MR:
                    plan[i] = (_P_STORE_R, prov, u[1], u[2], u[4], u[3])
                elif code == MOV_MI:
                    size = u[4]
                    bits = u[3] & ((1 << (8 * size)) - 1)
                    plan[i] = (_P_STORE_I, prov, u[1], u[2], size, bits)
                else:
                    plan[i] = (_P_STORE_F, prov, u[1], u[2], u[3])
            elif code == JCC:
                label = insts[i].operands[0].name
                plan[i] = (_P_JCC, prov, u[1], label)
            elif code == JMP:
                if prov is None:
                    continue
                # br jumps, const-folded condbrs, and the companion
                # jmp after a jcc (which only executes on the jcc's
                # not-taken fallthrough) all resolve one IR terminator
                plan[i] = (_P_JMP, prov, insts[i].operands[0].name)
            elif code == CALL:
                call = calls.get(prov)
                argplan: Optional[tuple] = None
                if call is not None:
                    int_idx = fp_idx = 0
                    slots = []
                    for a in call.operands:
                        if a.type.is_float:
                            slots.append(("f", fp_idx))
                            fp_idx += 1
                        else:
                            slots.append(("i", int_idx))
                            int_idx += 1
                    argplan = tuple(slots)
                plan[i] = (_P_CALL, prov, argplan)
            elif code == RET:
                fn = flat.inst_fn[i]
                plan[i] = (_P_RET, prov, ret_kind.get(fn))
        self._plan = plan
        self._dest = dest
        self._ops = ops

    # -- runtime hook ------------------------------------------------------

    # called by the machine once per dynamic instruction, *before* the
    # instruction executes (so the previous instruction's effects are
    # visible in regs/xmm)
    def hook(self, pc: int, regs: List[int], xmm: List[float]) -> None:
        self._n = step = self._n + 1
        pend = self._pending_step
        if pend is not None:
            rec, ppc = pend
            dplan = self._dest[ppc]
            if dplan is not None:
                kind, idx = dplan
                rec.value = regs[idx] if kind == "g" else xmm[idx]
            self._pending_step = None
        pj = self._pending_jump
        if pj is not None:
            self._pending_jump = None
            iid, target, label, jpc = pj
            if pc == target:
                self._emit("jump", iid, label, step, jpc)
            # not taken: the companion jmp (current pc) emits instead
        if len(self._outputs) != self._out_len:
            self._flush_outputs(self._outputs, step, pc)

        plan = self._plan[pc]
        if plan is not None:
            code = plan[0]
            if code == _P_STORE_R:
                _, iid, base, disp, size, src = plan
                addr = (disp + (regs[base] if base >= 0 else 0)) & _MASK64
                if addr >= self._stack_limit:
                    addr = "stack"
                bits = regs[src] & ((1 << (8 * size)) - 1)
                self._emit("store", iid, (addr, size, bits), step, pc)
            elif code == _P_STORE_I:
                _, iid, base, disp, size, bits = plan
                addr = (disp + (regs[base] if base >= 0 else 0)) & _MASK64
                if addr >= self._stack_limit:
                    addr = "stack"
                self._emit("store", iid, (addr, size, bits), step, pc)
            elif code == _P_STORE_F:
                _, iid, base, disp, x = plan
                addr = (disp + (regs[base] if base >= 0 else 0)) & _MASK64
                if addr >= self._stack_limit:
                    addr = "stack"
                self._emit("store", iid, (addr, 8, f64_bits(xmm[x])),
                           step, pc)
            elif code == _P_JCC:
                self._pending_jump = (plan[1], plan[2], plan[3], pc)
            elif code == _P_JMP:
                self._emit("jump", plan[1], plan[2], step, pc)
            elif code == _P_CALL:
                _, iid, argplan = plan
                if argplan is None:
                    value = None
                else:
                    from ..backend.isa import FP_ARG_REGS, INT_ARG_REGS

                    args = []
                    for kind, idx in argplan:
                        if kind == "i":
                            args.append(
                                regs[_GPR_INDEX[INT_ARG_REGS[idx]]]
                            )
                        else:
                            args.append(
                                f64_bits(xmm[_XMM_INDEX[FP_ARG_REGS[idx]]])
                            )
                    value = tuple(args)
                self._emit("call", iid, value, step, pc)
            else:  # _P_RET
                _, iid, kind = plan
                if kind == "i":
                    value = regs[_GPR_INDEX["rax"]]
                elif kind == "f":
                    value = f64_bits(xmm[0])
                else:
                    value = None
                self._emit("ret", iid, value, step, pc)

        if self._steps_on and step % self._every == 0:
            rec = StepRecord(step, pc, self._ops[pc])
            dplan = self._dest[pc]
            if dplan is not None:
                rec.dest = self._machine.program.flat.insts[pc].dest_reg().name
                self._pending_step = (rec, pc)
            self.trace._steps.append(rec)

    def finish(self, regs: List[int], xmm: List[float]) -> None:
        pend = self._pending_step
        if pend is not None:
            rec, ppc = pend
            dplan = self._dest[ppc]
            if dplan is not None:
                kind, idx = dplan
                rec.value = regs[idx] if kind == "g" else xmm[idx]
            self._pending_step = None
        self._flush_outputs(self._outputs, self._n, None)
        self.trace.steps_seen = self._n
