"""Lockstep cross-layer divergence diffing.

Co-runs the IR interpreter and the assembly machine on the same
program — optionally with a single bit-flip injected into either layer
— and pinpoints the first synchronization point where the two
executions diverge.  This turns the manual escape forensics of the
paper (§5.2) into a single replayable report: instead of guessing
which store/branch/call let a fault through, the differ names it, with
the operand values both layers observed.

Typical use::

    from repro.pipeline import build
    from repro.trace import lockstep_built

    built = build("crc32", scale="tiny", level=100)
    report = lockstep_built(built, inject_layer="asm",
                            inject_index=123, inject_bit=5)
    print(report.narrate())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..execresult import ExecResult
from .events import SyncEvent, Trace, TraceConfig
from .tap import IRTracer, MachineTracer

__all__ = ["Divergence", "DivergenceReport", "diff_sync_streams",
           "run_lockstep", "lockstep_built"]

#: matched sync pairs shown before the divergence in narrate()
_CONTEXT = 3


def diff_sync_streams(
    a: List[SyncEvent], b: List[SyncEvent]
) -> Tuple[int, Optional[Tuple[Optional[SyncEvent], Optional[SyncEvent]]]]:
    """First index where two sync streams disagree.

    Returns ``(matched_prefix_length, None)`` when the streams are
    identical, else ``(index, (event_a, event_b))`` where either event
    is None if that stream ended early.
    """
    n = min(len(a), len(b))
    for i in range(n):
        if a[i].key != b[i].key:
            return i, (a[i], b[i])
    if len(a) != len(b):
        return n, (a[n] if len(a) > n else None,
                   b[n] if len(b) > n else None)
    return n, None


@dataclass
class Divergence:
    """The first divergent synchronization point."""

    index: int
    event_a: Optional[SyncEvent]
    event_b: Optional[SyncEvent]
    #: source-level rendering of the divergent site in each layer
    site_a: Optional[str] = None
    site_b: Optional[str] = None


@dataclass
class DivergenceReport:
    """Outcome of one lockstep co-run."""

    layer_a: str
    layer_b: str
    status_a: str
    status_b: str
    matched: int
    events_a: int
    events_b: int
    divergence: Optional[Divergence] = None
    #: last matched sync pairs before the divergence
    context: List[SyncEvent] = field(default_factory=list)
    #: True when a sync_limit truncated either stream
    truncated: bool = False
    inject_layer: Optional[str] = None
    inject_index: Optional[int] = None
    inject_bit: int = 0
    fault_model: str = "seu"
    #: forensics for control-flow faults: the corrupted edge the
    #: injected simulator recorded ({from-site, intended target,
    #: redirect target})
    cf_edge: Optional[dict] = None

    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    def _cf_edge_line(self) -> str:
        e = self.cf_edge
        if e.get("layer") == "ir":
            return (f"corrupted edge: @{e.get('fn')} "
                    f"%{e.get('from')} (iid {e.get('iid')}) "
                    f"-> intended %{e.get('to')}, "
                    f"redirected to %{e.get('redirect')}")
        return (f"corrupted edge: pc {e.get('pc')} "
                f"({e.get('opcode')}) -> intended pc {e.get('to')}, "
                f"redirected to pc {e.get('redirect')}")

    def narrate(self) -> str:
        head = (f"lockstep {self.layer_a} vs {self.layer_b}: "
                f"{self.matched} sync points matched "
                f"({self.layer_a}: {self.events_a} events/"
                f"{self.status_a}, "
                f"{self.layer_b}: {self.events_b} events/"
                f"{self.status_b})")
        if self.inject_layer is not None:
            head += (f"\ninjection: {self.inject_layer} dynamic site "
                     f"#{self.inject_index}, bit {self.inject_bit}, "
                     f"fault model {self.fault_model}")
            if self.cf_edge is not None:
                head += "\n" + self._cf_edge_line()
        if not self.diverged:
            note = " [sync stream truncated]" if self.truncated else ""
            return head + f"\nno divergence: layers agree{note}"
        d = self.divergence
        lines = [head]
        for ev in self.context:
            lines.append(f"  = {ev.describe()}")
        lines.append(f"DIVERGENCE at sync point #{d.index}")
        for tag, ev, site in ((self.layer_a, d.event_a, d.site_a),
                              (self.layer_b, d.event_b, d.site_b)):
            if ev is None:
                lines.append(f"  {tag:3s}: <stream ended — detected, "
                             "trapped, or shorter run>")
            else:
                lines.append(f"  {tag:3s}: {ev.describe()}")
                if site:
                    lines.append(f"       at {site}")
        return "\n".join(lines)


def _ir_site(module, ev: Optional[SyncEvent]) -> Optional[str]:
    if ev is None or not isinstance(ev.ref, int):
        return None
    from ..ir.printer import format_instruction

    for inst in module.instructions():
        if inst.iid == ev.ref:
            return format_instruction(inst).strip()
    return None


def _asm_site(compiled, ev: Optional[SyncEvent]) -> Optional[str]:
    if ev is None or ev.loc is None:
        return None
    inst = compiled.inst_at(ev.loc)
    return f"{str(inst).strip()}  [role={inst.role}, pc={ev.loc}]"


def _budget(golden_total: int, factor: int = 4, floor: int = 20_000) -> int:
    return max(floor, golden_total * factor)


def run_lockstep(
    module,
    layout,
    compiled,
    inject_layer: Optional[str] = None,
    inject_index: Optional[int] = None,
    inject_bit: int = 0,
    config: Optional[TraceConfig] = None,
    fault_model: Optional[str] = None,
) -> DivergenceReport:
    """Co-run both layers with sync tracing and diff the streams.

    ``inject_layer`` ('ir' | 'asm' | None) selects which layer, if
    any, receives the single fault at injectable dynamic site
    ``inject_index`` under ``fault_model``.  For control-flow faults
    the report also names the corrupted edge (the branch site, its
    intended target, and where the fault redirected it).  The report
    also exposes the two traces as ``report.trace_a`` /
    ``report.trace_b``.
    """
    from ..faultmodel import validate_fault_model
    from ..interp.interpreter import IRInterpreter
    from ..machine.machine import AsmMachine

    if inject_layer not in (None, "ir", "asm"):
        raise ValueError(f"inject_layer must be 'ir' or 'asm', "
                         f"got {inject_layer!r}")
    fm = validate_fault_model(fault_model)
    cfg = config or TraceConfig()

    ir_kwargs = {}
    asm_kwargs = {}
    if inject_layer == "ir" and inject_index is not None:
        ir_kwargs = {"inject_index": inject_index,
                     "inject_bit": inject_bit}
    elif inject_layer == "asm" and inject_index is not None:
        asm_kwargs = {"inject_index": inject_index,
                      "inject_bit": inject_bit}

    ir_tracer = IRTracer(cfg)
    if ir_kwargs:
        golden = IRInterpreter(module, layout=layout).run()
        ir_res = IRInterpreter(
            module, layout=layout, max_steps=_budget(golden.dyn_total),
            trace=ir_tracer, fault_model=fm,
        ).run(**ir_kwargs)
    else:
        ir_res = IRInterpreter(module, layout=layout,
                               trace=ir_tracer).run()

    asm_tracer = MachineTracer(cfg, module=module)
    if asm_kwargs:
        golden = AsmMachine(compiled, layout).run()
        asm_res = AsmMachine(
            compiled, layout, max_steps=_budget(golden.dyn_total),
            trace=asm_tracer, fault_model=fm,
        ).run(**asm_kwargs)
    else:
        asm_res = AsmMachine(compiled, layout,
                             trace=asm_tracer).run()

    report = diff_traces(ir_tracer.trace, asm_tracer.trace,
                         ir_res, asm_res, module=module,
                         compiled=compiled)
    report.inject_layer = inject_layer
    report.inject_index = inject_index if inject_layer else None
    report.inject_bit = inject_bit if inject_layer else 0
    report.fault_model = fm
    if inject_layer is not None:
        inj_res = ir_res if inject_layer == "ir" else asm_res
        edge = inj_res.extra.get("cf_edge")
        if isinstance(edge, dict):
            report.cf_edge = edge
    return report


def diff_traces(
    trace_a: Trace,
    trace_b: Trace,
    res_a: ExecResult,
    res_b: ExecResult,
    module=None,
    compiled=None,
) -> DivergenceReport:
    """Diff two collected traces into a :class:`DivergenceReport`."""
    matched, pair = diff_sync_streams(trace_a.sync, trace_b.sync)
    report = DivergenceReport(
        layer_a=trace_a.layer,
        layer_b=trace_b.layer,
        status_a=res_a.status.value,
        status_b=res_b.status.value,
        matched=matched,
        events_a=len(trace_a.sync),
        events_b=len(trace_b.sync),
        truncated=trace_a.truncated or trace_b.truncated,
    )
    report.trace_a = trace_a
    report.trace_b = trace_b
    if pair is not None:
        ev_a, ev_b = pair
        div = Divergence(index=matched, event_a=ev_a, event_b=ev_b)
        if module is not None:
            div.site_a = _ir_site(module, ev_a if trace_a.layer == "ir"
                                  else None)
        if compiled is not None:
            div.site_b = _asm_site(compiled,
                                   ev_b if trace_b.layer == "asm"
                                   else None)
        report.divergence = div
        lo = max(0, matched - _CONTEXT)
        report.context = trace_a.sync[lo:matched]
    return report


def lockstep_built(built, **kwargs) -> DivergenceReport:
    """:func:`run_lockstep` on a :class:`repro.pipeline.BuiltProgram`."""
    return run_lockstep(built.module, built.layout, built.compiled,
                        **kwargs)
