"""Execution tracing, lockstep divergence diffing and campaign
observability.

The subsystem has three parts:

* :mod:`repro.trace.events` / :mod:`repro.trace.tap` — low-overhead
  trace taps for the IR interpreter and the assembly machine.  Off by
  default; when enabled they record sync-point events (stores, control
  transfers, calls, returns, program output) and, optionally, per-step
  records in ring-buffer / sampled / full modes.
* :mod:`repro.trace.diff` — the lockstep divergence differ: co-runs
  the IR and assembly layers of one program (optionally with a fault
  injected into either layer) and pinpoints the first synchronization
  point where their state diverges.
* :mod:`repro.trace.observe` — campaign observability: per-phase
  timings, per-worker throughput and outcome counters, emitted as
  JSONL events and a summary table.
"""

from .events import StepRecord, SyncEvent, Trace, TraceConfig
from .tap import IRTracer, MachineTracer
from .diff import DivergenceReport, diff_sync_streams, lockstep_built, run_lockstep
from .observe import CampaignObserver

__all__ = [
    "TraceConfig",
    "Trace",
    "SyncEvent",
    "StepRecord",
    "IRTracer",
    "MachineTracer",
    "DivergenceReport",
    "diff_sync_streams",
    "run_lockstep",
    "lockstep_built",
    "CampaignObserver",
]
