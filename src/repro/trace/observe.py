"""Campaign observability: phase timings, worker throughput, outcomes.

A :class:`CampaignObserver` is threaded through the campaign runners
(:mod:`repro.fi.campaign`, :mod:`repro.fi.parallel`) and the
experiment driver (:mod:`repro.experiments.runner`).  It collects a
flat stream of timestamped events — phases, per-worker summaries,
outcome counts — which can be emitted as JSONL for machines or as a
summary table for humans.

Event schema (one JSON object per line)::

    {"ev": "phase",   "name": ..., "seconds": ..., ...extra}
    {"ev": "worker",  "worker": i, "injections": n, "seconds": s,
     "rate": n/s}
    {"ev": "outcome", "counts": {...}, "total": n}
    {"ev": ...}       # free-form via emit()

All timings use :func:`time.perf_counter`; events carry a monotonic
``t`` offset (seconds since the observer was created) rather than a
wall-clock time, so event streams from one run are reproducible in
shape.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["CampaignObserver"]


class CampaignObserver:
    """Collects phase/worker/outcome events during a campaign."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.events: List[dict] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(self, ev: str, **fields: object) -> dict:
        """Record one free-form event and return it."""
        record: dict = {"ev": ev, "t": round(self._now(), 6)}
        record.update(fields)
        self.events.append(record)
        return record

    @contextmanager
    def phase(self, name: str, **fields: object) -> Iterator[None]:
        """Time a named phase (compile / lower / golden / inject / ...)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit("phase", name=name,
                      seconds=round(time.perf_counter() - start, 6),
                      **fields)

    def worker(self, worker: int, injections: int, seconds: float,
               **fields: object) -> None:
        """Record one parallel worker's throughput."""
        rate = injections / seconds if seconds > 0 else 0.0
        self.emit("worker", worker=worker, injections=injections,
                  seconds=round(seconds, 6), rate=round(rate, 2),
                  **fields)

    def outcomes(self, counts: Dict[str, int], **fields: object) -> None:
        """Record the final outcome histogram of a campaign."""
        self.emit("outcome", counts=dict(counts),
                  total=sum(counts.values()), **fields)

    # -- resilience events (see repro.fi.resilience) -------------------

    def retry(self, chunk: int, reason: str, attempt: int,
              remaining: int, **fields: object) -> None:
        """Record a chunk re-dispatch after a worker crash or timeout."""
        self.emit("retry", chunk=chunk, reason=reason, attempt=attempt,
                  remaining=remaining, **fields)

    def timeout(self, chunk: int, seconds: float, **fields: object) -> None:
        """Record a per-chunk watchdog expiry."""
        self.emit("timeout", chunk=chunk, seconds=seconds, **fields)

    def resume(self, skipped: int, path: str, **fields: object) -> None:
        """Record samples replayed from an injection journal."""
        self.emit("resume", skipped=skipped, path=path, **fields)

    def degrade(self, reason: str, **fields: object) -> None:
        """Record a fall-back from process workers to serial execution."""
        self.emit("degrade", reason=reason, **fields)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per phase name (phases may repeat)."""
        out: Dict[str, float] = {}
        for ev in self.events:
            if ev["ev"] == "phase":
                out[ev["name"]] = out.get(ev["name"], 0.0) + ev["seconds"]
        return out

    def worker_events(self) -> List[dict]:
        return [e for e in self.events if e["ev"] == "worker"]

    def outcome_counts(self) -> Dict[str, int]:
        """Merged outcome counts across all outcome events."""
        out: Dict[str, int] = {}
        for ev in self.events:
            if ev["ev"] == "outcome":
                for k, v in ev["counts"].items():
                    out[k] = out.get(k, 0) + v
        return out

    def resilience_events(self) -> List[dict]:
        """Retry / timeout / resume / degrade events, in order."""
        return [e for e in self.events
                if e["ev"] in ("retry", "timeout", "resume", "degrade")]

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e) for e in self.events) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def summary(self) -> str:
        """Human-readable table: phases, workers, outcomes."""
        lines: List[str] = []
        phases = self.phase_seconds()
        if phases:
            total = sum(phases.values())
            lines.append("phase timings")
            lines.append(f"  {'phase':<16s} {'seconds':>10s} {'share':>7s}")
            for name, secs in phases.items():
                share = 100.0 * secs / total if total else 0.0
                lines.append(f"  {name:<16s} {secs:>10.4f} {share:>6.1f}%")
            lines.append(f"  {'total':<16s} {total:>10.4f}")
        workers = self.worker_events()
        if workers:
            lines.append("worker throughput")
            lines.append(f"  {'worker':<8s} {'injections':>10s} "
                         f"{'seconds':>10s} {'inj/s':>8s}")
            for ev in workers:
                lines.append(f"  {ev['worker']:<8d} "
                             f"{ev['injections']:>10d} "
                             f"{ev['seconds']:>10.4f} "
                             f"{ev['rate']:>8.1f}")
        counts = self.outcome_counts()
        if counts:
            total = sum(counts.values())
            lines.append("outcomes")
            for name in sorted(counts):
                share = 100.0 * counts[name] / total if total else 0.0
                lines.append(f"  {name:<16s} {counts[name]:>8d} "
                             f"{share:>6.1f}%")
            lines.append(f"  {'total':<16s} {total:>8d}")
        resil = self.resilience_events()
        if resil:
            lines.append("resilience")
            skipped = sum(e["skipped"] for e in resil
                          if e["ev"] == "resume")
            if skipped:
                lines.append(f"  resumed from journal: {skipped} "
                             f"samples skipped")
            for kind, label in (("retry", "retries"),
                                ("timeout", "timeouts"),
                                ("degrade", "degrades")):
                n = sum(1 for e in resil if e["ev"] == kind)
                if n:
                    lines.append(f"  {label:<16s} {n:>8d}")
        if not lines:
            return "(no events recorded)\n"
        return "\n".join(lines) + "\n"
