"""Fault containment primitives shared by both simulators.

The paper's fault model guarantees every injection resolves to one of
{benign, SDC, detected, DUE}; the harness must therefore enforce the
invariant *no injected fault can crash, hang, or OOM the host process*.
``max_steps`` already bounds time.  This module supplies the remaining
resource budgets and the host-escape conversion shared by the IR
interpreter and the assembly machine (see DESIGN §11):

* **output-byte budget** — :class:`OutputBuffer`, a drop-in ``list`` of
  emitted strings that raises ``SimTrap("output-budget")`` once the
  total byte count exceeds its budget.  A flipped loop bound that turns
  a 10-line program into an unbounded printer becomes a DUE instead of
  filling host memory with output strings.
* **memory-cell budget** — ``mem_budget`` on
  :class:`~repro.memorymodel.Memory` caps the size of the backing
  bytearray (``SimTrap("mem-budget")``), so a corrupted layout or a
  misconfigured harness cannot allocate a multi-GB image.
* **call-depth budget** — enforced inside the simulators (the budget
  constant lives here); a runaway call chain traps as
  ``SimTrap("stack-overflow")`` even if each frame is too small for the
  ``sp``-based check to fire first.
* **host-escape boundary** — :func:`host_escape_result` synthesizes the
  classified TRAP result used when a host exception crosses the
  simulator boundary during an injected run (kind
  :data:`HOST_ESCAPE`), carrying the original exception type, the
  layer, and the dynamic position for forensics.

Containment is on by default and must behave *identically* in both
dispatch modes ("naive" op-string ladders and pre-decoded closures):
both modes share the same ``outputs`` buffer, the same ``Memory`` and
the same check placement, so the equivalence suite keeps diffing them
bit-for-bit.  ``REPRO_CONTAIN=0`` (or ``contain=False``) restores the
pre-containment behaviour for A/B benchmarking and for the chaos
harness's deliberate un-guarded regression runs.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from .errors import SimTrap
from .execresult import ExecResult, RunStatus

__all__ = [
    "DEFAULT_OUTPUT_BUDGET",
    "DEFAULT_MEM_BUDGET",
    "DEFAULT_MAX_CALL_DEPTH",
    "HOST_ESCAPE",
    "OutputBuffer",
    "containment_enabled",
    "host_escape_result",
]

#: total bytes of simulated program output before ``output-budget`` (the
#: largest golden output in the benchsuite is a few KB; 16 MiB leaves
#: three orders of magnitude of headroom for faulty runs)
DEFAULT_OUTPUT_BUDGET = 1 << 24

#: bytes of simulated memory image before ``mem-budget`` (default
#: geometry is ~1.5 MB; 256 MiB accommodates any plausible scale-up)
DEFAULT_MEM_BUDGET = 1 << 28

#: nested simulated calls before ``stack-overflow``.  Deliberately above
#: the ~32k frames the default 512 KiB simulated stack admits, so the
#: budget only fires when the sp-based check cannot (it is a backstop,
#: not a semantic change).
DEFAULT_MAX_CALL_DEPTH = 1 << 16

#: trap kind for a host exception converted at the containment boundary
HOST_ESCAPE = "host-escape"


def containment_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the containment on/off switch.

    An explicit ``flag`` wins; otherwise the ``REPRO_CONTAIN``
    environment variable decides (default on; ``"0"`` disables).
    """
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_CONTAIN", "1") != "0"


class OutputBuffer(list):
    """Output list with a byte budget.

    Both simulators (and all four dispatch paths — the decoded closures
    call ``outputs.append`` just like the naive ladders) emit program
    output through ``append``, so overriding it gives one enforcement
    point by construction.  Slice assignment (the checkpoint-replay
    restore path ``outputs[:] = snap.outputs``) recomputes the byte
    count so a reused simulator never carries stale accounting.
    """

    __slots__ = ("budget", "nbytes")

    def __init__(self, budget: int = DEFAULT_OUTPUT_BUDGET,
                 items: Iterable[str] = ()):
        super().__init__(items)
        self.budget = budget
        self.nbytes = sum(len(s) for s in self)

    def append(self, s: str) -> None:
        nbytes = self.nbytes + len(s)
        if nbytes > self.budget:
            raise SimTrap(
                "output-budget",
                f"output exceeded {self.budget} bytes",
            )
        self.nbytes = nbytes
        super().append(s)

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.nbytes = sum(len(s) for s in self)


def host_escape_result(exc: BaseException, layer: Optional[str] = None,
                       step: int = 0, index: int = 0) -> ExecResult:
    """Classified TRAP result for a host exception that crossed (or was
    caught just outside) the simulator boundary during an injection."""
    return ExecResult(
        status=RunStatus.TRAP,
        output="",
        dyn_total=step,
        dyn_injectable=index,
        trap_kind=HOST_ESCAPE,
        extra={"host_escape": {
            "exc_type": type(exc).__name__,
            "detail": str(exc),
            "layer": layer,
            "step": step,
            "index": index,
        }},
    )
