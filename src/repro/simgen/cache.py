"""Compilation (and optional on-disk caching) of generated simulator code.

In-memory, each layer's codegen result is cached per program keyed by
the same content fingerprint its decode cache uses, so in-place module
mutation invalidates generated code exactly when it invalidates the
closures.  That fingerprint mixes live object identities, which do not
survive a process boundary — so the *disk* cache is keyed differently:
by the SHA-256 of the generated source itself, which is a pure function
of program content.  The disk cache therefore only skips the
``compile()`` step (the ``exec`` against a fresh environment always
runs), which is the expensive part for large generated modules.

Set ``REPRO_CODEGEN_CACHE`` to a directory path to enable the disk
cache (the benchmark harness does).  An unusable directory raises
:class:`~repro.errors.CodegenCacheError` — never a silent fallback —
because a benchmark silently measuring the decoded tier would report a
fictitious codegen speedup.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
from types import CodeType
from typing import Optional

from ..errors import CodegenCacheError

__all__ = ["compile_generated", "codegen_cache_dir"]

#: bump when the cached artifact format changes
_TAG = importlib.util.MAGIC_NUMBER.hex() + "/1"


def codegen_cache_dir(env: Optional[str] = None) -> Optional[str]:
    """Resolve (and validate) the on-disk cache directory.

    ``env`` overrides ``REPRO_CODEGEN_CACHE``; empty/unset disables the
    cache.  A configured-but-unusable directory is a hard error.
    """
    path = env if env is not None else os.environ.get("REPRO_CODEGEN_CACHE")
    if not path:
        return None
    try:
        os.makedirs(path, exist_ok=True)
        probe = os.path.join(path, f".probe.{os.getpid()}")
        with open(probe, "wb") as fh:
            fh.write(b"ok")
        os.unlink(probe)
    except OSError as exc:
        raise CodegenCacheError(
            f"codegen cache directory {path!r} is not writable: {exc}"
        ) from exc
    return path


def compile_generated(source: str, filename: str) -> CodeType:
    """``compile()`` generated source, via the disk cache when enabled."""
    cache = codegen_cache_dir()
    if cache is None:
        return compile(source, filename, "exec")
    digest = hashlib.sha256(
        (_TAG + "\n" + filename + "\n" + source).encode()
    ).hexdigest()
    path = os.path.join(cache, digest + ".marshal")
    try:
        with open(path, "rb") as fh:
            code = marshal.loads(fh.read())
        if isinstance(code, CodeType):
            return code
    except FileNotFoundError:
        pass
    except (OSError, ValueError, EOFError) as exc:
        raise CodegenCacheError(
            f"codegen cache entry {path!r} is unreadable: {exc}"
        ) from exc
    code = compile(source, filename, "exec")
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(marshal.dumps(code))
        os.replace(tmp, path)
    except OSError as exc:
        raise CodegenCacheError(
            f"cannot write codegen cache entry {path!r}: {exc}"
        ) from exc
    return code
