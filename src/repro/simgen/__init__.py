"""Shared helpers for the program-specialized codegen dispatch tier.

Both simulators' ``dispatch="codegen"`` backends
(:mod:`repro.interp.codegen`, :mod:`repro.machine.codegen`) generate one
straight-line Python source function per (program, layer) — operands,
register indices and constants inlined as literals — and ``exec``-compile
it once.  This package holds the layer-independent pieces:

* :class:`~repro.simgen.emit.SourceBuilder` — indented source assembly;
* :func:`~repro.simgen.cache.compile_generated` — bytecode compilation
  with an optional on-disk cache (``REPRO_CODEGEN_CACHE``) that raises
  :class:`~repro.errors.CodegenCacheError` instead of silently falling
  back when the cache directory is unusable.
"""

from .cache import codegen_cache_dir, compile_generated
from .emit import SourceBuilder

__all__ = ["SourceBuilder", "compile_generated", "codegen_cache_dir"]
