"""Indented Python source assembly for the codegen backends."""

from __future__ import annotations

from typing import List

__all__ = ["SourceBuilder"]


class SourceBuilder:
    """Accumulates generated source lines with explicit indentation.

    The emitters build one module-sized string, so plain string lists
    (joined once) beat repeated concatenation; the builder just keeps
    the indentation bookkeeping out of the emitters.
    """

    __slots__ = ("_lines", "_depth")

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._depth = 0

    def line(self, text: str) -> None:
        self._lines.append("    " * self._depth + text)

    def lines(self, texts) -> None:
        for text in texts:
            self.line(text)

    def blank(self) -> None:
        self._lines.append("")

    def indent(self) -> None:
        self._depth += 1

    def dedent(self) -> None:
        if self._depth == 0:
            raise ValueError("unbalanced dedent in generated source")
        self._depth -= 1

    def block(self, header: str) -> "_Block":
        """``with sb.block("if x:"):`` — emit header, indent the body."""
        self.line(header)
        return _Block(self)

    @property
    def next_lineno(self) -> int:
        """1-based line number the next :meth:`line` call will occupy
        in the compiled source (for raise-site fixup tables)."""
        return len(self._lines) + 1

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    __slots__ = ("_sb",)

    def __init__(self, sb: SourceBuilder):
        self._sb = sb

    def __enter__(self) -> SourceBuilder:
        self._sb.indent()
        return self._sb

    def __exit__(self, *exc) -> None:
        self._sb.dedent()
