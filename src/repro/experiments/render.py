"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "pct"]


def pct(x: float) -> str:
    return f"{100.0 * x:6.2f}%"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    srows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
