"""Table 1 — benchmark inventory with dynamic-instruction counts.

The paper reports DI counts in millions on native x86; ours are from
the scaled inputs (DESIGN.md substitution), reported at both layers so
the IR/assembly expansion factor is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..benchsuite.registry import BENCHMARKS
from ..pipeline import build
from .config import ExperimentConfig
from .render import render_table

__all__ = ["Table1Row", "run_table1", "render_table1"]


@dataclass
class Table1Row:
    benchmark: str
    suite: str
    domain: str
    ir_dyn: int
    asm_dyn: int
    asm_injectable: int
    paper_di_millions: float


def run_table1(config: Optional[ExperimentConfig] = None) -> List[Table1Row]:
    config = config or ExperimentConfig.from_env()
    rows: List[Table1Row] = []
    for name in config.benchmarks:
        bench = BENCHMARKS[name]
        built = build(name, scale=config.scale)
        ir = built.run_ir()
        asm = built.run_asm()
        assert ir.output == asm.output, f"{name}: cross-layer output mismatch"
        rows.append(
            Table1Row(
                benchmark=name,
                suite=bench.suite,
                domain=bench.domain,
                ir_dyn=ir.dyn_total,
                asm_dyn=asm.dyn_total,
                asm_injectable=asm.dyn_injectable,
                paper_di_millions=bench.paper_di_millions,
            )
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    return render_table(
        ["Benchmark", "Suite", "Domain", "IR DI", "ASM DI",
         "ASM inj. sites", "Paper DI (M)"],
        [
            (r.benchmark, r.suite, r.domain, r.ir_dyn, r.asm_dyn,
             r.asm_injectable, r.paper_di_millions)
            for r in rows
        ],
        title="Table 1: benchmark details (scaled inputs; see DESIGN.md)",
    )
