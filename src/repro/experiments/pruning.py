"""Pruning/stratification experiment: smart sampling, quantified.

For each benchmark × layer cell (fully duplicated, where the
bit-liveness analysis has both a benign *and* a checker-shadowed
stratum to exploit) this runs the same-budget campaign three ways —

* **uniform**   — the plain estimator every other experiment uses;
* **pruned**    — identical draw, provably-benign draws resolved
  statically (:mod:`repro.analysis.bitlive`), so the estimates must be
  *bit-identical* to uniform while simulating fewer steps;
* **stratified** — per-stratum draws with pilot + Neyman allocation
  (:mod:`repro.fi.prune`), whose composed estimate must agree with
  uniform within the confidence intervals

— and reports SDC estimates with 95% CIs next to the measured
simulated-step reduction.  The verdict checks the two soundness
contracts (pruned == uniform exactly; stratified CI overlaps uniform
CI) for every cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..fi.campaign import run_asm_campaign, run_ir_campaign
from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = [
    "PruningCell",
    "PruningResult",
    "run_pruning",
    "render_pruning",
]

#: full duplication — the protected stratum exists at this level only
PRUNING_LEVEL = 100


@dataclass
class PruningCell:
    benchmark: str
    layer: str
    n: int
    uniform_sdc: float
    uniform_lo: float
    uniform_hi: float
    uniform_steps: int
    pruned_sdc: float
    pruned_count: int
    pruned_steps: int
    strat_sdc: float
    strat_lo: float
    strat_hi: float
    strat_steps: int

    @property
    def pruned_identical(self) -> bool:
        return self.pruned_sdc == self.uniform_sdc

    @property
    def ci_overlap(self) -> bool:
        return (self.strat_lo <= self.uniform_hi
                and self.uniform_lo <= self.strat_hi)

    @property
    def prune_ratio(self) -> float:
        return (self.uniform_steps / self.pruned_steps
                if self.pruned_steps else float("inf"))

    @property
    def strat_ratio(self) -> float:
        return (self.uniform_steps / self.strat_steps
                if self.strat_steps else float("inf"))


@dataclass
class PruningResult:
    cells: List[PruningCell]

    @property
    def all_sound(self) -> bool:
        return all(c.pruned_identical and c.ci_overlap
                   for c in self.cells)


def run_pruning(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> PruningResult:
    ctx = context or ExperimentContext(config)
    base = ctx.campaign_config()
    cells: List[PruningCell] = []
    for name in ctx.config.benchmarks:
        built = ctx.matrix_build(name, PRUNING_LEVEL, False)
        for layer in ("ir", "asm"):
            def campaign(cfg):
                if layer == "ir":
                    return run_ir_campaign(
                        built.module, cfg, built.layout,
                        observer=ctx.observer)
                return run_asm_campaign(
                    built.compiled, built.layout, cfg,
                    observer=ctx.observer)

            uniform = campaign(base)
            pruned = campaign(replace(base, prune=True))
            strat = campaign(replace(base, prune=True, stratify=True))
            us, ss = uniform.summary(), strat.summary()
            cells.append(PruningCell(
                benchmark=name, layer=layer, n=uniform.n,
                uniform_sdc=us["sdc"],
                uniform_lo=us["sdc_ci"][0], uniform_hi=us["sdc_ci"][1],
                uniform_steps=uniform.simulated_steps or 0,
                pruned_sdc=pruned.summary()["sdc"],
                pruned_count=pruned.pruned,
                pruned_steps=pruned.simulated_steps or 0,
                strat_sdc=ss["sdc"],
                strat_lo=ss["sdc_ci"][0], strat_hi=ss["sdc_ci"][1],
                strat_steps=strat.simulated_steps or 0,
            ))
    return PruningResult(cells=cells)


def render_pruning(result: PruningResult) -> str:
    rows = []
    for c in result.cells:
        rows.append((
            c.benchmark, c.layer, c.n,
            f"{pct(c.uniform_sdc)} [{pct(c.uniform_lo)},"
            f"{pct(c.uniform_hi)}]",
            "ok" if c.pruned_identical else "DRIFT",
            c.pruned_count,
            f"{c.prune_ratio:5.2f}x",
            f"{pct(c.strat_sdc)} [{pct(c.strat_lo)},{pct(c.strat_hi)}]",
            "ok" if c.ci_overlap else "DISJOINT",
            f"{c.strat_ratio:5.2f}x",
        ))
    table = render_table(
        ("benchmark", "layer", "n", "uniform sdc [ci]", "prune=",
         "pruned", "steps", "stratified sdc [ci]", "ci∩", "steps"),
        rows,
        title=f"pruned & stratified campaigns vs uniform "
              f"(dup level {PRUNING_LEVEL})",
    )
    verdict = ("pruning exact + stratified CIs overlap in every cell"
               if result.all_sound else
               "WARNING: soundness contract violated in some cells")
    return f"{table}\n{verdict}\n"
