"""Figure 3 — distribution of the five penetration root-causes.

Classifies every assembly-level SDC that escaped *full* protection
(the paper's deficiency cases) across benchmarks and reports category
shares against the paper's 39.1/35.7/19.7/3.1/2.5% split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.rootcause import Penetration
from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = ["Figure3Result", "run_figure3", "render_figure3", "PAPER_SHARES"]

PAPER_SHARES = {
    Penetration.STORE: 0.391,
    Penetration.BRANCH: 0.357,
    Penetration.COMPARISON: 0.197,
    Penetration.CALL: 0.031,
    Penetration.MAPPING: 0.025,
}


@dataclass
class Figure3Result:
    #: aggregated deficiency-case counts across benchmarks
    counts: Dict[Penetration, int]
    #: per-benchmark counts
    per_benchmark: Dict[str, Dict[Penetration, int]]

    @property
    def total(self) -> int:
        return sum(
            n for p, n in self.counts.items() if p.is_deficiency
        )

    def shares(self) -> Dict[Penetration, float]:
        total = self.total
        if total == 0:
            return {}
        return {
            p: self.counts.get(p, 0) / total
            for p in PAPER_SHARES
        }

    def fixable_share(self) -> float:
        """Store+branch+comparison share — what Flowery targets (94.5%
        in the paper)."""
        shares = self.shares()
        return (
            shares.get(Penetration.STORE, 0.0)
            + shares.get(Penetration.BRANCH, 0.0)
            + shares.get(Penetration.COMPARISON, 0.0)
        )


def run_figure3(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> Figure3Result:
    ctx = context or ExperimentContext(config)
    totals: Dict[Penetration, int] = {}
    per_benchmark: Dict[str, Dict[Penetration, int]] = {}
    for name in ctx.config.benchmarks:
        run = ctx.protected_run(name, 100, flowery=False)
        counts = dict(run.penetration.counts)
        per_benchmark[name] = counts
        for p, n in counts.items():
            totals[p] = totals.get(p, 0) + n
    return Figure3Result(totals, per_benchmark)


def render_figure3(result: Figure3Result) -> str:
    shares = result.shares()
    rows = []
    for p, paper in PAPER_SHARES.items():
        rows.append(
            (p.value, result.counts.get(p, 0),
             pct(shares.get(p, 0.0)), pct(paper))
        )
    table = render_table(
        ["Penetration", "Cases", "Share", "Paper share"],
        rows,
        title=("Figure 3: root-cause distribution of assembly-level "
               "escapes under full protection"),
    )
    other = {
        p.value: n for p, n in result.counts.items() if not p.is_deficiency
    }
    tail = (
        f"\ndeficiency cases: {result.total}"
        f"   Flowery-fixable share (store+branch+cmp): "
        f"{pct(result.fixable_share())} (paper: 94.50%)"
    )
    if other:
        tail += f"\nnon-deficiency records (diagnostics): {other}"

    # per-benchmark shares (§5.2 narrates these, e.g. store penetration:
    # 15.67% in kNN vs 56.10% in BFS)
    per_rows = []
    for name, counts in result.per_benchmark.items():
        total = sum(n for p, n in counts.items() if p.is_deficiency)
        if not total:
            continue
        per_rows.append((
            name,
            total,
            *(pct(counts.get(p, 0) / total) for p in PAPER_SHARES),
        ))
    if per_rows:
        tail += "\n\n" + render_table(
            ["Benchmark", "Cases", "store", "branch", "comparison",
             "call", "mapping"],
            per_rows,
            title="Per-benchmark deficiency shares (§5.2)",
        )
    return table + tail
