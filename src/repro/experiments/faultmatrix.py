"""Fault-model × protection matrix — the figure-2-style campaign grid
for the cross-layer deficiency study.

Runs every cell of {seu, set, cf} × {unprotected, dup-100, cfc,
dup-100+cfc} per benchmark at both fault-injection layers.  The grid is
the paper's core deficiency argument made quantitative: instruction
duplication's detection collapses under control-flow faults (it only
guards *values*), while signature-based CFC recovers exactly that class
— and the two compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..faultmodel import FAULT_MODELS
from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = [
    "PROTECTION_CELLS",
    "FaultMatrixCell",
    "FaultMatrixResult",
    "run_fault_matrix",
    "render_fault_matrix",
]

#: (label, duplication level, cfc) — the four protection configurations
PROTECTION_CELLS: Tuple[Tuple[str, Optional[int], bool], ...] = (
    ("none", None, False),
    ("dup-100", 100, False),
    ("cfc", None, True),
    ("dup-100+cfc", 100, True),
)


@dataclass
class FaultMatrixCell:
    benchmark: str
    protection: str
    fault_model: str
    layer: str
    n: int
    sdc: float
    due: float
    detected: float
    benign: float


@dataclass
class FaultMatrixResult:
    cells: List[FaultMatrixCell]

    def cell(self, benchmark: str, protection: str, fault_model: str,
             layer: str) -> Optional[FaultMatrixCell]:
        for c in self.cells:
            if (c.benchmark == benchmark and c.protection == protection
                    and c.fault_model == fault_model and c.layer == layer):
                return c
        return None

    def mean_detected(self, protection: str, fault_model: str,
                      layer: str) -> float:
        sel = [c.detected for c in self.cells
               if c.protection == protection
               and c.fault_model == fault_model and c.layer == layer]
        return sum(sel) / len(sel) if sel else 0.0


def run_fault_matrix(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> FaultMatrixResult:
    ctx = context or ExperimentContext(config)
    cells: List[FaultMatrixCell] = []
    for name in ctx.config.benchmarks:
        for prot, level, cfc in PROTECTION_CELLS:
            built = ctx.matrix_build(name, level, cfc)
            for fm in FAULT_MODELS:
                for layer in ("ir", "asm"):
                    res = ctx._campaign(built, layer, name, level=level,
                                        fault_model=fm, cfc=cfc)
                    s = res.summary()
                    cells.append(FaultMatrixCell(
                        benchmark=name, protection=prot, fault_model=fm,
                        layer=layer, n=res.n, sdc=s["sdc"], due=s["due"],
                        detected=s["detected"], benign=s["benign"],
                    ))
    return FaultMatrixResult(cells)


def render_fault_matrix(result: FaultMatrixResult) -> str:
    table = render_table(
        ["Benchmark", "Protection", "Model", "Layer", "SDC", "DUE",
         "Detected", "Benign"],
        [
            (c.benchmark, c.protection, c.fault_model, c.layer,
             pct(c.sdc), pct(c.due), pct(c.detected), pct(c.benign))
            for c in result.cells
        ],
        title=("Fault-model x protection matrix: "
               "{seu,set,cf} x {none,dup-100,cfc,dup-100+cfc}"),
    )
    lines = [table, ""]
    for layer in ("ir", "asm"):
        lines.append(f"mean detection at {layer} layer:")
        for prot, _, _ in PROTECTION_CELLS:
            row = "  " + f"{prot:12s}"
            for fm in FAULT_MODELS:
                row += f"  {fm}={pct(result.mean_detected(prot, fm, layer))}"
            lines.append(row)
    lines.append(
        "reading: duplication detects value faults (seu/set) but is "
        "nearly blind to control-flow faults; CFC covers the cf column; "
        "the composition covers both."
    )
    return "\n".join(lines)
