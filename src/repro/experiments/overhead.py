"""§7.2 — runtime overhead of Flowery on top of instruction duplication.

The paper measures wall-clock on native x86 (1.93/1.63/3.72/3.74% extra
at the four levels).  Wall-clock of a Python simulator measures the
simulator, not the program, so the faithful proxy here is *dynamic
assembly instruction count*: overhead = (flowery_dyn - id_dyn) / id_dyn
per level.  A scalar dynamic-instruction proxy over-states what a
superscalar x86 would see, so expect larger percentages with the same
ordering (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = ["OverheadRow", "run_overhead", "render_overhead",
           "PAPER_OVERHEADS"]

PAPER_OVERHEADS = {30: 0.0193, 50: 0.0163, 70: 0.0372, 100: 0.0374}


@dataclass
class OverheadRow:
    benchmark: str
    level: int
    baseline_dyn: int     # unprotected
    id_dyn: int
    flowery_dyn: int

    @property
    def id_overhead(self) -> float:
        return (self.id_dyn - self.baseline_dyn) / self.baseline_dyn

    @property
    def flowery_extra(self) -> float:
        """Flowery's additional overhead on top of ID (the paper's
        §7.2 metric)."""
        return (self.flowery_dyn - self.id_dyn) / self.id_dyn


def run_overhead(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> List[OverheadRow]:
    ctx = context or ExperimentContext(config)
    rows: List[OverheadRow] = []
    for name in ctx.config.benchmarks:
        baseline = ctx.raw_build(name).run_asm().dyn_total
        for level in ctx.config.levels:
            id_run = ctx.protected_run(name, level, flowery=False)
            fl_run = ctx.protected_run(name, level, flowery=True)
            rows.append(
                OverheadRow(
                    benchmark=name,
                    level=level,
                    baseline_dyn=baseline,
                    id_dyn=id_run.asm_campaign.golden_dyn_total,
                    flowery_dyn=fl_run.asm_campaign.golden_dyn_total,
                )
            )
    return rows


def average_extra_by_level(rows: List[OverheadRow]) -> Dict[int, float]:
    by_level: Dict[int, List[float]] = {}
    for r in rows:
        by_level.setdefault(r.level, []).append(r.flowery_extra)
    return {lvl: sum(v) / len(v) for lvl, v in sorted(by_level.items())}


def render_overhead(rows: List[OverheadRow]) -> str:
    table = render_table(
        ["Benchmark", "Level", "Base dyn", "ID dyn", "Flowery dyn",
         "ID overhead", "Flowery extra"],
        [
            (r.benchmark, f"{r.level}%", r.baseline_dyn, r.id_dyn,
             r.flowery_dyn, pct(r.id_overhead), pct(r.flowery_extra))
            for r in rows
        ],
        title=("Section 7.2: Flowery runtime overhead "
               "(dynamic-instruction proxy)"),
    )
    avgs = average_extra_by_level(rows)
    tail = "\naverage Flowery extra overhead by level: " + ", ".join(
        f"{lvl}%: {pct(v)} (paper {pct(PAPER_OVERHEADS[lvl])})"
        for lvl, v in avgs.items()
        if lvl in PAPER_OVERHEADS
    )
    return table + tail
