"""Shared experiment context: builds, profiles and campaigns with caching.

Profiles and raw (unprotected) campaigns are benchmark-level facts
reused across protection levels and techniques, so the context memoises
them.  Compilation is deterministic (same source -> same instruction
ids), which is what lets one profile drive plans for many separately
compiled module instances.

With a ``journal_dir`` (or ``REPRO_JOURNAL_DIR``) every campaign also
checkpoints each classified injection to an on-disk journal keyed by
the campaign's content hash, so a killed experiment run resumes from
where it stopped instead of restarting from zero — see
:mod:`repro.fi.resilience`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..analysis.coverage import CoveragePoint
from ..analysis.rootcause import PenetrationReport, classify_campaign
from ..fi.campaign import (
    CampaignConfig,
    CampaignResult,
    _phase,
    run_asm_campaign,
    run_ir_campaign,
)
from ..fi.parallel import run_parallel_campaign
from ..fi.resilience import WorkSpec, campaign_key
from ..pipeline import BuiltProgram, build
from ..protection.planner import SdcProfile, profile_module
from .config import ExperimentConfig

__all__ = ["ExperimentContext", "ProtectedRun"]


@dataclass
class ProtectedRun:
    """Everything measured for one (benchmark, level, technique) cell."""

    built: BuiltProgram
    ir_campaign: CampaignResult
    asm_campaign: CampaignResult
    ir_point: CoveragePoint
    asm_point: CoveragePoint
    penetration: PenetrationReport


class ExperimentContext:
    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        observer=None,
        journal_dir: Optional[str] = None,
    ):
        self.config = config or ExperimentConfig.from_env()
        #: optional repro.trace.CampaignObserver receiving phase
        #: timings and outcome events for every build/profile/campaign
        self.observer = observer
        #: campaigns checkpoint to per-campaign journals here (resume
        #: support); explicit argument wins over the config/env value
        self.journal_dir = (journal_dir if journal_dir is not None
                            else self.config.journal_dir)
        self._profiles: Dict[str, SdcProfile] = {}
        self._raw: Dict[Tuple[str, str],
                        Tuple[CampaignResult, CampaignResult]] = {}
        self._raw_built: Dict[str, BuiltProgram] = {}
        self._protected: Dict[Tuple[str, int, bool, bool], ProtectedRun] = {}
        self._matrix_built: Dict[Tuple[str, Optional[int], bool],
                                 BuiltProgram] = {}

    # -- benchmark-level cached facts ------------------------------------

    def campaign_config(self) -> CampaignConfig:
        return CampaignConfig(
            n_campaigns=self.config.campaigns, seed=self.config.seed
        )

    def _campaign(
        self,
        built: BuiltProgram,
        layer: str,
        name: str,
        level: Optional[int] = None,
        flowery: bool = False,
        compare_cse: bool = True,
        fault_model: str = "seu",
        cfc: bool = False,
    ) -> CampaignResult:
        """One campaign, journaled when a ``journal_dir`` is set.

        The journal is keyed (file name and content hash) by the
        rebuilt program's exact inputs, so a resumed experiment run
        replays only campaigns whose inputs are unchanged.
        """
        cfg = self.campaign_config()
        if not self.journal_dir:
            if layer == "ir":
                return run_ir_campaign(built.module, cfg, built.layout,
                                       observer=self.observer,
                                       fault_model=fault_model)
            return run_asm_campaign(built.compiled, built.layout, cfg,
                                    observer=self.observer,
                                    fault_model=fault_model)
        selected = (frozenset(built.protection.dup_info.protected)
                    if built.protection is not None else None)
        spec = WorkSpec(
            source=built.source, name=name, level=level, flowery=flowery,
            compare_cse=compare_cse, selected=selected, layer=layer,
            fault_model=fault_model, cfc=cfc,
        )
        tag = "raw" if level is None else f"l{level}"
        if flowery:
            tag += "-flowery"
        if cfc:
            tag += "-cfc"
        if fault_model != "seu":
            tag += f"-{fault_model}"
        path = os.path.join(
            self.journal_dir,
            f"{name}-{layer}-{tag}-{campaign_key(spec, cfg)[:12]}.jsonl",
        )
        return run_parallel_campaign(
            spec, cfg, workers=1, observer=self.observer,
            journal_path=path, built=built,
        )

    def incremental_campaign(self, built: BuiltProgram, layer: str,
                             store, fault_model: str = "seu"):
        """Section-level campaign against a shared profile store.

        Unchanged sections are served from ``store`` without
        simulation; see :mod:`repro.fi.compose`.  Returns the
        :class:`~repro.fi.compose.ComposedResult`.
        """
        from ..fi.compose import run_incremental_campaign

        return run_incremental_campaign(
            built, layer, self.campaign_config(), store,
            fault_model=fault_model, observer=self.observer,
        )

    def raw_build(self, name: str) -> BuiltProgram:
        built = self._raw_built.get(name)
        if built is None:
            with _phase(self.observer, "compile", benchmark=name):
                built = build(name, scale=self.config.scale)
            self._raw_built[name] = built
        return built

    def profile(self, name: str) -> SdcProfile:
        prof = self._profiles.get(name)
        if prof is None:
            built = self.raw_build(name)
            with _phase(self.observer, "profile", benchmark=name):
                prof = profile_module(
                    built.module,
                    n_campaigns=self.config.profile_campaigns,
                    seed=self.config.seed,
                    layout=built.layout,
                )
            self._profiles[name] = prof
        return prof

    def raw_campaigns(self, name: str, fault_model: str = "seu"
                      ) -> Tuple[CampaignResult, CampaignResult]:
        """Unprotected SDC probabilities at both layers (cached)."""
        key = (name, fault_model)
        cached = self._raw.get(key)
        if cached is None:
            built = self.raw_build(name)
            raw_ir = self._campaign(built, "ir", name,
                                    fault_model=fault_model)
            raw_asm = self._campaign(built, "asm", name,
                                     fault_model=fault_model)
            cached = (raw_ir, raw_asm)
            self._raw[key] = cached
        return cached

    def matrix_build(self, name: str, level: Optional[int],
                     cfc: bool) -> BuiltProgram:
        """Build one protection-matrix cell ({level?, cfc?}); cached.

        Unlike :meth:`protected_run` this also covers the unprotected
        and CFC-only cells (no duplication info required).
        """
        if level is None and not cfc:
            return self.raw_build(name)
        key = (name, level, cfc)
        built = self._matrix_built.get(key)
        if built is None:
            profile = (self.profile(name)
                       if level is not None and level < 100 else None)
            with _phase(self.observer, "compile", benchmark=name,
                        level=level, cfc=cfc):
                built = build(
                    name,
                    scale=self.config.scale,
                    level=level,
                    profile=profile,
                    cfc=cfc,
                )
            self._matrix_built[key] = built
        return built

    # -- protected measurement -----------------------------------------------

    def protected_run(
        self,
        name: str,
        level: int,
        flowery: bool = False,
        compare_cse: bool = True,
    ) -> ProtectedRun:
        key = (name, level, flowery, compare_cse)
        cached = self._protected.get(key)
        if cached is not None:
            return cached
        profile = self.profile(name) if level < 100 else None
        with _phase(self.observer, "compile", benchmark=name,
                    level=level, flowery=flowery):
            built = build(
                name,
                scale=self.config.scale,
                level=level,
                flowery=flowery,
                profile=profile,
                compare_cse=compare_cse,
            )
        prot_ir = self._campaign(built, "ir", name, level=level,
                                 flowery=flowery, compare_cse=compare_cse)
        prot_asm = self._campaign(built, "asm", name, level=level,
                                  flowery=flowery, compare_cse=compare_cse)
        raw_ir, raw_asm = self.raw_campaigns(name)
        technique = "flowery" if flowery else "id"
        ir_point = CoveragePoint.from_campaigns(
            name, level, technique, raw_ir, prot_ir
        )
        asm_point = CoveragePoint.from_campaigns(
            name, level, technique, raw_asm, prot_asm
        )
        assert built.protection is not None
        penetration = classify_campaign(
            name, level, prot_asm, built.module, built.asm,
            built.protection.dup_info,
        )
        run = ProtectedRun(
            built=built,
            ir_campaign=prot_ir,
            asm_campaign=prot_asm,
            ir_point=ir_point,
            asm_point=asm_point,
            penetration=penetration,
        )
        self._protected[key] = run
        return run
