"""Experiment drivers — one per paper table/figure (see DESIGN.md)."""

from .compile_time import render_compile_time, run_compile_time  # noqa: F401
from .config import ExperimentConfig, QUICK_BENCHMARKS  # noqa: F401
from .faultmatrix import (  # noqa: F401
    FaultMatrixResult,
    render_fault_matrix,
    run_fault_matrix,
)
from .figure2 import Figure2Result, render_figure2, run_figure2  # noqa: F401
from .incremental import (  # noqa: F401
    IncrementalResult,
    render_incremental,
    run_incremental,
)
from .figure3 import Figure3Result, render_figure3, run_figure3  # noqa: F401
from .figure17 import Figure17Result, render_figure17, run_figure17  # noqa: F401
from .overhead import render_overhead, run_overhead  # noqa: F401
from .pruning import (  # noqa: F401
    PruningResult,
    render_pruning,
    run_pruning,
)
from .runner import ExperimentContext, ProtectedRun  # noqa: F401
from .table1 import render_table1, run_table1  # noqa: F401

__all__ = [
    "ExperimentConfig", "QUICK_BENCHMARKS", "ExperimentContext",
    "ProtectedRun",
    "run_table1", "render_table1",
    "run_figure2", "render_figure2", "Figure2Result",
    "run_figure3", "render_figure3", "Figure3Result",
    "run_figure17", "render_figure17", "Figure17Result",
    "run_fault_matrix", "render_fault_matrix", "FaultMatrixResult",
    "run_incremental", "render_incremental", "IncrementalResult",
    "run_overhead", "render_overhead",
    "run_pruning", "render_pruning", "PruningResult",
    "run_compile_time", "render_compile_time",
]
