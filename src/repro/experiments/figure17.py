"""Figure 17 — Flowery vs original instruction duplication.

For each benchmark and protection level, three coverages:

* ``ID-IR``       — original duplication, measured at IR level (the
  over-optimistic number prior work reports)
* ``ID-Assembly`` — original duplication, measured at assembly level
* ``Flowery``     — duplication + all three patches, measured at
  assembly level

Paper shape: Flowery > ID-Assembly everywhere, Flowery ~ ID-IR, with a
residual gap from call/mapping penetrations (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = ["Figure17Cell", "Figure17Result", "run_figure17",
           "render_figure17"]


@dataclass
class Figure17Cell:
    benchmark: str
    level: int
    id_ir: float
    id_asm: float
    flowery_asm: float

    @property
    def improvement(self) -> float:
        return self.flowery_asm - self.id_asm

    @property
    def residual_gap(self) -> float:
        return self.id_ir - self.flowery_asm


@dataclass
class Figure17Result:
    cells: List[Figure17Cell]

    def average_improvement(self) -> float:
        return (
            sum(c.improvement for c in self.cells) / len(self.cells)
            if self.cells
            else 0.0
        )

    def full_protection_averages(self) -> Tuple[float, float]:
        """(ID-Assembly, Flowery) average coverage at 100% protection
        (paper: 76.74% -> 93.72%)."""
        full = [c for c in self.cells if c.level == 100]
        if not full:
            return 0.0, 0.0
        return (
            sum(c.id_asm for c in full) / len(full),
            sum(c.flowery_asm for c in full) / len(full),
        )


def run_figure17(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> Figure17Result:
    ctx = context or ExperimentContext(config)
    cells: List[Figure17Cell] = []
    for name in ctx.config.benchmarks:
        for level in ctx.config.levels:
            id_run = ctx.protected_run(name, level, flowery=False)
            fl_run = ctx.protected_run(name, level, flowery=True)
            cells.append(
                Figure17Cell(
                    benchmark=name,
                    level=level,
                    id_ir=id_run.ir_point.coverage,
                    id_asm=id_run.asm_point.coverage,
                    flowery_asm=fl_run.asm_point.coverage,
                )
            )
    return Figure17Result(cells)


def render_figure17(result: Figure17Result) -> str:
    table = render_table(
        ["Benchmark", "Level", "ID-IR", "ID-Assembly", "Flowery",
         "Improvement"],
        [
            (c.benchmark, f"{c.level}%", pct(c.id_ir), pct(c.id_asm),
             pct(c.flowery_asm), pct(c.improvement))
            for c in result.cells
        ],
        title="Figure 17: SDC coverage — Flowery vs instruction duplication",
    )
    id_asm, flowery = result.full_protection_averages()
    tail = (
        f"\naverage coverage at full protection: ID-Assembly {pct(id_asm)}"
        f" -> Flowery {pct(flowery)}   (paper: 76.74% -> 93.72%)"
        f"\naverage improvement across cells: "
        f"{pct(result.average_improvement())} (paper avg: 31.21%)"
    )
    return table + tail
