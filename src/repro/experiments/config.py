"""Experiment configuration.

Defaults are sized for a single-core pure-Python run (minutes, not
hours).  Environment variables raise them toward the paper's setup:

* ``REPRO_SCALE``       — benchmark input scale (tiny/small/medium)
* ``REPRO_CAMPAIGNS``   — fault injections per (benchmark, level, layer)
  (paper: 3000)
* ``REPRO_PROFILE_CAMPAIGNS`` — IR profiling injections per benchmark
* ``REPRO_BENCHMARKS``  — comma list or ``all`` (default: a 6-benchmark
  representative subset for quick runs)
* ``REPRO_SEED``        — campaign RNG seed
* ``REPRO_JOURNAL_DIR`` — directory for per-campaign injection
  journals; when set, every campaign checkpoints each classified
  injection so an interrupted experiment run resumes instead of
  restarting from zero (empty value disables journaling)
* ``REPRO_STORE``       — shared section-profile store file used by
  incremental campaigns (``repro campaign --incremental`` and
  ``repro experiment incremental``); points a whole fleet of
  concurrent campaign processes at one store without per-invocation
  flags (empty value disables)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..benchsuite.registry import benchmark_names

__all__ = ["ExperimentConfig", "QUICK_BENCHMARKS"]

#: representative quick subset: covers memory-bound (bfs), compute/FP
#: (lud, ep), branchy (stringsearch, susan) and call-dense (quicksort)
QUICK_BENCHMARKS = ["bfs", "lud", "ep", "stringsearch", "susan", "quicksort"]


@dataclass(frozen=True)
class ExperimentConfig:
    scale: str = "small"
    campaigns: int = 150
    profile_campaigns: int = 400
    seed: int = 2023
    benchmarks: Tuple[str, ...] = tuple(QUICK_BENCHMARKS)
    levels: Tuple[int, ...] = (30, 50, 70, 100)
    #: when set, campaigns journal each injection here and resume from
    #: the journal after an interruption (see repro.fi.resilience)
    journal_dir: Optional[str] = None
    #: when set, incremental campaigns share this section-profile
    #: store (see repro.fi.compose.SectionProfileStore)
    store_path: Optional[str] = None

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentConfig":
        scale = os.environ.get("REPRO_SCALE", overrides.pop("scale", "small"))
        campaigns = int(
            os.environ.get("REPRO_CAMPAIGNS", overrides.pop("campaigns", 150))
        )
        profile_campaigns = int(
            os.environ.get(
                "REPRO_PROFILE_CAMPAIGNS",
                overrides.pop("profile_campaigns", 400),
            )
        )
        seed = int(os.environ.get("REPRO_SEED", overrides.pop("seed", 2023)))
        bench_env = os.environ.get("REPRO_BENCHMARKS", "")
        if bench_env.strip().lower() == "all":
            benchmarks = tuple(benchmark_names())
        elif bench_env.strip():
            benchmarks = tuple(
                b.strip() for b in bench_env.split(",") if b.strip()
            )
        else:
            benchmarks = tuple(
                overrides.pop("benchmarks", QUICK_BENCHMARKS)
            )
        journal_dir = os.environ.get(
            "REPRO_JOURNAL_DIR", overrides.pop("journal_dir", None)
        ) or None
        store_path = os.environ.get(
            "REPRO_STORE", overrides.pop("store_path", None)
        ) or None
        return cls(
            scale=scale,
            campaigns=campaigns,
            profile_campaigns=profile_campaigns,
            seed=seed,
            benchmarks=benchmarks,
            journal_dir=journal_dir,
            store_path=store_path,
            **overrides,
        )
