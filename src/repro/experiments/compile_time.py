"""§7.3 — compile-time cost of the Flowery passes.

Measures wall-clock of the three patches (eager-store placement happens
inside duplication, so the ID pass is timed with both placements and
the delta attributed to Flowery) against static instruction counts.
Paper: 0.12 s average, max 0.51 s (CG), min 0.08 s (Quicksort), linear
in static instructions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..frontend.codegen import compile_source
from ..benchsuite.registry import load_source
from ..protection.duplication import duplicate_module
from ..protection.flowery import apply_flowery
from .config import ExperimentConfig
from .render import render_table

__all__ = ["CompileTimeRow", "run_compile_time", "render_compile_time"]


@dataclass
class CompileTimeRow:
    benchmark: str
    static_instructions: int
    duplication_seconds: float
    flowery_seconds: float


def run_compile_time(
    config: Optional[ExperimentConfig] = None,
) -> List[CompileTimeRow]:
    config = config or ExperimentConfig.from_env()
    rows: List[CompileTimeRow] = []
    for name in config.benchmarks:
        source = load_source(name, config.scale)
        module = compile_source(source, name)
        static = module.static_instruction_count()

        t0 = time.perf_counter()
        info = duplicate_module(module, store_mode="eager")
        t1 = time.perf_counter()
        apply_flowery(module, info)
        t2 = time.perf_counter()
        rows.append(
            CompileTimeRow(
                benchmark=name,
                static_instructions=static,
                duplication_seconds=t1 - t0,
                flowery_seconds=t2 - t1,
            )
        )
    return rows


def render_compile_time(rows: List[CompileTimeRow]) -> str:
    table = render_table(
        ["Benchmark", "Static instrs", "Duplication (s)", "Flowery (s)"],
        [
            (r.benchmark, r.static_instructions,
             f"{r.duplication_seconds:.4f}", f"{r.flowery_seconds:.4f}")
            for r in rows
        ],
        title="Section 7.3: compile-time cost of the Flowery passes",
    )
    if rows:
        avg = sum(r.flowery_seconds for r in rows) / len(rows)
        mx = max(rows, key=lambda r: r.flowery_seconds)
        mn = min(rows, key=lambda r: r.flowery_seconds)
        table += (
            f"\naverage {avg:.4f}s, max {mx.flowery_seconds:.4f}s"
            f" ({mx.benchmark}), min {mn.flowery_seconds:.4f}s"
            f" ({mn.benchmark})   (paper: avg 0.12s, max 0.51s CG, "
            f"min 0.08s quicksort)"
        )
    return table
