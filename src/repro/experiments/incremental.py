"""Incremental-campaign experiment: the cache-hit story, quantified.

For each benchmark × layer × protection cell this runs a section-level
incremental campaign twice against one shared
:class:`~repro.fi.compose.SectionProfileStore` — a cold pass that
simulates every section, then a warm pass that must simulate nothing —
and reports the composed SDC estimates (with confidence intervals)
next to the measured warm-path speedup.  It is the north-star serving
scenario in miniature: the second "protect my kernel" request is pure
lookup + composition.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional

from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = [
    "IncrementalCell",
    "IncrementalResult",
    "run_incremental",
    "render_incremental",
]

#: (label, duplication level) — unprotected plus the full-dup plan,
#: the pair every protection sweep evaluates first
PROTECTION_CELLS = (("none", None), ("dup-100", 100))


@dataclass
class IncrementalCell:
    benchmark: str
    protection: str
    layer: str
    n: int
    sections: int
    cold_simulated: int
    warm_simulated: int
    warm_hits: int
    cold_seconds: float
    warm_seconds: float
    sdc: float
    sdc_lo: float
    sdc_hi: float

    @property
    def speedup(self) -> float:
        return (self.cold_seconds / self.warm_seconds
                if self.warm_seconds > 0 else float("inf"))


@dataclass
class IncrementalResult:
    cells: List[IncrementalCell]
    store_path: str


def run_incremental(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
    store_path: Optional[str] = None,
) -> IncrementalResult:
    from ..fi.compose import SectionProfileStore

    ctx = context or ExperimentContext(config)
    if store_path is None:
        # REPRO_STORE points a whole fleet at one shared store
        store_path = ctx.config.store_path
    if store_path is None:
        if ctx.journal_dir:
            os.makedirs(ctx.journal_dir, exist_ok=True)
            store_path = os.path.join(ctx.journal_dir, "section_store.jsonl")
        else:
            fd, store_path = tempfile.mkstemp(suffix=".jsonl",
                                              prefix="repro-store-")
            os.close(fd)
            os.unlink(store_path)

    cells: List[IncrementalCell] = []
    for name in ctx.config.benchmarks:
        for prot, level in PROTECTION_CELLS:
            built = ctx.matrix_build(name, level, False)
            for layer in ("ir", "asm"):
                t0 = time.perf_counter()
                with SectionProfileStore(store_path) as store:
                    cold = ctx.incremental_campaign(built, layer, store)
                t1 = time.perf_counter()
                with SectionProfileStore(store_path) as store:
                    warm = ctx.incremental_campaign(built, layer, store)
                t2 = time.perf_counter()
                s = warm.summary()
                lo, hi = s["sdc_ci"]
                cells.append(IncrementalCell(
                    benchmark=name, protection=prot, layer=layer,
                    n=warm.n_total, sections=len(warm.sections),
                    cold_simulated=cold.simulated,
                    warm_simulated=warm.simulated,
                    warm_hits=warm.cache_hits,
                    cold_seconds=t1 - t0, warm_seconds=t2 - t1,
                    sdc=s["sdc"], sdc_lo=lo, sdc_hi=hi,
                ))
    return IncrementalResult(cells=cells, store_path=store_path)


def render_incremental(result: IncrementalResult) -> str:
    rows = []
    for c in result.cells:
        rows.append((
            c.benchmark, c.protection, c.layer, c.n, c.sections,
            c.cold_simulated, c.warm_simulated,
            f"{c.warm_hits}/{c.sections}",
            f"{c.speedup:8.1f}x",
            f"{pct(c.sdc)} [{pct(c.sdc_lo)},{pct(c.sdc_hi)}]",
        ))
    table = render_table(
        ("benchmark", "protection", "layer", "n", "sections",
         "cold-sim", "warm-sim", "hits", "warm-speedup", "sdc [95% ci]"),
        rows,
        title="incremental campaigns: cold vs warm (shared section store)",
    )
    bad = [c for c in result.cells if c.warm_simulated != 0]
    verdict = ("warm runs simulated ZERO injections (pure cache hits)"
               if not bad else
               f"WARNING: {len(bad)} warm cells re-simulated")
    return f"{table}\n{verdict}\nstore: {result.store_path}\n"
