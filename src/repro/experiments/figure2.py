"""Figure 2 — SDC coverage of instruction duplication at LLVM(IR) vs
assembly level, per benchmark, at 30/50/70/100% protection.

Also derives the paper's headline gap statistics (§1: average 31.21%,
maximum 82% in Stringsearch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import ExperimentConfig
from .render import pct, render_table
from .runner import ExperimentContext

__all__ = ["Figure2Cell", "Figure2Result", "run_figure2", "render_figure2"]


@dataclass
class Figure2Cell:
    benchmark: str
    level: int
    ir_coverage: float
    asm_coverage: float

    @property
    def gap(self) -> float:
        return self.ir_coverage - self.asm_coverage


@dataclass
class Figure2Result:
    cells: List[Figure2Cell]

    def average_gap(self) -> float:
        return (
            sum(c.gap for c in self.cells) / len(self.cells)
            if self.cells
            else 0.0
        )

    def max_gap(self) -> Tuple[str, int, float]:
        worst = max(self.cells, key=lambda c: c.gap)
        return worst.benchmark, worst.level, worst.gap

    def full_protection_cells(self) -> List[Figure2Cell]:
        return [c for c in self.cells if c.level == 100]


def run_figure2(
    config: Optional[ExperimentConfig] = None,
    context: Optional[ExperimentContext] = None,
) -> Figure2Result:
    ctx = context or ExperimentContext(config)
    cells: List[Figure2Cell] = []
    for name in ctx.config.benchmarks:
        for level in ctx.config.levels:
            run = ctx.protected_run(name, level, flowery=False)
            cells.append(
                Figure2Cell(
                    benchmark=name,
                    level=level,
                    ir_coverage=run.ir_point.coverage,
                    asm_coverage=run.asm_point.coverage,
                )
            )
    return Figure2Result(cells)


def render_figure2(result: Figure2Result) -> str:
    table = render_table(
        ["Benchmark", "Level", "ID-IR coverage", "ID-Assembly coverage",
         "Gap"],
        [
            (c.benchmark, f"{c.level}%", pct(c.ir_coverage),
             pct(c.asm_coverage), pct(c.gap))
            for c in result.cells
        ],
        title=("Figure 2: SDC coverage of instruction duplication, "
               "IR vs assembly fault injection"),
    )
    bench, level, gap = result.max_gap()
    summary = (
        f"\naverage IR-vs-assembly coverage gap: {pct(result.average_gap())}"
        f"   (paper: 31.21%)\n"
        f"maximum gap: {pct(gap)} in {bench} at {level}%"
        f"   (paper: 82% in stringsearch)"
    )
    return table + summary
