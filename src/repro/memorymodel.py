"""Byte-addressable simulated memory shared by the IR interpreter and
the assembly machine.

Layout (single flat address space, one backing ``bytearray``):

::

    0x0000_0000 .. 0x0000_0FFF   unmapped null guard  -> SimTrap("segfault")
    GLOBAL_BASE ..               module globals (sized to fit)
    heap_base   ..               bump-allocated heap
    stack_limit .. stack_base    downward-growing stack

Both simulation layers use the *same* layout so a program's pointer
values, out-of-bounds behaviour and hence its output bytes are identical
at IR and assembly level — the cross-layer consistency requirement of
the paper's fault model (§2.2).

Accesses outside the mapped ranges raise :class:`~repro.errors.SimTrap`
with kind ``"segfault"``; this is how injected faults become DUEs.

``mem_budget`` caps the total size of the backing ``bytearray``
(``SimTrap("mem-budget")``): a corrupted layout or an absurd
heap/stack request cannot allocate an unbounded host image (part of
the fault containment contract, DESIGN §11).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Union

from .errors import SimTrap
from .utils.bits import to_signed, to_unsigned

__all__ = ["Memory", "GLOBAL_BASE"]

GLOBAL_BASE = 0x1000
_PACK_F64 = struct.Struct("<d")


class Memory:
    """Flat simulated memory with a null guard page.

    ``global_size`` must cover every global of the module being run;
    the loader computes it.  The heap serves ``sbrk``-style bump
    allocation (used by benchmark setup code through the loaders, not
    exposed to MiniC programs).
    """

    __slots__ = (
        "data",
        "global_base",
        "global_end",
        "heap_base",
        "heap_break",
        "heap_end",
        "stack_limit",
        "stack_base",
        "size",
        "mem_budget",
    )

    def __init__(
        self,
        global_size: int,
        heap_size: int = 1 << 20,
        stack_size: int = 1 << 19,
        mem_budget: Optional[int] = None,
    ):
        self.global_base = GLOBAL_BASE
        self.global_end = GLOBAL_BASE + _align(global_size, 16)
        self.heap_base = self.global_end
        self.heap_break = self.heap_base
        self.heap_end = self.heap_base + heap_size
        self.stack_limit = self.heap_end
        self.stack_base = self.stack_limit + stack_size  # grows downward
        self.size = self.stack_base
        self.mem_budget = mem_budget
        if mem_budget is not None and self.size > mem_budget:
            raise SimTrap(
                "mem-budget",
                f"memory image of {self.size} bytes exceeds budget of "
                f"{mem_budget}",
            )
        self.data = bytearray(self.size)

    # -- mapping checks ---------------------------------------------------

    def check(self, addr: int, size: int) -> None:
        """Trap unless ``[addr, addr+size)`` is inside the mapped region."""
        if addr < self.global_base or addr + size > self.size:
            raise SimTrap("segfault", f"access of {size} bytes at {addr:#x}")

    def in_stack(self, addr: int) -> bool:
        return self.stack_limit <= addr < self.stack_base

    # -- allocation ---------------------------------------------------------

    def sbrk(self, size: int) -> int:
        """Bump-allocate ``size`` bytes on the heap; returns the address."""
        size = _align(size, 16)
        addr = self.heap_break
        if addr + size > self.heap_end:
            raise SimTrap("oom", f"heap exhausted allocating {size} bytes")
        self.heap_break += size
        return addr

    # -- scalar access --------------------------------------------------------

    def read_int(self, addr: int, size: int, signed: bool = True) -> int:
        self.check(addr, size)
        raw = int.from_bytes(self.data[addr : addr + size], "little")
        return to_signed(raw, size * 8) if signed else raw

    def write_int(self, addr: int, value: int, size: int) -> None:
        self.check(addr, size)
        self.data[addr : addr + size] = to_unsigned(value, size * 8).to_bytes(
            size, "little"
        )

    def read_f64(self, addr: int) -> float:
        self.check(addr, 8)
        return _PACK_F64.unpack_from(self.data, addr)[0]

    def write_f64(self, addr: int, value: float) -> None:
        self.check(addr, 8)
        try:
            _PACK_F64.pack_into(self.data, addr, value)
        except (OverflowError, ValueError):
            # A faulty integer pattern reinterpreted as float can overflow
            # struct packing only via NaN payload issues; store a NaN.
            _PACK_F64.pack_into(self.data, addr, float("nan"))

    # -- bulk access (loader) ---------------------------------------------------

    def write_bytes(self, addr: int, payload: Union[bytes, bytearray]) -> None:
        self.check(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload

    def read_bytes(self, addr: int, size: int) -> bytes:
        self.check(addr, size)
        return bytes(self.data[addr : addr + size])


def _align(n: int, a: int) -> int:
    return (n + a - 1) & ~(a - 1)
